//! Sparse directories in action: shrink the directory to a small cache of
//! entries (no backing store) and watch the storage/traffic trade-off.
//!
//! ```sh
//! cargo run --release --example sparse_directory
//! ```

use scd::apps::{dwf, DwfParams};
use scd::core::{overhead, DirectoryChoice, MachineSpec, Replacement, Scheme};
use scd::machine::{Machine, MachineConfig};

fn main() {
    // Workload with a data set much larger than the (scaled) caches, per
    // the paper's §6.3 methodology.
    let app = dwf(&DwfParams::scaled(0.6), 32, 7);
    let dataset_blocks = app.shared_bytes / 16;
    let total_cache = (dataset_blocks / 8) as usize;
    let base = MachineConfig::paper_32().with_scaled_caches(total_cache.max(256));
    println!(
        "DWF: {} KB data set, {} cache blocks machine-wide\n",
        app.shared_bytes / 1024,
        base.total_cache_blocks()
    );

    // Non-sparse baseline, then sparse directories of shrinking size.
    let baseline = Machine::new(base.clone(), app.boxed_programs()).run();
    println!(
        "{:<24} {:>10} {:>10} {:>13} {:>13}",
        "directory", "entries", "cycles", "traffic", "replacements"
    );
    println!(
        "{:<24} {:>10} {:>10} {:>13} {:>13}",
        "complete (1 per block)",
        "per-block",
        baseline.cycles,
        baseline.traffic.total(),
        0
    );
    for factor in [4usize, 2, 1] {
        let entries_per_home = (base.total_cache_blocks() * factor / base.clusters)
            .div_ceil(4)
            * 4;
        let cfg = base
            .clone()
            .with_sparse(entries_per_home, 4, Replacement::Lru);
        let stats = Machine::new(cfg, app.boxed_programs()).run();
        println!(
            "{:<24} {:>10} {:>10} {:>13} {:>13}",
            format!("sparse, size factor {factor}"),
            entries_per_home * base.clusters,
            stats.cycles,
            stats.traffic.total(),
            stats.sparse.map_or(0, |s| s.replacements),
        );
    }

    // And the Table-1 style storage argument for a real machine.
    println!("\nStorage at scale (256 procs, 16 MB memory/proc, full bit vector):");
    let spec = MachineSpec::paper_defaults(64);
    for sparsity in [1u64, 4, 16, 64] {
        let r = overhead(
            &spec,
            &DirectoryChoice {
                scheme: Scheme::FullVector,
                sparsity,
            },
        );
        println!(
            "  sparsity {sparsity:>2}: {:>6.2}% of main memory ({:.1}x smaller than complete)",
            r.overhead * 100.0,
            r.savings_vs_full
        );
    }
}
