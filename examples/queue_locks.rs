//! §7 directory-based queue locks: when the waiter vector degrades to a
//! coarse vector, a release wakes a whole region of processors to retry.
//!
//! ```sh
//! cargo run --release --example queue_locks
//! ```

use scd::core::Scheme;
use scd::machine::{Machine, MachineConfig};
use scd::tango::{Op, ScriptProgram, ThreadProgram};

fn main() {
    let clusters = 16;
    let iters = 20;
    println!(
        "{clusters} clusters hammer one lock {iters}x each; the waiter vector\n\
         representation follows the machine's directory scheme.\n"
    );
    println!(
        "{:<24} {:>9} {:>8} {:>9} {:>11}",
        "waiter vector", "cycles", "grants", "retries", "lock msgs"
    );
    for (name, scheme) in [
        ("full bit vector", Scheme::FullVector),
        ("coarse vector (r=4)", Scheme::dir_cv(2, 4)),
        ("coarse vector (r=8)", Scheme::dir_cv(2, 8)),
    ] {
        let mut cfg = MachineConfig::paper_32().with_scheme(scheme);
        cfg.clusters = clusters;
        cfg.check_invariants = true;
        let programs: Vec<Box<dyn ThreadProgram>> = (0..clusters)
            .map(|_| {
                let mut ops = Vec::new();
                for _ in 0..iters {
                    ops.extend([Op::Lock(3), Op::Compute(30), Op::Unlock(3)]);
                }
                Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>
            })
            .collect();
        let stats = Machine::new(cfg, programs).run();
        let (grants, retries) = stats.lock_metrics;
        println!(
            "{:<24} {:>9} {:>8} {:>9} {:>11}",
            name,
            stats.cycles,
            grants,
            retries,
            stats.traffic.total()
        );
    }
    println!(
        "\nEvery acquire is still granted exactly once (mutual exclusion is\n\
         checker-enforced); coarse vectors trade extra retry messages for\n\
         directory storage, as §7 describes."
    );
}
