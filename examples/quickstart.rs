//! Quickstart: build a DASH machine, run a small LU factorization under
//! two directory schemes, and compare the resulting coherence traffic.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use scd::apps::{lu, LuParams};
use scd::core::Scheme;
use scd::machine::{Machine, MachineConfig};
use scd::stats::MessageClass;

fn main() {
    // The paper's evaluation machine: 32 processors in 32 clusters,
    // 16-byte blocks, 64 KB L1 / 256 KB L2, mesh interconnect.
    let base = MachineConfig::paper_32();

    // A modest LU problem (48x48 matrix, column-cyclic across 32 procs).
    let app = lu(
        &LuParams {
            n: 48,
            update_cost: 4,
        },
        base.processors(),
        42,
    );
    println!(
        "workload: {} — {} shared refs ({} reads / {} writes), {} KB shared data\n",
        app.name,
        app.shared_refs(),
        app.reads(),
        app.writes(),
        app.shared_bytes / 1024
    );

    for (label, scheme) in [
        ("Dir32  (full bit vector)   ", Scheme::FullVector),
        ("Dir3CV2 (coarse vector)    ", Scheme::dir_cv(3, 2)),
        ("Dir3B  (broadcast)         ", Scheme::dir_b(3)),
        ("Dir3NB (non-broadcast)     ", Scheme::dir_nb(3)),
    ] {
        let cfg = base.clone().with_scheme(scheme);
        let stats = Machine::new(cfg, app.boxed_programs()).run();
        println!(
            "{label} {:>9} cycles | {:>7} req {:>7} rep {:>6} inval {:>6} ack",
            stats.cycles,
            stats.traffic.get(MessageClass::Request),
            stats.traffic.get(MessageClass::Reply),
            stats.traffic.get(MessageClass::Invalidation),
            stats.traffic.get(MessageClass::Acknowledgement),
        );
    }
    println!(
        "\nDir3NB pays for LU's read-shared pivot column with pointer-eviction\n\
         invalidations and re-read misses; the other schemes track it exactly."
    );
}
