//! Tango's trace mode: capture an application's reference streams to the
//! compact binary format, reload them, and replay against a differently
//! configured memory system.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use scd::apps::{mp3d, Mp3dParams};
use scd::core::Scheme;
use scd::machine::{Machine, MachineConfig};
use scd::tango::{ThreadProgram, Trace, TraceRecorder};

fn main() {
    let procs = 16;
    let app = mp3d(
        &Mp3dParams {
            particles: 1024,
            cells: 512,
            steps: 3,
            collision_rate: 0.05,
            move_cost: 4,
        },
        procs,
        99,
    );

    // Capture: the generator's op streams ARE the trace (Tango's coupled
    // mode interleaving is reconstructed by the machine at replay time).
    let mut rec = TraceRecorder::new(procs);
    for (p, ops) in app.programs.iter().enumerate() {
        for &op in ops {
            rec.record(p, op);
        }
    }
    let trace = rec.finish();
    let path = std::env::temp_dir().join("mp3d.scdt");
    trace.save(&path).expect("save trace");
    let bytes = std::fs::metadata(&path).unwrap().len();
    println!(
        "captured {} ops from {} processes -> {} ({} KB, {:.2} B/op)",
        trace.total_ops(),
        trace.procs(),
        path.display(),
        bytes / 1024,
        bytes as f64 / trace.total_ops() as f64
    );

    // Replay against two machines with different directory schemes.
    let loaded = Trace::load(&path).expect("load trace");
    for (name, scheme) in [("Dir16 (full)", Scheme::FullVector), ("Dir2CV2", Scheme::dir_cv(2, 2))]
    {
        let mut cfg = MachineConfig::paper_32().with_scheme(scheme);
        cfg.clusters = procs;
        let programs: Vec<Box<dyn ThreadProgram>> = loaded
            .replay()
            .into_iter()
            .map(|p| Box::new(p) as Box<dyn ThreadProgram>)
            .collect();
        let stats = Machine::new(cfg, programs).run();
        println!(
            "replay on {name:<14}: {} cycles, {} messages",
            stats.cycles,
            stats.traffic.total()
        );
    }
    std::fs::remove_file(&path).ok();
}
