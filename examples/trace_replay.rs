//! Tango's trace mode: capture an application's reference streams to the
//! compact binary format, reload them, and replay against a differently
//! configured memory system — then profile the replay with the span-tree
//! API: per-transaction span trees from the event stream, folded stacks
//! for flamegraphs, and a Perfetto export.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use scd::apps::{mp3d, Mp3dParams};
use scd::core::Scheme;
use scd::machine::{Machine, MachineConfig};
use scd::tango::{ThreadProgram, Trace, TraceRecorder};
use scd::trace::{to_perfetto, validate_perfetto, SpanTree, TraceConfig};

fn main() {
    let procs = 16;
    let app = mp3d(
        &Mp3dParams {
            particles: 1024,
            cells: 512,
            steps: 3,
            collision_rate: 0.05,
            move_cost: 4,
        },
        procs,
        99,
    );

    // Capture: the generator's op streams ARE the trace (Tango's coupled
    // mode interleaving is reconstructed by the machine at replay time).
    let mut rec = TraceRecorder::new(procs);
    for (p, ops) in app.programs.iter().enumerate() {
        for &op in ops.iter() {
            rec.record(p, op);
        }
    }
    let trace = rec.finish();
    let path = std::env::temp_dir().join("mp3d.scdt");
    trace.save(&path).expect("save trace");
    let bytes = std::fs::metadata(&path).unwrap().len();
    println!(
        "captured {} ops from {} processes -> {} ({} KB, {:.2} B/op)",
        trace.total_ops(),
        trace.procs(),
        path.display(),
        bytes / 1024,
        bytes as f64 / trace.total_ops() as f64
    );

    // Replay against two machines with different directory schemes, with
    // the causal span profiler watching each run.
    let loaded = Trace::load(&path).expect("load trace");
    for (name, scheme) in [("Dir16 (full)", Scheme::FullVector), ("Dir2CV2", Scheme::dir_cv(2, 2))]
    {
        let mut cfg = MachineConfig::paper_32()
            .with_scheme(scheme)
            .with_trace(TraceConfig::full(1 << 16).with_interval(1_000));
        cfg.clusters = procs;
        let programs: Vec<Box<dyn ThreadProgram>> = loaded
            .replay()
            .into_iter()
            .map(|p| Box::new(p) as Box<dyn ThreadProgram>)
            .collect();
        let mut machine = Machine::new(cfg, programs);
        let stats = machine.run();
        println!(
            "replay on {name:<14}: {} cycles, {} messages",
            stats.cycles,
            stats.traffic.total()
        );

        // The span tree turns the flat event stream into txn -> phase ->
        // message causality; `check` enforces well-formedness.
        let tree = SpanTree::from_events(&machine.trace_events());
        tree.check().expect("span tree must be well-formed");
        println!(
            "  span tree: {} txns ({} complete), {} attributed messages, {} background",
            tree.txns.len(),
            tree.completed(),
            tree.attributed_msgs(),
            tree.orphan_msgs.len()
        );

        // Folded stacks are flamegraph input; the heaviest stacks show
        // where transaction time went.
        let folded = tree.to_folded();
        let mut stacks: Vec<(&str, u64)> = folded
            .lines()
            .filter_map(|l| l.rsplit_once(' '))
            .filter_map(|(s, w)| w.parse().ok().map(|w| (s, w)))
            .collect();
        stacks.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
        println!("  hottest stacks (cycles):");
        for (stack, weight) in stacks.iter().take(4) {
            println!("    {weight:>8} {stack}");
        }

        // And the same tree exports as a chrome://tracing document.
        let perfetto = to_perfetto(&tree, &machine.metrics().intervals);
        let summary = validate_perfetto(&perfetto.to_string()).expect("valid export");
        println!(
            "  perfetto export: {} events ({} slices, {} msg ops, {} counter samples)",
            summary.events, summary.slices, summary.async_ops, summary.counters
        );
    }
    std::fs::remove_file(&path).ok();
}
