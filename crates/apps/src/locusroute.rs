//! LocusRoute — commercial-quality standard-cell router (VLSI-CAD domain).
//!
//! The central data structure is a global *cost array* over the routing
//! grid. Wires are distributed to processors by geographic region, with
//! deliberate overlap so that "several processors working on the same
//! geographical region" share each region's cost cells (§6.2). Routing a
//! wire evaluates a few candidate paths (reads along each) and then claims
//! the cheapest (writes along it).
//!
//! The resulting sharer counts sit just above a small pointer count — the
//! regime where `Dir_i B` broadcasts constantly, while `Dir_i NB`'s
//! pointer-overflow evictions "often do not cause re-reads" because the
//! router has moved on to other wires. LocusRoute is the one application
//! in the paper where `Dir_NB` beats `Dir_B`.

use scd_sim::SimRng;
use scd_tango::{AddressSpace, Op};

use crate::common::{scaled_dim, AppRun, BLOCK_BYTES, WORD};

/// LocusRoute problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct LocusRouteParams {
    /// Cost-array width (routing channels).
    pub width: usize,
    /// Cost-array height (routing tracks).
    pub height: usize,
    /// Number of geographic regions (vertical strips).
    pub regions: usize,
    /// Processors that work wires of each region (sharing degree).
    pub procs_per_region: usize,
    /// Total wires to route.
    pub wires: usize,
    /// Candidate paths evaluated per wire.
    pub candidates: usize,
    /// Private compute cycles per examined cell.
    pub eval_cost: u64,
}

impl Default for LocusRouteParams {
    fn default() -> Self {
        LocusRouteParams {
            width: 256,
            height: 32,
            regions: 8,
            procs_per_region: 5,
            wires: 2560,
            candidates: 4,
            eval_cost: 2,
        }
    }
}

impl LocusRouteParams {
    /// Default size scaled by `f`.
    pub fn scaled(f: f64) -> Self {
        LocusRouteParams {
            width: scaled_dim(256, f, 32),
            height: scaled_dim(32, f.sqrt(), 8),
            wires: scaled_dim(2560, f, 64),
            ..Default::default()
        }
    }
}

/// Generates a LocusRoute run for `procs` processors.
pub fn locusroute(params: &LocusRouteParams, procs: usize, seed: u64) -> AppRun {
    let (w, h) = (params.width, params.height);
    let regions = params.regions.min(procs).max(1);
    let strip = w / regions;
    let sharing = params.procs_per_region.min(procs).max(1);

    let mut space = AddressSpace::new(BLOCK_BYTES);
    let cost = space.alloc("cost_array", (w * h) as u64 * WORD);
    // Per-wire bounding boxes / net descriptions, read-mostly.
    let wires_region = space.alloc("wires", params.wires as u64 * 2 * WORD);
    let cost_at = |x: usize, y: usize| cost.elem((x * h + y) as u64, WORD);

    let mut root = SimRng::new(seed ^ 0x10C05);
    let mut rngs: Vec<SimRng> = (0..procs).map(|p| root.fork(p as u64)).collect();
    let mut programs: Vec<Vec<Op>> = vec![Vec::new(); procs];

    // Wire assignment: wire i belongs to region (i % regions) and is routed
    // by one of that region's `sharing` processors, round-robin. Processor
    // group for region g is {g*sharing, g*sharing+1, ...} mod procs —
    // `sharing` distinct processors that repeatedly revisit the same strip.
    for i in 0..params.wires {
        let g = i % regions;
        let member = (i / regions) % sharing;
        let p = (g * sharing + member) % procs;
        let rng = &mut rngs[p];
        let prog = &mut programs[p];

        // Read the wire description.
        prog.push(Op::Read(wires_region.elem(i as u64 * 2, WORD)));

        // Wire endpoints inside the strip (occasionally spilling one strip
        // to the right, as real nets do).
        let x0 = g * strip + rng.index(strip);
        let spill = rng.chance(0.2) && g + 1 < regions;
        let x1_strip = if spill { g + 1 } else { g };
        let x1 = x1_strip * strip + rng.index(strip);
        let (xa, xb) = (x0.min(x1), x0.max(x1));
        let y0 = rng.index(h);
        let y1 = rng.index(h);

        // Evaluate candidate paths: L-shaped routes at different bend rows.
        let mut bends = Vec::with_capacity(params.candidates);
        for _ in 0..params.candidates {
            bends.push(rng.index(h));
        }
        for &bend in &bends {
            for x in xa..=xb {
                prog.push(Op::Read(cost_at(x, bend)));
                prog.push(Op::Compute(params.eval_cost));
            }
            let (ya, yb) = (y0.min(bend), y0.max(bend));
            for y in ya..=yb {
                prog.push(Op::Read(cost_at(xa, y)));
            }
        }

        // Claim the chosen path: write cost cells along it.
        let chosen = bends[rng.index(bends.len())];
        for x in xa..=xb {
            prog.push(Op::Read(cost_at(x, chosen)));
            prog.push(Op::Write(cost_at(x, chosen)));
        }
        let (ya, yb) = (y1.min(chosen), y1.max(chosen));
        for y in ya..=yb {
            prog.push(Op::Read(cost_at(xb, y)));
            prog.push(Op::Write(cost_at(xb, y)));
        }
    }

    AppRun::new("LocusRoute", programs, space.total_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::*;
    use std::collections::{HashMap, HashSet};

    fn small() -> AppRun {
        locusroute(
            &LocusRouteParams {
                width: 64,
                height: 16,
                regions: 4,
                procs_per_region: 3,
                wires: 120,
                candidates: 2,
                eval_cost: 1,
            },
            8,
            11,
        )
    }

    #[test]
    fn structure_is_wellformed() {
        let run = small();
        assert_barriers_aligned(&run.programs); // vacuous (no barriers) but consistent
        assert_locks_balanced(&run.programs);
        assert_addresses_in_bounds(&run.programs, run.shared_bytes);
    }

    #[test]
    fn regions_are_shared_by_several_processors() {
        let run = small();
        // Map cost-array addresses back to strips; cost array starts at 0.
        let cost_bytes = 64 * 16 * WORD;
        let strip_w = 16usize; // 64 / 4 regions
        let mut touchers: HashMap<usize, HashSet<usize>> = HashMap::new();
        for (p, ops) in run.programs.iter().enumerate() {
            for op in ops.iter() {
                if let Op::Read(a) | Op::Write(a) = op {
                    if *a < cost_bytes {
                        let x = (*a / WORD) as usize / 16; // column = idx / h
                        touchers.entry(x / strip_w).or_default().insert(p);
                    }
                }
            }
        }
        for (g, procs) in &touchers {
            assert!(
                procs.len() >= 3,
                "region {g} touched by {procs:?} — expected >= procs_per_region"
            );
            // Spill wires let the left neighbor's group read into this
            // strip, so the ceiling is two groups' worth.
            assert!(
                procs.len() <= 6,
                "region {g} touched by {} procs — sharing should stay moderate",
                procs.len()
            );
        }
    }

    #[test]
    fn reads_heavily_outnumber_writes() {
        let run = locusroute(&LocusRouteParams::default(), 32, 1);
        let ratio = run.reads() as f64 / run.writes() as f64;
        assert!(
            ratio > 2.5,
            "path evaluation is read-dominated, got ratio {ratio}"
        );
    }

    #[test]
    fn work_is_spread_across_processors() {
        let run = small();
        let busy = run.programs.iter().filter(|p| !p.is_empty()).count();
        assert!(busy >= 7, "only {busy}/8 processors got wires");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.programs, b.programs);
    }
}
