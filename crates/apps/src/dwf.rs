//! DWF — wavefront string matching against gene databases (medical
//! domain).
//!
//! A dynamic-programming alignment: a score grid is computed in wavefront
//! order, banded by rows across processors. Each cell reads the read-only
//! *pattern* and *library* arrays — shared by **all** processes for the
//! whole run ("The pattern and library arrays are constantly read by all
//! the processes during the run", §6.2), which punishes `Dir_i NB` — plus
//! its three DP neighbors, one of which crosses a band boundary
//! (producer-consumer sharing with exactly one neighbor).
//!
//! Because only the active anti-diagonal of blocks is live at any moment,
//! DWF "is a wave-front algorithm that has a relatively small working set"
//! (§6.3.1), which is why even very sparse directories handle it well.

use scd_tango::{AddressSpace, Op};

use crate::common::{scaled_dim, AppRun, BLOCK_BYTES, WORD};

/// DWF problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct DwfParams {
    /// Pattern length = grid rows (split into `procs` bands).
    pub rows: usize,
    /// Library length = grid columns (split into column blocks).
    pub cols: usize,
    /// Number of column blocks in the wavefront schedule.
    pub col_blocks: usize,
    /// Private compute cycles per cell.
    pub cell_cost: u64,
}

impl Default for DwfParams {
    fn default() -> Self {
        DwfParams {
            rows: 160,
            cols: 320,
            col_blocks: 16,
            cell_cost: 3,
        }
    }
}

impl DwfParams {
    /// Default size scaled by `f`.
    pub fn scaled(f: f64) -> Self {
        DwfParams {
            rows: scaled_dim(160, f, 8),
            cols: scaled_dim(320, f, 16),
            col_blocks: scaled_dim(16, f.sqrt(), 4),
            ..Default::default()
        }
    }
}

/// Generates a DWF run for `procs` processors.
pub fn dwf(params: &DwfParams, procs: usize, _seed: u64) -> AppRun {
    let rows = params.rows.max(procs); // at least one row per band
    let cols = params.cols;
    let col_blocks = params.col_blocks.min(cols).max(1);

    let mut space = AddressSpace::new(BLOCK_BYTES);
    let pattern = space.alloc("pattern", rows as u64 * WORD);
    let library = space.alloc("library", cols as u64 * WORD);
    // Row-major score grid so band-boundary rows are contiguous.
    let grid = space.alloc("grid", (rows * cols) as u64 * WORD);
    let cell = |r: usize, c: usize| grid.elem((r * cols + c) as u64, WORD);

    let band = rows / procs; // rows per processor band (bands own [p*band ..))
    let block_w = cols / col_blocks;

    let mut programs: Vec<Vec<Op>> = vec![Vec::new(); procs];
    // Wavefront schedule: in step s, band p computes column block (s - p).
    // A barrier per step keeps the anti-diagonal aligned (the original uses
    // finer-grained flags; the sharing pattern is identical).
    let steps = procs + col_blocks - 1;
    for s in 0..steps {
        for (p, prog) in programs.iter_mut().enumerate() {
            if s >= p && s - p < col_blocks {
                let cb = s - p;
                let r0 = p * band;
                let r1 = if p == procs - 1 { rows } else { r0 + band };
                let c0 = cb * block_w;
                let c1 = if cb == col_blocks - 1 {
                    cols
                } else {
                    c0 + block_w
                };
                for r in r0..r1 {
                    for c in c0..c1 {
                        // Read-only arrays shared by everyone. The matcher
                        // probes its scoring profile across the whole
                        // pattern (not just row r), so every band keeps
                        // the entire pattern array live — the "constantly
                        // read by all the processes" behaviour of §6.2.
                        let probe = (r * 7 + c) % rows;
                        prog.push(Op::Read(pattern.elem(probe as u64, WORD)));
                        prog.push(Op::Read(library.elem(c as u64, WORD)));
                        // DP dependencies: up (may cross the band boundary),
                        // left, and the cell itself.
                        if r > 0 {
                            prog.push(Op::Read(cell(r - 1, c)));
                        }
                        if c > 0 {
                            prog.push(Op::Read(cell(r, c - 1)));
                        }
                        prog.push(Op::Compute(params.cell_cost));
                        prog.push(Op::Write(cell(r, c)));
                    }
                }
            }
        }
        for prog in programs.iter_mut() {
            prog.push(Op::Barrier(0));
        }
    }

    AppRun::new("DWF", programs, space.total_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::*;
    use std::collections::HashSet;

    fn small() -> AppRun {
        dwf(
            &DwfParams {
                rows: 16,
                cols: 32,
                col_blocks: 4,
                cell_cost: 1,
            },
            4,
            1,
        )
    }

    #[test]
    fn structure_is_wellformed() {
        let run = small();
        assert_barriers_aligned(&run.programs);
        assert_addresses_in_bounds(&run.programs, run.shared_bytes);
    }

    #[test]
    fn every_cell_is_written_exactly_once() {
        let run = small();
        let mut written = std::collections::HashMap::new();
        for ops in &run.programs {
            for op in ops.iter() {
                if let Op::Write(a) = op {
                    *written.entry(*a).or_insert(0u32) += 1;
                }
            }
        }
        assert_eq!(written.len(), 16 * 32, "all grid cells computed");
        assert!(written.values().all(|&c| c == 1), "no double writes");
    }

    #[test]
    fn pattern_and_library_read_by_all_processors() {
        let run = small();
        // pattern occupies the first 16 words, library the next region.
        let readers: HashSet<usize> = run
            .programs
            .iter()
            .enumerate()
            .filter(|(_, ops)| {
                ops.iter()
                    .any(|op| matches!(op, Op::Read(a) if *a < 16 * WORD))
            })
            .map(|(p, _)| p)
            .collect();
        // Every band reads its own pattern rows; the *library* row is the
        // one read by everyone.
        let lib_base = {
            // pattern rounded up to blocks, then library starts.
            (16 * WORD).div_ceil(BLOCK_BYTES) * BLOCK_BYTES
        };
        let lib_readers: HashSet<usize> = run
            .programs
            .iter()
            .enumerate()
            .filter(|(_, ops)| {
                ops.iter().any(
                    |op| matches!(op, Op::Read(a) if *a >= lib_base && *a < lib_base + 32 * WORD),
                )
            })
            .map(|(p, _)| p)
            .collect();
        assert_eq!(lib_readers.len(), 4, "library read by all bands");
        assert!(!readers.is_empty());
    }

    #[test]
    fn band_boundaries_create_producer_consumer_pairs() {
        let run = small();
        // Band 1 (rows 4..8) reads row 3, which band 0 wrote.
        let boundary_row_addr = |c: u64| {
            // grid base + (3 * cols + c) * WORD
            let grid_base = run.shared_bytes - (16 * 32) as u64 * WORD;
            grid_base + (3 * 32 + c) * WORD
        };
        let band1_reads_boundary = run.programs[1]
            .iter()
            .any(|op| matches!(op, Op::Read(a) if (0..32).any(|c| *a == boundary_row_addr(c))));
        assert!(band1_reads_boundary);
    }

    #[test]
    fn deterministic_and_scalable() {
        let a = dwf(&DwfParams::default(), 8, 3);
        let b = dwf(&DwfParams::default(), 8, 3);
        assert_eq!(a.programs, b.programs);
        let small = dwf(&DwfParams::scaled(0.25), 8, 3);
        assert!(small.total_ops() < a.total_ops());
    }
}
