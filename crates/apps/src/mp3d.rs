//! MP3D — 3-dimensional rarefied-flow particle simulation (aeronautics).
//!
//! Particles are statically partitioned across processors; each time step a
//! processor moves its own particles (read-modify-write of per-particle
//! state, effectively private) and updates the *space cell* each particle
//! occupies (read-modify-write of a shared counter). Particles drift
//! slowly, so a cell is touched by the one or two processors whose
//! particles currently overlap it — the migratory, low-sharer pattern that
//! "all schemes can handle well" (§6.2). Occasional collisions take a
//! per-cell lock.

use scd_sim::SimRng;
use scd_tango::{AddressSpace, Op};

use crate::common::{scaled_dim, AppRun, BLOCK_BYTES, WORD};

/// MP3D problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct Mp3dParams {
    /// Total number of particles (split evenly across processors).
    pub particles: usize,
    /// Space-cell array length (1-D flattening of the 3-D grid).
    pub cells: usize,
    /// Simulated time steps.
    pub steps: usize,
    /// Probability a particle move triggers a collision (lock + extra
    /// cell work).
    pub collision_rate: f64,
    /// Private compute cycles per particle move.
    pub move_cost: u64,
}

impl Default for Mp3dParams {
    fn default() -> Self {
        Mp3dParams {
            particles: 6144,
            cells: 2048,
            steps: 8,
            collision_rate: 0.05,
            move_cost: 6,
        }
    }
}

impl Mp3dParams {
    /// Default size scaled by `f`.
    pub fn scaled(f: f64) -> Self {
        Mp3dParams {
            particles: scaled_dim(6144, f, 64),
            cells: scaled_dim(2048, f, 64),
            steps: scaled_dim(8, f.sqrt(), 2),
            ..Default::default()
        }
    }
}

/// Generates an MP3D run for `procs` processors.
pub fn mp3d(params: &Mp3dParams, procs: usize, seed: u64) -> AppRun {
    let n = params.particles / procs * procs; // even split
    let per_proc = n / procs;
    let cells = params.cells;

    let mut space = AddressSpace::new(BLOCK_BYTES);
    // Particle records: 32 bytes (position+velocity), i.e. two 16-B blocks.
    let particles = space.alloc("particles", n as u64 * 32);
    let cell_arr = space.alloc("cells", cells as u64 * WORD);

    let mut root = SimRng::new(seed ^ 0x3D);
    // Each particle starts inside its owner's spatial slab so cells are
    // mostly single-owner; drift makes boundary cells two-owner.
    let slab = cells / procs;
    let mut positions: Vec<usize> = (0..n)
        .map(|i| {
            let owner = i / per_proc;
            let base = owner * slab;
            base + root.index(slab.max(1))
        })
        .collect();

    let mut rngs: Vec<SimRng> = (0..procs).map(|p| root.fork(p as u64)).collect();
    let mut programs: Vec<Vec<Op>> = vec![Vec::new(); procs];

    for _step in 0..params.steps {
        for (p, prog) in programs.iter_mut().enumerate() {
            let rng = &mut rngs[p];
            #[allow(clippy::needless_range_loop)] // i indexes both the shared
            // positions vector and the particle address arithmetic
            for i in p * per_proc..(p + 1) * per_proc {
                // Move the particle: read+write its own record (2 words in
                // distinct blocks so the record's true footprint shows).
                prog.push(Op::Read(particles.elem(i as u64 * 4, WORD)));
                prog.push(Op::Read(particles.elem(i as u64 * 4 + 2, WORD)));
                prog.push(Op::Compute(params.move_cost));
                prog.push(Op::Write(particles.elem(i as u64 * 4, WORD)));

                // Drift: -1, 0, or +1 cells, clamped to the grid.
                let delta = rng.index(3) as i64 - 1;
                let pos = (positions[i] as i64 + delta).clamp(0, cells as i64 - 1) as usize;
                positions[i] = pos;

                // Update the occupied space cell (migratory shared data).
                let addr = cell_arr.elem(pos as u64, WORD);
                prog.push(Op::Read(addr));
                prog.push(Op::Write(addr));

                // Occasional collision: serialize on the cell's lock and do
                // extra cell work.
                if rng.chance(params.collision_rate) {
                    let lock = (pos % 64) as u32;
                    prog.push(Op::Lock(lock));
                    prog.push(Op::Read(addr));
                    prog.push(Op::Compute(params.move_cost));
                    prog.push(Op::Write(addr));
                    prog.push(Op::Unlock(lock));
                }
            }
        }
        for prog in programs.iter_mut() {
            prog.push(Op::Barrier(0));
        }
    }

    AppRun::new("MP3D", programs, space.total_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::*;
    use std::collections::{HashMap, HashSet};

    fn small() -> AppRun {
        mp3d(
            &Mp3dParams {
                particles: 256,
                cells: 128,
                steps: 3,
                collision_rate: 0.1,
                move_cost: 2,
            },
            4,
            42,
        )
    }

    #[test]
    fn structure_is_wellformed() {
        let run = small();
        assert_barriers_aligned(&run.programs);
        assert_locks_balanced(&run.programs);
        assert_addresses_in_bounds(&run.programs, run.shared_bytes);
    }

    #[test]
    fn particles_are_private_to_their_owner() {
        let run = small();
        // Particle records live in the first 256*32 bytes.
        let particle_bytes = 256 * 32u64;
        let mut writers: HashMap<u64, HashSet<usize>> = HashMap::new();
        for (p, ops) in run.programs.iter().enumerate() {
            for op in ops.iter() {
                if let Op::Write(a) = op {
                    if *a < particle_bytes {
                        writers.entry(*a).or_default().insert(p);
                    }
                }
            }
        }
        assert!(
            writers.values().all(|s| s.len() == 1),
            "particle state written by exactly one processor"
        );
    }

    #[test]
    fn cells_are_shared_by_few_processors() {
        let run = small();
        let particle_bytes = 256 * 32u64;
        let mut writers: HashMap<u64, HashSet<usize>> = HashMap::new();
        for (p, ops) in run.programs.iter().enumerate() {
            for op in ops.iter() {
                if let Op::Write(a) = op {
                    if *a >= particle_bytes {
                        writers.entry(*a).or_default().insert(p);
                    }
                }
            }
        }
        let sharded: Vec<usize> = writers.values().map(|s| s.len()).collect();
        let avg = sharded.iter().sum::<usize>() as f64 / sharded.len() as f64;
        assert!(
            avg < 2.2,
            "space cells should average <= ~2 writers, got {avg}"
        );
        assert!(
            sharded.iter().any(|&c| c >= 2),
            "boundary cells must be shared by neighbors"
        );
    }

    #[test]
    fn collisions_take_locks() {
        let run = small();
        assert!(run.sync_ops() > 6, "locks + barriers present");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.programs, b.programs);
        let c = mp3d(
            &Mp3dParams {
                particles: 256,
                cells: 128,
                steps: 3,
                collision_rate: 0.1,
                move_cost: 2,
            },
            4,
            43,
        );
        assert_ne!(a.programs, c.programs, "different seed, different run");
    }
}
