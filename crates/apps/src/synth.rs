//! Synthetic sharing-pattern workloads.
//!
//! Controlled versions of the access patterns the real applications mix
//! together, for isolating scheme behaviour:
//!
//! * [`SharingPattern::WideRead`] — every block read by a fixed number of
//!   processors, then written by one: the Figure-2 experiment run through
//!   the *full machine* instead of the Monte-Carlo model, which lets the
//!   two be cross-validated (`bench --bin fig2_machine`);
//! * [`SharingPattern::Migratory`] — blocks handed from processor to
//!   processor, read-modify-write (MP3D's cells);
//! * [`SharingPattern::ProducerConsumer`] — one writer, one reader per
//!   block (DWF's band boundaries).

use scd_sim::SimRng;
use scd_tango::{AddressSpace, Op};

use crate::common::{AppRun, BLOCK_BYTES, WORD};

/// Which synthetic pattern to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SharingPattern {
    /// Each block is read by exactly `sharers` distinct processors, then
    /// written by a processor that is neither a sharer nor the block's
    /// home cluster (the Figure 2 event model).
    WideRead {
        /// Number of readers per block before the write.
        sharers: usize,
    },
    /// Each block migrates: processors take turns read-modify-writing it.
    Migratory,
    /// Fixed producer/consumer pairs per block.
    ProducerConsumer,
}

/// Parameters for [`synth`].
#[derive(Clone, Copy, Debug)]
pub struct SynthParams {
    /// The pattern.
    pub pattern: SharingPattern,
    /// Number of distinct blocks cycled through.
    pub blocks: usize,
    /// Pattern repetitions.
    pub rounds: usize,
}

/// Generates a synthetic run for `procs` processors.
///
/// The schedule is phase-structured with barriers so the sharer sets are
/// exact when the write happens (no replacement noise: callers should use
/// caches large enough to hold `blocks`).
pub fn synth(params: &SynthParams, procs: usize, seed: u64) -> AppRun {
    let mut space = AddressSpace::new(BLOCK_BYTES);
    let data = space.alloc("synth", params.blocks as u64 * BLOCK_BYTES);
    let addr = |b: usize| data.elem(b as u64 * 2, WORD);
    let mut rng = SimRng::new(seed ^ 0x517_417);
    let mut programs: Vec<Vec<Op>> = vec![Vec::new(); procs];

    for round in 0..params.rounds {
        match params.pattern {
            SharingPattern::WideRead { sharers } => {
                assert!(
                    sharers + 2 <= procs,
                    "need room for home and writer outside the sharer set"
                );
                for b in 0..params.blocks {
                    // Home cluster of the block under round-robin
                    // interleaving with procs == clusters: addr(b) is byte
                    // b*16, i.e. block number b.
                    let home = b % procs;
                    let mut candidates: Vec<usize> =
                        (0..procs).filter(|&p| p != home).collect();
                    rng.shuffle(&mut candidates);
                    let writer = candidates[0];
                    for &p in &candidates[1..=sharers] {
                        programs[p].push(Op::Read(addr(b)));
                    }
                    for (p, prog) in programs.iter_mut().enumerate() {
                        prog.push(Op::Barrier(((round * 2) % 4) as u32));
                        let _ = p;
                    }
                    programs[writer].push(Op::Write(addr(b)));
                    for prog in programs.iter_mut() {
                        prog.push(Op::Barrier(((round * 2 + 1) % 4) as u32));
                    }
                }
            }
            SharingPattern::Migratory => {
                for b in 0..params.blocks {
                    let p = (b + round) % procs;
                    programs[p].push(Op::Read(addr(b)));
                    programs[p].push(Op::Compute(4));
                    programs[p].push(Op::Write(addr(b)));
                }
                for prog in programs.iter_mut() {
                    prog.push(Op::Barrier((round % 2) as u32));
                }
            }
            SharingPattern::ProducerConsumer => {
                for b in 0..params.blocks {
                    let producer = b % procs;
                    let consumer = (b + 1) % procs;
                    programs[producer].push(Op::Write(addr(b)));
                    programs[consumer].push(Op::Compute(2));
                }
                for prog in programs.iter_mut() {
                    prog.push(Op::Barrier((round % 2) as u32));
                }
                for b in 0..params.blocks {
                    let consumer = (b + 1) % procs;
                    programs[consumer].push(Op::Read(addr(b)));
                }
                for prog in programs.iter_mut() {
                    prog.push(Op::Barrier(((round + 1) % 2) as u32));
                }
            }
        }
    }

    AppRun::new("Synthetic", programs, space.total_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::*;
    use std::collections::HashSet;

    #[test]
    fn wide_read_has_exact_sharer_counts() {
        let params = SynthParams {
            pattern: SharingPattern::WideRead { sharers: 3 },
            blocks: 8,
            rounds: 1,
        };
        let run = synth(&params, 8, 1);
        assert_barriers_aligned(&run.programs);
        assert_addresses_in_bounds(&run.programs, run.shared_bytes);
        // Every block gets exactly 3 readers and 1 writer.
        for b in 0..8u64 {
            let a = b * 16;
            let readers: HashSet<usize> = run
                .programs
                .iter()
                .enumerate()
                .filter(|(_, ops)| ops.iter().any(|o| matches!(o, Op::Read(x) if *x == a)))
                .map(|(p, _)| p)
                .collect();
            let writers: HashSet<usize> = run
                .programs
                .iter()
                .enumerate()
                .filter(|(_, ops)| ops.iter().any(|o| matches!(o, Op::Write(x) if *x == a)))
                .map(|(p, _)| p)
                .collect();
            assert_eq!(readers.len(), 3, "block {b}");
            assert_eq!(writers.len(), 1, "block {b}");
            assert!(readers.is_disjoint(&writers));
            // Neither readers nor writer include the home cluster.
            let home = (b % 8) as usize;
            assert!(!readers.contains(&home) && !writers.contains(&home));
        }
    }

    #[test]
    fn migratory_blocks_rotate_owners() {
        let params = SynthParams {
            pattern: SharingPattern::Migratory,
            blocks: 4,
            rounds: 3,
        };
        let run = synth(&params, 4, 1);
        assert_barriers_aligned(&run.programs);
        // Block 0's writers across rounds: procs 0, 1, 2.
        let writers: Vec<usize> = run
            .programs
            .iter()
            .enumerate()
            .filter(|(_, ops)| ops.iter().any(|o| matches!(o, Op::Write(0))))
            .map(|(p, _)| p)
            .collect();
        assert_eq!(writers, vec![0, 1, 2]);
    }

    #[test]
    fn producer_consumer_pairs_are_fixed() {
        let params = SynthParams {
            pattern: SharingPattern::ProducerConsumer,
            blocks: 6,
            rounds: 2,
        };
        let run = synth(&params, 3, 1);
        assert_barriers_aligned(&run.programs);
        assert!(run.reads() == run.writes());
    }
}
