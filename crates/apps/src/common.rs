//! Shared plumbing for application generators.

use scd_tango::{Op, ScriptProgram, ThreadProgram};
use std::sync::Arc;

/// Coherence block size all generators lay data out for (the paper's 16 B).
pub const BLOCK_BYTES: u64 = 16;

/// Size of one shared word (all four applications use 8-byte data).
pub const WORD: u64 = 8;

/// A generated application run: one operation stream per processor plus
/// the Table 2 self-characterization.
///
/// The streams sit behind [`Arc`]s, so cloning an `AppRun` — or boxing its
/// programs for yet another simulation — shares the (potentially
/// multi-megabyte) op vectors instead of copying them. A generated run is
/// immutable reference data: the parallel sweep engine hands one instance
/// to every worker thread.
#[derive(Clone, Debug)]
pub struct AppRun {
    /// Application name as the paper spells it.
    pub name: &'static str,
    /// Per-processor operation streams (shared, immutable).
    pub programs: Vec<Arc<[Op]>>,
    /// Bytes of shared space touched (Table 2's "shared space").
    pub shared_bytes: u64,
}

impl AppRun {
    /// Wraps freshly generated per-processor streams.
    pub fn new(name: &'static str, programs: Vec<Vec<Op>>, shared_bytes: u64) -> Self {
        AppRun {
            name,
            programs: programs.into_iter().map(Arc::from).collect(),
            shared_bytes,
        }
    }

    /// Boxes the streams for `scd-machine`-style consumption (cheap: the
    /// underlying op vectors are shared, not copied).
    pub fn boxed_programs(&self) -> Vec<Box<dyn ThreadProgram>> {
        self.programs
            .iter()
            .map(|ops| Box::new(ScriptProgram::shared(ops.clone())) as Box<dyn ThreadProgram>)
            .collect()
    }

    /// Total operations across all processors.
    pub fn total_ops(&self) -> usize {
        self.programs.iter().map(|ops| ops.len()).sum()
    }

    /// Shared references (reads + writes) across all processors.
    pub fn shared_refs(&self) -> u64 {
        self.programs
            .iter()
            .flat_map(|ops| ops.iter())
            .filter(|op| op.is_reference())
            .count() as u64
    }

    /// Reads across all processors.
    pub fn reads(&self) -> u64 {
        self.programs
            .iter()
            .flat_map(|ops| ops.iter())
            .filter(|op| matches!(op, Op::Read(_)))
            .count() as u64
    }

    /// Writes across all processors.
    pub fn writes(&self) -> u64 {
        self.programs
            .iter()
            .flat_map(|ops| ops.iter())
            .filter(|op| matches!(op, Op::Write(_)))
            .count() as u64
    }

    /// Synchronization operations across all processors.
    pub fn sync_ops(&self) -> u64 {
        self.programs
            .iter()
            .flat_map(|ops| ops.iter())
            .filter(|op| op.is_sync())
            .count() as u64
    }
}

/// Scales `v` by `f`, keeping at least `min`.
pub(crate) fn scaled_dim(v: usize, f: f64, min: usize) -> usize {
    ((v as f64 * f).round() as usize).max(min)
}

#[cfg(test)]
pub(crate) mod testutil {
    use scd_tango::Op;

    /// Asserts every processor issues the same barriers in the same order
    /// (a mismatched barrier would deadlock the machine).
    pub fn assert_barriers_aligned<P: std::ops::Deref<Target = [Op]>>(programs: &[P]) {
        let barrier_seq = |ops: &[Op]| {
            ops.iter()
                .filter_map(|op| match op {
                    Op::Barrier(b) => Some(*b),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        let first = barrier_seq(&programs[0]);
        for (p, ops) in programs.iter().enumerate().skip(1) {
            assert_eq!(
                barrier_seq(ops),
                first,
                "processor {p} disagrees on barrier sequence"
            );
        }
    }

    /// Asserts lock/unlock pairs balance per processor.
    pub fn assert_locks_balanced<P: std::ops::Deref<Target = [Op]>>(programs: &[P]) {
        for (p, ops) in programs.iter().enumerate() {
            let mut held = std::collections::HashSet::new();
            for op in ops.iter() {
                match op {
                    Op::Lock(l) => assert!(held.insert(*l), "proc {p} re-locks {l}"),
                    Op::Unlock(l) => {
                        assert!(held.remove(l), "proc {p} unlocks unheld {l}")
                    }
                    _ => {}
                }
            }
            assert!(held.is_empty(), "proc {p} finishes holding {held:?}");
        }
    }

    /// Asserts all references fall inside the declared shared space.
    pub fn assert_addresses_in_bounds<P: std::ops::Deref<Target = [Op]>>(
        programs: &[P],
        shared_bytes: u64,
    ) {
        for (p, ops) in programs.iter().enumerate() {
            for op in ops.iter() {
                if let Op::Read(a) | Op::Write(a) = op {
                    assert!(
                        *a < shared_bytes,
                        "proc {p} references {a:#x} beyond shared space {shared_bytes:#x}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_tango::Op;

    #[test]
    fn apprun_counters() {
        let run = AppRun::new(
            "x",
            vec![
                vec![Op::Read(0), Op::Write(8), Op::Lock(0), Op::Unlock(0)],
                vec![Op::Read(16), Op::Compute(5)],
            ],
            64,
        );
        assert_eq!(run.total_ops(), 6);
        assert_eq!(run.shared_refs(), 3);
        assert_eq!(run.reads(), 2);
        assert_eq!(run.writes(), 1);
        assert_eq!(run.sync_ops(), 2);
        assert_eq!(run.boxed_programs().len(), 2);
    }

    /// Cloning an `AppRun` (and boxing its programs) shares the op streams
    /// rather than copying them — the invariant the parallel sweep engine
    /// relies on to hand one generated program set to many workers.
    #[test]
    fn apprun_clones_share_streams() {
        let run = AppRun::new("x", vec![vec![Op::Read(0); 100]], 16);
        let clone = run.clone();
        assert!(Arc::ptr_eq(&run.programs[0], &clone.programs[0]));
        let _boxed = run.boxed_programs();
        assert_eq!(Arc::strong_count(&run.programs[0]), 3, "clone + boxed share");
    }
}
