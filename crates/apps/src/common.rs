//! Shared plumbing for application generators.

use scd_tango::{Op, ScriptProgram, ThreadProgram};

/// Coherence block size all generators lay data out for (the paper's 16 B).
pub const BLOCK_BYTES: u64 = 16;

/// Size of one shared word (all four applications use 8-byte data).
pub const WORD: u64 = 8;

/// A generated application run: one operation stream per processor plus
/// the Table 2 self-characterization.
#[derive(Clone, Debug)]
pub struct AppRun {
    /// Application name as the paper spells it.
    pub name: &'static str,
    /// Per-processor operation streams.
    pub programs: Vec<Vec<Op>>,
    /// Bytes of shared space touched (Table 2's "shared space").
    pub shared_bytes: u64,
}

impl AppRun {
    /// Boxes the streams for `scd-machine`-style consumption.
    pub fn boxed_programs(&self) -> Vec<Box<dyn ThreadProgram>> {
        self.programs
            .iter()
            .map(|ops| Box::new(ScriptProgram::new(ops.clone())) as Box<dyn ThreadProgram>)
            .collect()
    }

    /// Total operations across all processors.
    pub fn total_ops(&self) -> usize {
        self.programs.iter().map(Vec::len).sum()
    }

    /// Shared references (reads + writes) across all processors.
    pub fn shared_refs(&self) -> u64 {
        self.programs
            .iter()
            .flatten()
            .filter(|op| op.is_reference())
            .count() as u64
    }

    /// Reads across all processors.
    pub fn reads(&self) -> u64 {
        self.programs
            .iter()
            .flatten()
            .filter(|op| matches!(op, Op::Read(_)))
            .count() as u64
    }

    /// Writes across all processors.
    pub fn writes(&self) -> u64 {
        self.programs
            .iter()
            .flatten()
            .filter(|op| matches!(op, Op::Write(_)))
            .count() as u64
    }

    /// Synchronization operations across all processors.
    pub fn sync_ops(&self) -> u64 {
        self.programs
            .iter()
            .flatten()
            .filter(|op| op.is_sync())
            .count() as u64
    }
}

/// Scales `v` by `f`, keeping at least `min`.
pub(crate) fn scaled_dim(v: usize, f: f64, min: usize) -> usize {
    ((v as f64 * f).round() as usize).max(min)
}

#[cfg(test)]
pub(crate) mod testutil {
    use scd_tango::Op;

    /// Asserts every processor issues the same barriers in the same order
    /// (a mismatched barrier would deadlock the machine).
    pub fn assert_barriers_aligned(programs: &[Vec<Op>]) {
        let barrier_seq = |ops: &[Op]| {
            ops.iter()
                .filter_map(|op| match op {
                    Op::Barrier(b) => Some(*b),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        let first = barrier_seq(&programs[0]);
        for (p, ops) in programs.iter().enumerate().skip(1) {
            assert_eq!(
                barrier_seq(ops),
                first,
                "processor {p} disagrees on barrier sequence"
            );
        }
    }

    /// Asserts lock/unlock pairs balance per processor.
    pub fn assert_locks_balanced(programs: &[Vec<Op>]) {
        for (p, ops) in programs.iter().enumerate() {
            let mut held = std::collections::HashSet::new();
            for op in ops {
                match op {
                    Op::Lock(l) => assert!(held.insert(*l), "proc {p} re-locks {l}"),
                    Op::Unlock(l) => {
                        assert!(held.remove(l), "proc {p} unlocks unheld {l}")
                    }
                    _ => {}
                }
            }
            assert!(held.is_empty(), "proc {p} finishes holding {held:?}");
        }
    }

    /// Asserts all references fall inside the declared shared space.
    pub fn assert_addresses_in_bounds(programs: &[Vec<Op>], shared_bytes: u64) {
        for (p, ops) in programs.iter().enumerate() {
            for op in ops {
                if let Op::Read(a) | Op::Write(a) = op {
                    assert!(
                        *a < shared_bytes,
                        "proc {p} references {a:#x} beyond shared space {shared_bytes:#x}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_tango::Op;

    #[test]
    fn apprun_counters() {
        let run = AppRun {
            name: "x",
            programs: vec![
                vec![Op::Read(0), Op::Write(8), Op::Lock(0), Op::Unlock(0)],
                vec![Op::Read(16), Op::Compute(5)],
            ],
            shared_bytes: 64,
        };
        assert_eq!(run.total_ops(), 6);
        assert_eq!(run.shared_refs(), 3);
        assert_eq!(run.reads(), 2);
        assert_eq!(run.writes(), 1);
        assert_eq!(run.sync_ops(), 2);
        assert_eq!(run.boxed_programs().len(), 2);
    }
}
