//! LU — dense L-U factorization (numerical domain).
//!
//! Column-cyclic decomposition without pivoting, the classic SPLASH-style
//! kernel. At step `k` the owner of column `k` scales it; after a barrier,
//! **every** processor reads column `k` (the pivot column) to update its
//! own columns `j > k`.
//!
//! This is the paper's exemplar of actively read-shared data: "In LU each
//! matrix column is read by all processors just after the pivot step. This
//! data is actively shared between many processors and Dir_NB does very
//! poorly" (§6.2).

use scd_sim::SimRng;
use scd_tango::{AddressSpace, Op};

use crate::common::{scaled_dim, AppRun, BLOCK_BYTES, WORD};

/// LU problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct LuParams {
    /// Matrix dimension (n x n, column-major).
    pub n: usize,
    /// Private compute cycles charged per element update.
    pub update_cost: u64,
}

impl Default for LuParams {
    fn default() -> Self {
        LuParams {
            n: 72,
            update_cost: 4,
        }
    }
}

impl LuParams {
    /// Default size scaled by `f` (for quick tests and sweeps).
    pub fn scaled(f: f64) -> Self {
        LuParams {
            n: scaled_dim(72, f, 8),
            ..Default::default()
        }
    }
}

/// Generates an LU run for `procs` processors.
pub fn lu(params: &LuParams, procs: usize, _seed: u64) -> AppRun {
    let n = params.n;
    let mut space = AddressSpace::new(BLOCK_BYTES);
    // Column-major n x n matrix of 8-byte elements: column k is contiguous,
    // so the pivot column is a run of n/2 blocks every processor reads.
    let matrix = space.alloc("matrix", (n * n) as u64 * WORD);
    let elem = |col: usize, row: usize| matrix.elem((col * n + row) as u64, WORD);

    // The RNG is unused (LU's schedule is static) but kept in the signature
    // for uniformity across the four applications.
    let _ = SimRng::new(0);

    let mut programs: Vec<Vec<Op>> = vec![Vec::new(); procs];
    for k in 0..n.saturating_sub(1) {
        let owner = k % procs;
        // Pivot step: the owner scales column k below the diagonal.
        for row in k + 1..n {
            programs[owner].push(Op::Read(elem(k, row)));
            programs[owner].push(Op::Compute(params.update_cost));
            programs[owner].push(Op::Write(elem(k, row)));
        }
        // Everyone waits for the pivot column.
        for prog in programs.iter_mut() {
            prog.push(Op::Barrier(0));
        }
        // Update phase: each processor updates its own columns j > k using
        // the (read-shared) pivot column.
        for j in k + 1..n {
            let p = j % procs;
            for row in k + 1..n {
                programs[p].push(Op::Read(elem(k, row))); // pivot column
                programs[p].push(Op::Read(elem(j, row)));
                programs[p].push(Op::Compute(params.update_cost));
                programs[p].push(Op::Write(elem(j, row)));
            }
        }
        // The next pivot step must not start before updates finish.
        for prog in programs.iter_mut() {
            prog.push(Op::Barrier(0));
        }
    }

    AppRun::new("LU", programs, space.total_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::*;
    use std::collections::HashSet;

    fn small() -> AppRun {
        lu(&LuParams { n: 12, update_cost: 2 }, 4, 1)
    }

    #[test]
    fn structure_is_wellformed() {
        let run = small();
        assert_eq!(run.programs.len(), 4);
        assert_barriers_aligned(&run.programs);
        assert_locks_balanced(&run.programs);
        assert_addresses_in_bounds(&run.programs, run.shared_bytes);
    }

    #[test]
    fn pivot_column_is_read_by_every_processor() {
        let run = lu(&LuParams { n: 16, update_cost: 1 }, 4, 1);
        let n = 16u64;
        // Element (col 0, row 5) of the pivot column for k = 0.
        let pivot_addr = 5 * WORD;
        let _ = n;
        let readers: HashSet<usize> = run
            .programs
            .iter()
            .enumerate()
            .filter(|(_, ops)| ops.iter().any(|op| matches!(op, Op::Read(a) if *a == pivot_addr)))
            .map(|(p, _)| p)
            .collect();
        assert_eq!(readers.len(), 4, "all processors read the pivot column");
    }

    #[test]
    fn columns_are_written_only_by_their_owner_after_pivot() {
        let run = small();
        let n = 12usize;
        // Column j's elements are written by proc j % 4 only.
        for (p, ops) in run.programs.iter().enumerate() {
            for op in ops.iter() {
                if let Op::Write(a) = op {
                    let idx = a / WORD;
                    let col = (idx as usize) / n;
                    assert_eq!(
                        col % 4,
                        p,
                        "column {col} written by non-owner processor {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn reads_exceed_writes_roughly_two_to_one() {
        let run = lu(&LuParams::default(), 32, 1);
        let ratio = run.reads() as f64 / run.writes() as f64;
        // Update phase: 2 reads per write; pivot phase: 1 read per write.
        assert!((1.8..2.2).contains(&ratio), "read/write ratio {ratio}");
    }

    #[test]
    fn scaling_shrinks_the_problem() {
        let big = lu(&LuParams::scaled(1.0), 8, 1);
        let small = lu(&LuParams::scaled(0.25), 8, 1);
        assert!(small.total_ops() < big.total_ops() / 10);
        assert!(small.shared_bytes < big.shared_bytes);
    }

    #[test]
    fn deterministic() {
        let a = lu(&LuParams::default(), 8, 7);
        let b = lu(&LuParams::default(), 8, 7);
        assert_eq!(a.programs, b.programs);
    }
}
