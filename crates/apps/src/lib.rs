//! # scd-apps — the paper's four benchmark applications
//!
//! The paper drives its simulator with Tango-instrumented runs of four
//! programs (§5, Table 2):
//!
//! * **LU** — dense L-U factorization; after each pivot step the pivot
//!   column is read by *all* processors (read-shared data that devastates
//!   `Dir_i NB`);
//! * **DWF** — a wavefront string matcher searching gene databases; its
//!   pattern and library arrays are read-only and constantly read by every
//!   process, while the active working set (the wavefront) stays small;
//! * **MP3D** — a 3-D rarefied-flow particle simulator; most data is shared
//!   by only one or two processors at a time (migratory space cells);
//! * **LocusRoute** — a standard-cell router whose central cost array is
//!   shared among the several processors working on the same geographic
//!   region (sharer counts just above the pointer count, the pattern that
//!   makes `Dir_i B` broadcast frequently).
//!
//! The original binaries are not available, so each module re-implements
//! the application's *kernel* as a deterministic generator of the same
//! sharing pattern (see DESIGN.md for the substitution argument). Programs
//! are pre-generated per-processor operation streams; the machine still
//! couples their interleaving to simulated time exactly as Tango's coupled
//! mode does, because a processor only issues its next operation when the
//! previous one completes.

#![warn(missing_docs)]

pub mod common;
pub mod dwf;
pub mod locusroute;
pub mod lu;
pub mod mp3d;
pub mod synth;

pub use common::{AppRun, BLOCK_BYTES, WORD};
pub use dwf::{dwf, DwfParams};
pub use locusroute::{locusroute, LocusRouteParams};
pub use lu::{lu, LuParams};
pub use mp3d::{mp3d, Mp3dParams};
pub use synth::{synth, SharingPattern, SynthParams};

/// Builds the standard four-application suite at the given scale.
///
/// `scale` ∈ (0, 1] shrinks the default problem sizes (full-size runs take
/// a few seconds each; tests use small scales).
pub fn suite(procs: usize, seed: u64, scale: f64) -> Vec<AppRun> {
    vec![
        lu(&LuParams::scaled(scale), procs, seed),
        dwf(&DwfParams::scaled(scale), procs, seed),
        mp3d(&Mp3dParams::scaled(scale), procs, seed),
        locusroute(&LocusRouteParams::scaled(scale), procs, seed),
    ]
}
