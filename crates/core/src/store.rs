//! A uniform front-end over complete and sparse directory storage.
//!
//! The coherence protocol does not care how the directory is organized; it
//! asks for the entry of a block and occasionally receives a replacement
//! obligation (sparse only). [`DirectoryStore`] provides exactly that
//! interface, so the same protocol code runs the paper's non-sparse baseline
//! and every sparse configuration.

use std::collections::HashMap;

use crate::entry::{AddSharer, DirEntry};
use crate::node_set::NodeId;
use crate::overflow::{OverflowAdd, OverflowDirectory, OverflowStats};
use crate::scheme::Scheme;
use crate::sparse::{Allocation, ChurnStats, Replacement, SparseDirectory, SparseStats};

/// How a directory's entries are stored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Organization {
    /// One entry per memory block (the classic organization). Entries are
    /// materialized lazily — an absent entry is semantically "uncached".
    Complete,
    /// Sparse directory: a directory cache with `entries` slots of
    /// associativity `ways` and the given replacement policy (§4.2).
    Sparse {
        /// Total number of directory slots.
        entries: usize,
        /// Associativity.
        ways: usize,
        /// Victim selection policy.
        policy: Replacement,
    },
    /// Overflow directory (§7 future work): `i`-pointer small entries per
    /// block, promoted into a cache of `wide_entries` full-vector entries
    /// on pointer overflow.
    Overflow {
        /// Pointers per small entry.
        i: usize,
        /// Wide (full-vector) slots.
        wide_entries: usize,
        /// Wide-cache associativity.
        wide_ways: usize,
        /// Wide-victim selection policy.
        policy: Replacement,
    },
}

/// Outcome of [`DirectoryStore::record_sharer`].
#[derive(Debug)]
pub enum RecordSharer {
    /// The sharer is covered.
    Recorded,
    /// `Dir_i NB` pointer eviction (or an overflow pinned-set fallback):
    /// the returned cluster must be invalidated.
    Evict(NodeId),
    /// Overflow promotion displaced a wide victim: all cached copies of
    /// `victim_key` must be invalidated per the returned entry.
    Displaced {
        /// Block that lost its wide entry.
        victim_key: u64,
        /// The displaced wide entry.
        victim: DirEntry,
    },
}

/// Outcome of [`DirectoryStore::entry_mut`].
pub enum EntryAccess<'a> {
    /// The block's entry, ready for protocol action.
    Ready(&'a mut DirEntry),
    /// Sparse replacement: before the requested block's entry can be used,
    /// all cached copies of `victim_key` must be invalidated (the victim
    /// entry, returned by value, says which clusters those are). The
    /// requested block's fresh entry is also returned so the protocol can
    /// proceed in the same cycle — DASH's RAC tracks the outstanding
    /// replacement acknowledgements independently.
    Displaced {
        /// Block that lost its entry.
        victim_key: u64,
        /// The displaced entry.
        victim: DirEntry,
        /// Fresh (uncached) entry for the requested block.
        entry: &'a mut DirEntry,
    },
    /// Sparse only: the target set is full and every resident entry is
    /// pinned by an in-flight transaction. The request must be parked
    /// behind `blocker` (one of the pinned blocks) and replayed when it
    /// closes.
    Stalled {
        /// A pinned block whose completion will unblock the set.
        blocker: u64,
    },
}

/// Directory storage for one home node.
#[derive(Clone)]
pub struct DirectoryStore {
    scheme: Scheme,
    clusters: usize,
    backing: Backing,
}

#[derive(Clone)]
enum Backing {
    Complete(HashMap<u64, DirEntry>),
    Sparse(SparseDirectory),
    Overflow(OverflowDirectory),
}

impl DirectoryStore {
    /// Creates a store for a home node of a `clusters`-cluster machine.
    pub fn new(scheme: Scheme, clusters: usize, org: Organization, seed: u64) -> Self {
        let backing = match org {
            Organization::Complete => Backing::Complete(HashMap::new()),
            Organization::Sparse {
                entries,
                ways,
                policy,
            } => Backing::Sparse(SparseDirectory::new(
                scheme, clusters, entries, ways, policy, seed,
            )),
            Organization::Overflow {
                i,
                wide_entries,
                wide_ways,
                policy,
            } => Backing::Overflow(OverflowDirectory::new(
                i,
                clusters,
                wide_entries,
                wide_ways,
                policy,
                seed,
            )),
        };
        DirectoryStore {
            scheme,
            clusters,
            backing,
        }
    }

    /// The scheme entries use.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Mutable access to the entry for `key`, allocating as needed.
    ///
    /// `pinned` marks blocks whose entries must not be victimized (they have
    /// transactions in flight); complete directories ignore it.
    pub fn entry_mut(
        &mut self,
        key: u64,
        now: u64,
        pinned: impl Fn(u64) -> bool,
    ) -> EntryAccess<'_> {
        match &mut self.backing {
            Backing::Complete(map) => EntryAccess::Ready(
                map.entry(key)
                    .or_insert_with(|| DirEntry::new(self.scheme, self.clusters)),
            ),
            Backing::Overflow(od) => EntryAccess::Ready(od.entry_mut(key, now)),
            Backing::Sparse(sd) => {
                if sd.would_stall(key, &pinned) {
                    // Report a pinned resident of the set as the blocker.
                    let blocker = sd
                        .resident_set_keys(key)
                        .into_iter()
                        .find(|&k| pinned(k))
                        .expect("stall implies a pinned resident");
                    return EntryAccess::Stalled { blocker };
                }
                match sd
                    .allocate_excluding(key, now, &pinned)
                    .expect("stall pre-checked")
                {
                    Allocation::Hit(e) | Allocation::Inserted(e) => EntryAccess::Ready(e),
                    Allocation::Replaced {
                        victim_key,
                        victim,
                        entry,
                    } => EntryAccess::Displaced {
                        victim_key,
                        victim,
                        entry,
                    },
                }
            }
        }
    }

    /// Mutable access to an already-materialized entry, without allocating
    /// (used by transaction-closing messages, whose entries are pinned).
    pub fn lookup_mut(&mut self, key: u64, now: u64) -> Option<&mut DirEntry> {
        match &mut self.backing {
            Backing::Complete(map) => map.get_mut(&key),
            Backing::Sparse(sd) => sd.lookup(key, now),
            Backing::Overflow(od) => Some(od.entry_mut(key, now)),
        }
    }

    /// Read-only view of the entry for `key`, if materialized.
    pub fn probe(&self, key: u64) -> Option<&DirEntry> {
        match &self.backing {
            Backing::Complete(map) => map.get(&key),
            Backing::Sparse(sd) => sd.probe(key),
            Backing::Overflow(od) => od.probe(key),
        }
    }

    /// Records `node` as a sharer of `key`, letting the organization apply
    /// its overflow policy (NB eviction, or small→wide promotion with a
    /// possible wide-victim displacement). The entry must already have been
    /// materialized via [`Self::entry_mut`] in this transaction.
    pub fn record_sharer(
        &mut self,
        key: u64,
        node: NodeId,
        now: u64,
        pinned: impl Fn(u64) -> bool,
    ) -> RecordSharer {
        match &mut self.backing {
            Backing::Complete(map) => {
                match map
                    .get_mut(&key)
                    .expect("record_sharer before entry_mut")
                    .add_sharer(node)
                {
                    AddSharer::Recorded => RecordSharer::Recorded,
                    AddSharer::Evict(v) => RecordSharer::Evict(v),
                }
            }
            Backing::Sparse(sd) => {
                match sd
                    .lookup(key, now)
                    .expect("record_sharer before entry_mut")
                    .add_sharer(node)
                {
                    AddSharer::Recorded => RecordSharer::Recorded,
                    AddSharer::Evict(v) => RecordSharer::Evict(v),
                }
            }
            Backing::Overflow(od) => match od.add_sharer(key, node, now, pinned) {
                OverflowAdd::Recorded => RecordSharer::Recorded,
                OverflowAdd::Evicted(v) => RecordSharer::Evict(v),
                OverflowAdd::RecordedDisplacing { victim_key, victim } => {
                    RecordSharer::Displaced { victim_key, victim }
                }
            },
        }
    }

    /// Releases the entry for `key` once it is empty, so complete maps do not
    /// grow without bound and sparse slots free up early.
    pub fn release_if_empty(&mut self, key: u64) {
        match &mut self.backing {
            Backing::Complete(map) => {
                if map.get(&key).is_some_and(|e| e.is_empty()) {
                    map.remove(&key);
                }
            }
            Backing::Sparse(sd) => {
                if sd.probe(key).is_some_and(|e| e.is_empty()) {
                    sd.invalidate_key(key);
                }
            }
            // The overflow organization additionally demotes wide entries
            // that collapsed back to <= i sharers.
            Backing::Overflow(od) => od.maintain(key),
        }
    }

    /// Sparse statistics, when sparse.
    pub fn sparse_stats(&self) -> Option<SparseStats> {
        match &self.backing {
            Backing::Complete(_) => None,
            Backing::Sparse(sd) => Some(sd.stats()),
            Backing::Overflow(_) => None,
        }
    }

    /// Overflow statistics, when the organization is [`Organization::Overflow`].
    pub fn overflow_stats(&self) -> Option<OverflowStats> {
        match &self.backing {
            Backing::Overflow(od) => Some(od.stats()),
            _ => None,
        }
    }

    /// Turns on sparse replacement-churn telemetry ([`ChurnStats`]).
    /// No-op for complete and overflow backings, which never displace live
    /// victims under pressure the same way (overflow wide-cache churn is
    /// already visible in [`OverflowStats::displacements`]).
    pub fn enable_churn_tracking(&mut self) {
        if let Backing::Sparse(sd) = &mut self.backing {
            sd.enable_churn_tracking();
        }
    }

    /// Sparse replacement-churn telemetry, when sparse and enabled.
    pub fn churn_stats(&self) -> Option<ChurnStats> {
        match &self.backing {
            Backing::Sparse(sd) => sd.churn_stats(),
            _ => None,
        }
    }

    /// Visits every live entry with its key. Visit order is unspecified for
    /// map-backed organizations, so callers must aggregate
    /// order-independently (e.g. into a sharer-count histogram).
    pub fn for_each_live(&self, mut f: impl FnMut(u64, &DirEntry)) {
        match &self.backing {
            Backing::Complete(map) => {
                for (&k, e) in map {
                    if !e.is_empty() {
                        f(k, e);
                    }
                }
            }
            Backing::Sparse(sd) => sd.for_each_live(f),
            Backing::Overflow(od) => od.for_each_live(f),
        }
    }

    /// Number of live entries currently materialized.
    pub fn live_entries(&self) -> usize {
        match &self.backing {
            Backing::Complete(map) => map.values().filter(|e| !e.is_empty()).count(),
            Backing::Sparse(sd) => sd.live_entries(),
            Backing::Overflow(od) => od.live_entries(),
        }
    }

    /// Hashes the directory's protocol-visible state into `h` in a
    /// canonical order for model-checking state digests. Empty entries of a
    /// complete directory hash like absent ones, so lazily-materialized and
    /// never-touched blocks are indistinguishable; sparse/overflow backings
    /// additionally canonicalize their recency bookkeeping (see
    /// [`SparseDirectory::fingerprint`]).
    pub fn fingerprint<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        match &self.backing {
            Backing::Complete(map) => {
                0u8.hash(h);
                let mut keys: Vec<u64> = map
                    .iter()
                    .filter(|(_, e)| !e.is_empty())
                    .map(|(&k, _)| k)
                    .collect();
                keys.sort_unstable();
                for k in keys {
                    k.hash(h);
                    map[&k].hash(h);
                }
            }
            Backing::Sparse(sd) => {
                1u8.hash(h);
                sd.fingerprint(h);
            }
            Backing::Overflow(od) => {
                2u8.hash(h);
                od.fingerprint(h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_store_never_displaces() {
        let mut st = DirectoryStore::new(Scheme::dir_n(), 32, Organization::Complete, 1);
        for k in 0..10_000u64 {
            match st.entry_mut(k, k, |_| false) {
                EntryAccess::Ready(e) => {
                    e.add_sharer((k % 32) as u16);
                }
                _ => panic!("complete store displaced or stalled an entry"),
            }
        }
        assert_eq!(st.live_entries(), 10_000);
    }

    #[test]
    fn sparse_store_reports_displacement() {
        let org = Organization::Sparse {
            entries: 4,
            ways: 4,
            policy: Replacement::Lru,
        };
        let mut st = DirectoryStore::new(Scheme::dir_n(), 32, org, 1);
        for k in 0..4u64 {
            match st.entry_mut(k, k, |_| false) {
                EntryAccess::Ready(e) => {
                    e.add_sharer(1);
                }
                _ => panic!(),
            }
        }
        match st.entry_mut(4, 10, |_| false) {
            EntryAccess::Displaced {
                victim_key, victim, ..
            } => {
                assert_eq!(victim_key, 0);
                assert!(!victim.is_empty());
            }
            _ => panic!("full sparse set must displace"),
        }
    }

    #[test]
    fn release_if_empty_frees_space() {
        let mut st = DirectoryStore::new(Scheme::dir_n(), 32, Organization::Complete, 1);
        if let EntryAccess::Ready(e) = st.entry_mut(7, 0, |_| false) {
            e.add_sharer(3);
        }
        st.release_if_empty(7);
        assert_eq!(st.live_entries(), 1, "non-empty entry is kept");
        if let EntryAccess::Ready(e) = st.entry_mut(7, 1, |_| false) {
            e.clear();
        }
        st.release_if_empty(7);
        assert_eq!(st.live_entries(), 0);
        assert!(st.probe(7).is_none());
    }
}
