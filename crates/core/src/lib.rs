//! # scd-core — scalable directory-based cache coherence schemes
//!
//! This crate implements the primary contribution of Gupta, Weber & Mowry,
//! *"Reducing Memory and Traffic Requirements for Scalable Directory-Based
//! Cache Coherence Schemes"* (ICPP 1990):
//!
//! * the **coarse vector** directory scheme `Dir_i CV_r` ([`entry`]), along
//!   with the schemes it is compared against — full bit vector `Dir_N`,
//!   limited pointers with broadcast `Dir_i B`, without broadcast
//!   `Dir_i NB`, and the composite-pointer superset scheme `Dir_i X`;
//! * **sparse directories** ([`sparse`]) — a set-associative directory cache
//!   with no backing store, with LRU / random / LRA replacement;
//! * the directory **memory-overhead model** ([`mod@overhead`]) reproducing the
//!   paper's Table 1 arithmetic;
//! * the **Monte-Carlo invalidation analysis** ([`analysis`]) reproducing
//!   Figure 2.
//!
//! The crate is deliberately free of any simulator machinery: entries report
//! *what must be invalidated*; sending messages and collecting
//! acknowledgements belongs to `scd-protocol`.
//!
//! ## Quick example
//!
//! ```
//! use scd_core::{DirEntry, Scheme};
//!
//! // Dir3CV2 on a 32-cluster machine: 3 pointers, then regions of 2.
//! let mut e = DirEntry::new(Scheme::dir_cv(3, 2), 32);
//! for n in [4, 9, 20, 21] {
//!     e.add_sharer(n);
//! }
//! // Overflowed: the entry now tracks regions {4,5} {8,9} {20,21}.
//! let targets = e.invalidation_targets(9);
//! assert_eq!(targets.iter().collect::<Vec<_>>(), vec![4, 5, 8, 20, 21]);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod entry;
pub mod node_set;
pub mod overflow;
pub mod overhead;
pub mod scheme;
pub mod sparse;
pub mod store;

pub use entry::{AddSharer, DirEntry, DirState, ReprKind, MAX_POINTERS};
pub use node_set::{NodeId, NodeSet};
pub use overhead::{overhead, DirectoryChoice, MachineSpec, OverheadReport};
pub use scheme::{ptr_bits, NbVictim, Scheme};
pub use sparse::{ChurnStats, Replacement, SparseDirectory, SparseStats, CHURN_DISTANCE_BUCKETS};
pub use overflow::{OverflowAdd, OverflowDirectory, OverflowStats};
pub use store::{DirectoryStore, EntryAccess, Organization, RecordSharer};
