//! Directory memory overhead accounting (paper §3, §4.2, Table 1).
//!
//! The second scalability requirement for directory schemes is that the
//! hardware overhead — dominated by directory memory — grows at most
//! linearly with machine size. This module reproduces the paper's
//! arithmetic: bits per entry for each scheme, tag bits for sparse
//! directories, total directory memory, and the overhead expressed as a
//! fraction of main memory.

use crate::scheme::Scheme;

/// Physical dimensions of a machine, following Table 1's columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineSpec {
    /// Number of clusters (directory state is per cluster).
    pub clusters: usize,
    /// Processors per cluster (DASH uses 4).
    pub procs_per_cluster: usize,
    /// Main memory per processor, bytes (paper: 16 MB).
    pub mem_per_proc: u64,
    /// Cache per processor, bytes (paper: 256 KB secondary cache).
    pub cache_per_proc: u64,
    /// Coherence block size, bytes (paper: 16 B).
    pub block_bytes: u64,
}

impl MachineSpec {
    /// The paper's per-processor provisioning: 16 MB memory, 256 KB cache,
    /// 16-byte blocks, 4 processors per cluster.
    pub fn paper_defaults(clusters: usize) -> Self {
        MachineSpec {
            clusters,
            procs_per_cluster: 4,
            mem_per_proc: 16 << 20,
            cache_per_proc: 256 << 10,
            block_bytes: 16,
        }
    }

    /// Total processor count.
    pub fn processors(&self) -> usize {
        self.clusters * self.procs_per_cluster
    }

    /// Total main memory, bytes.
    pub fn total_memory(&self) -> u64 {
        self.mem_per_proc * self.processors() as u64
    }

    /// Total cache, bytes.
    pub fn total_cache(&self) -> u64 {
        self.cache_per_proc * self.processors() as u64
    }

    /// Number of memory blocks in the machine.
    pub fn memory_blocks(&self) -> u64 {
        self.total_memory() / self.block_bytes
    }

    /// Number of cache blocks in the machine (the natural sparse-directory
    /// size unit — "size factor 1" in §6.3).
    pub fn cache_blocks(&self) -> u64 {
        self.total_cache() / self.block_bytes
    }
}

/// A directory provisioning choice to be costed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirectoryChoice {
    /// Entry format.
    pub scheme: Scheme,
    /// Memory blocks per directory entry: 1 = complete directory, `s` > 1 =
    /// sparse directory with sparsity `s` (paper's "ratio of main memory
    /// blocks to directory entries").
    pub sparsity: u64,
}

/// Cost breakdown produced by [`overhead`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverheadReport {
    /// State bits (sharer representation) per entry.
    pub state_bits: usize,
    /// Dirty bit (always 1, kept separate for readability).
    pub dirty_bits: usize,
    /// Tag bits per entry (0 for complete directories; `ceil(log2 sparsity)`
    /// for sparse ones, per the paper's sparsity-64 example).
    pub tag_bits: usize,
    /// Total bits per entry.
    pub entry_bits: usize,
    /// Number of directory entries in the machine.
    pub entries: u64,
    /// Total directory memory, bits.
    pub total_bits: u64,
    /// Directory memory as a fraction of main memory.
    pub overhead: f64,
    /// Memory saved relative to a complete full-bit-vector directory
    /// ("savings factor"; the paper's sparsity-64 example yields ~54).
    pub savings_vs_full: f64,
}

/// Bits of tag needed to disambiguate `sparsity` blocks per slot.
fn tag_bits_for(sparsity: u64) -> usize {
    if sparsity <= 1 {
        0
    } else {
        64 - (sparsity - 1).leading_zeros() as usize
    }
}

/// Computes the directory memory overhead of `choice` on `spec`.
pub fn overhead(spec: &MachineSpec, choice: &DirectoryChoice) -> OverheadReport {
    assert!(choice.sparsity >= 1, "sparsity must be at least 1");
    let state_bits = choice.scheme.state_bits(spec.clusters);
    let tag_bits = tag_bits_for(choice.sparsity);
    let entry_bits = state_bits + 1 + tag_bits;
    let entries = spec.memory_blocks() / choice.sparsity;
    let total_bits = entry_bits as u64 * entries;
    let main_bits = spec.total_memory() * 8;
    let overhead_frac = total_bits as f64 / main_bits as f64;

    let full_entry_bits = (Scheme::FullVector.state_bits(spec.clusters) + 1) as u64;
    let full_total = full_entry_bits * spec.memory_blocks();
    OverheadReport {
        state_bits,
        dirty_bits: 1,
        tag_bits,
        entry_bits,
        entries,
        total_bits,
        overhead: overhead_frac,
        savings_vs_full: full_total as f64 / total_bits as f64,
    }
}

/// One row of Table 1, rendered by the `table1` experiment binary.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Machine dimensions.
    pub spec: MachineSpec,
    /// Directory provisioning.
    pub choice: DirectoryChoice,
    /// Display label (e.g. "sparse Dir64").
    pub label: String,
    /// Computed cost.
    pub report: OverheadReport,
}

/// The three sample machine configurations of Table 1.
pub fn table1_rows() -> Vec<Table1Row> {
    let mut rows = Vec::new();
    // 16 clusters x 4 = 64 processors, complete Dir16 (the DASH prototype).
    let spec = MachineSpec::paper_defaults(16);
    let choice = DirectoryChoice {
        scheme: Scheme::FullVector,
        sparsity: 1,
    };
    rows.push(Table1Row {
        spec,
        choice,
        label: format!("Dir{}", spec.clusters),
        report: overhead(&spec, &choice),
    });
    // 64 clusters x 4 = 256 processors, sparse (sparsity 4) Dir64.
    let spec = MachineSpec::paper_defaults(64);
    let choice = DirectoryChoice {
        scheme: Scheme::FullVector,
        sparsity: 4,
    };
    rows.push(Table1Row {
        spec,
        choice,
        label: format!("sparse Dir{}", spec.clusters),
        report: overhead(&spec, &choice),
    });
    // 256 clusters x 4 = 1024 processors, sparse (sparsity 4) Dir8CV4.
    let spec = MachineSpec::paper_defaults(256);
    let choice = DirectoryChoice {
        scheme: Scheme::dir_cv(8, 4),
        sparsity: 4,
    };
    rows.push(Table1Row {
        spec,
        choice,
        label: "sparse Dir8CV4".to_string(),
        report: overhead(&spec, &choice),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dash_prototype_overhead_is_13_3_percent() {
        // 17 bits per 16-byte (128-bit) block = 13.28%.
        let spec = MachineSpec::paper_defaults(16);
        let choice = DirectoryChoice {
            scheme: Scheme::FullVector,
            sparsity: 1,
        };
        let r = overhead(&spec, &choice);
        assert_eq!(r.entry_bits, 17);
        assert!((r.overhead - 17.0 / 128.0).abs() < 1e-12);
        assert!((r.overhead * 100.0 - 13.28).abs() < 0.01);
    }

    #[test]
    fn sparsity_64_savings_factor_matches_paper() {
        // Paper §5: 32-cluster machine, full vector, sparsity 64:
        // 33 bits/block -> 39 bits per 64 blocks, savings factor ~54.
        let mut spec = MachineSpec::paper_defaults(32);
        spec.procs_per_cluster = 1; // the evaluation runs use 32 procs = 32 clusters
        let choice = DirectoryChoice {
            scheme: Scheme::FullVector,
            sparsity: 64,
        };
        let r = overhead(&spec, &choice);
        assert_eq!(r.state_bits, 32);
        assert_eq!(r.tag_bits, 6);
        assert_eq!(r.entry_bits, 39);
        let savings = 33.0 * 64.0 / 39.0;
        assert!((r.savings_vs_full - savings).abs() < 1e-9, "{r:?}");
        assert!(r.savings_vs_full > 54.0 && r.savings_vs_full < 54.2);
    }

    #[test]
    fn table1_overheads_are_around_13_percent() {
        for row in table1_rows() {
            assert!(
                row.report.overhead > 0.12 && row.report.overhead < 0.14,
                "{}: overhead {:.3} out of band",
                row.label,
                row.report.overhead
            );
        }
    }

    #[test]
    fn table1_machines_match_paper_dimensions() {
        let rows = table1_rows();
        assert_eq!(rows[0].spec.processors(), 64);
        assert_eq!(rows[0].spec.total_memory(), 1 << 30); // 1 GB
        assert_eq!(rows[1].spec.processors(), 256);
        assert_eq!(rows[2].spec.processors(), 1024);
        assert_eq!(rows[2].spec.total_cache(), 256 << 20); // 256 MB
    }

    #[test]
    fn sparsity_reduces_memory_by_orders_of_magnitude() {
        let spec = MachineSpec::paper_defaults(64);
        let complete = overhead(
            &spec,
            &DirectoryChoice {
                scheme: Scheme::FullVector,
                sparsity: 1,
            },
        );
        let sparse = overhead(
            &spec,
            &DirectoryChoice {
                scheme: Scheme::FullVector,
                sparsity: 64,
            },
        );
        let ratio = complete.total_bits as f64 / sparse.total_bits as f64;
        assert!(
            (50.0..70.0).contains(&ratio),
            "one-to-two orders of magnitude expected, got {ratio}"
        );
    }

    #[test]
    fn tag_bits_round_up() {
        assert_eq!(tag_bits_for(1), 0);
        assert_eq!(tag_bits_for(2), 1);
        assert_eq!(tag_bits_for(4), 2);
        assert_eq!(tag_bits_for(5), 3);
        assert_eq!(tag_bits_for(64), 6);
    }
}
