//! Sparse directories: a set-associative directory *cache* with no backing
//! store (paper §4.2).
//!
//! Main memory is far larger than all processor caches combined, so at any
//! instant most directory entries are empty. A sparse directory keeps only
//! the active entries. When a set fills up, a victim entry is chosen
//! (LRU / random / LRA), all cached copies of the victim block are
//! invalidated, and the slot is reused — no write-back of directory state is
//! ever needed, because state for an uncached block is trivially empty.
//!
//! This module is purely the storage organization; sending the replacement
//! invalidations and collecting acknowledgements is the protocol layer's job
//! (DASH uses the Remote Access Cache for that). [`SparseDirectory::allocate`]
//! therefore *returns* the victim's entry so the caller can compute the
//! invalidation set.

use crate::entry::DirEntry;
use crate::scheme::Scheme;

/// Replacement policy for conflicting sparse-directory entries (§6.3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Replacement {
    /// Least-recently-used: replace the entry touched longest ago. Hardest
    /// to implement in hardware, best-performing in the paper.
    Lru,
    /// Uniform random choice. Easiest in hardware; the paper found it beats
    /// LRA.
    Random,
    /// Least-recently-allocated: replace the entry *allocated* first,
    /// regardless of use. Worst of the three in the paper.
    Lra,
}

/// One way of one set.
#[derive(Clone, Debug)]
struct Slot {
    /// Key (block identifier) currently resident, if any.
    key: u64,
    valid: bool,
    entry: DirEntry,
    /// Last lookup/update time (LRU).
    last_use: u64,
    /// Allocation time (LRA).
    allocated: u64,
}

/// Statistics the experiment harness reads off a sparse directory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SparseStats {
    /// Lookups that found the key resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Allocations satisfied by an invalid (empty) slot.
    pub fills: u64,
    /// Allocations that displaced a live entry (replacement invalidations
    /// were required).
    pub replacements: u64,
}

/// Log₂ distance buckets in [`ChurnStats::reref_distance`]; bucket `b`
/// counts re-references at `2^b ..= 2^(b+1)-1` allocations after the
/// eviction (the last bucket saturates).
pub const CHURN_DISTANCE_BUCKETS: usize = 16;

/// Victims the churn tracker remembers at once. Evictions beyond the cap
/// forget their oldest record, so a very late re-reference of a long-ago
/// victim may go uncounted — the bound keeps the tracker O(1) per access
/// whatever the run length.
pub const CHURN_VICTIM_CAP: usize = 4096;

/// Replacement-churn telemetry: how soon displaced victims come back.
///
/// A sparse directory that keeps evicting entries the application is
/// about to touch again (short re-reference distances) is thrashing —
/// its invalidations were pure waste. Gated behind
/// [`SparseDirectory::enable_churn_tracking`] and excluded from
/// [`SparseDirectory::fingerprint`]: pure observation, never behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Replacements observed while tracking was enabled.
    pub replacements: u64,
    /// Allocations of a key that a tracked replacement had evicted.
    pub rerefs: u64,
    /// Re-reference distances (allocations between eviction and return),
    /// log₂-bucketed.
    pub reref_distance: [u64; CHURN_DISTANCE_BUCKETS],
}

impl ChurnStats {
    /// Accumulates `other` (per-home stats into a machine total).
    pub fn merge(&mut self, other: &ChurnStats) {
        self.replacements += other.replacements;
        self.rerefs += other.rerefs;
        for (a, b) in self.reref_distance.iter_mut().zip(other.reref_distance) {
            *a += b;
        }
    }

    fn bucket(distance: u64) -> usize {
        let b = if distance == 0 {
            0
        } else {
            63 - distance.leading_zeros() as usize
        };
        b.min(CHURN_DISTANCE_BUCKETS - 1)
    }
}

/// The gated tracker: a bounded map from evicted key to the allocation
/// clock at eviction time.
#[derive(Clone, Debug, Default)]
struct ChurnTracker {
    stats: ChurnStats,
    /// Allocation counter (the distance unit).
    clock: u64,
    evicted_at: std::collections::HashMap<u64, u64>,
    fifo: std::collections::VecDeque<u64>,
}

impl ChurnTracker {
    fn on_access(&mut self, key: u64) {
        self.clock += 1;
        if let Some(t) = self.evicted_at.remove(&key) {
            self.stats.rerefs += 1;
            self.stats.reref_distance[ChurnStats::bucket(self.clock - t)] += 1;
        }
    }

    fn on_replacement(&mut self, victim_key: u64) {
        self.stats.replacements += 1;
        if self.evicted_at.insert(victim_key, self.clock).is_none() {
            self.fifo.push_back(victim_key);
            if self.fifo.len() > CHURN_VICTIM_CAP {
                if let Some(old) = self.fifo.pop_front() {
                    self.evicted_at.remove(&old);
                }
            }
        }
    }
}

/// Result of [`SparseDirectory::allocate`].
pub enum Allocation<'a> {
    /// The key was already resident.
    Hit(&'a mut DirEntry),
    /// An empty slot was filled; entry starts uncached.
    Inserted(&'a mut DirEntry),
    /// A live victim was displaced. The caller must invalidate all cached
    /// copies of `victim_key` (the returned `victim` entry says which
    /// clusters those are). The new `entry` starts uncached.
    Replaced {
        /// Block identifier that lost its directory entry.
        victim_key: u64,
        /// The displaced entry (ownership transferred to the caller).
        victim: DirEntry,
        /// Fresh entry for the requested key.
        entry: &'a mut DirEntry,
    },
}

/// A set-associative sparse directory.
///
/// Keys are abstract block identifiers (the machine layer passes home-local
/// block indices). Indexing is `key % num_sets` — tags in a real sparse
/// directory are only a few bits because it holds a large fraction of memory
/// blocks (paper §4.2).
#[derive(Clone)]
pub struct SparseDirectory {
    scheme: Scheme,
    clusters: usize,
    sets: usize,
    ways: usize,
    policy: Replacement,
    slots: Vec<Slot>,
    stats: SparseStats,
    /// xorshift64* state for the random policy (deterministic per seed).
    rng_state: u64,
    /// Replacement-churn telemetry; `None` until enabled (zero cost off).
    churn: Option<Box<ChurnTracker>>,
}

impl SparseDirectory {
    /// Creates a sparse directory with `entries` total slots organized as
    /// `entries / ways` sets of `ways` ways.
    ///
    /// # Panics
    /// If `entries` is not a positive multiple of `ways`.
    pub fn new(
        scheme: Scheme,
        clusters: usize,
        entries: usize,
        ways: usize,
        policy: Replacement,
        seed: u64,
    ) -> Self {
        assert!(ways >= 1, "associativity must be at least 1");
        assert!(
            entries >= ways && entries.is_multiple_of(ways),
            "entry count {entries} must be a positive multiple of associativity {ways}"
        );
        let proto = DirEntry::new(scheme, clusters);
        SparseDirectory {
            scheme,
            clusters,
            sets: entries / ways,
            ways,
            policy,
            slots: vec![
                Slot {
                    key: 0,
                    valid: false,
                    entry: proto,
                    last_use: 0,
                    allocated: 0,
                };
                entries
            ],
            stats: SparseStats::default(),
            rng_state: seed | 1,
            churn: None,
        }
    }

    /// Turns on replacement-churn tracking ([`ChurnStats`]). Idempotent;
    /// off by default because the victim map costs a hash probe per
    /// allocation.
    pub fn enable_churn_tracking(&mut self) {
        if self.churn.is_none() {
            self.churn = Some(Box::default());
        }
    }

    /// Churn telemetry, if tracking was enabled.
    pub fn churn_stats(&self) -> Option<ChurnStats> {
        self.churn.as_ref().map(|c| c.stats)
    }

    /// Total number of directory slots.
    pub fn entries(&self) -> usize {
        self.slots.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Directory scheme used for entries.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SparseStats {
        self.stats
    }

    fn set_range(&self, key: u64) -> std::ops::Range<usize> {
        let set = (key % self.sets as u64) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64* — cheap, deterministic, good enough for victim choice.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Looks up `key` without allocating; touches LRU state on hit.
    pub fn lookup(&mut self, key: u64, now: u64) -> Option<&mut DirEntry> {
        let range = self.set_range(key);
        for idx in range {
            if self.slots[idx].valid && self.slots[idx].key == key {
                self.stats.hits += 1;
                self.slots[idx].last_use = now;
                return Some(&mut self.slots[idx].entry);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Read-only probe (no statistics or LRU update).
    pub fn probe(&self, key: u64) -> Option<&DirEntry> {
        self.set_range(key)
            .map(|idx| &self.slots[idx])
            .find(|s| s.valid && s.key == key)
            .map(|s| &s.entry)
    }

    /// Finds or creates the entry for `key`, evicting a victim if the set is
    /// full. See [`Allocation`].
    pub fn allocate(&mut self, key: u64, now: u64) -> Allocation<'_> {
        self.allocate_excluding(key, now, |_| false)
            .expect("no keys banned, allocation cannot stall")
    }

    /// Like [`Self::allocate`], but never victimizes a key for which
    /// `banned` returns true (the protocol pins blocks with in-flight
    /// transactions). Returns `None` if the set is full and every resident
    /// key is banned — the caller must park the request until one of them
    /// unpins.
    pub fn allocate_excluding(
        &mut self,
        key: u64,
        now: u64,
        banned: impl Fn(u64) -> bool,
    ) -> Option<Allocation<'_>> {
        let range = self.set_range(key);
        if let Some(churn) = &mut self.churn {
            churn.on_access(key);
        }

        // 1. Hit?
        if let Some(idx) = range
            .clone()
            .find(|&i| self.slots[i].valid && self.slots[i].key == key)
        {
            self.stats.hits += 1;
            let slot = &mut self.slots[idx];
            slot.last_use = now;
            return Some(Allocation::Hit(&mut slot.entry));
        }
        self.stats.misses += 1;

        // 2. Empty way? Also opportunistically reclaim slots whose entry
        // became empty (all copies written back) — the paper notes empty
        // slots are created when caches write back dirty lines.
        if let Some(idx) = range
            .clone()
            .find(|&i| !self.slots[i].valid || self.slots[i].entry.is_empty())
        {
            self.stats.fills += 1;
            let slot = &mut self.slots[idx];
            slot.key = key;
            slot.valid = true;
            slot.entry.clear();
            slot.last_use = now;
            slot.allocated = now;
            return Some(Allocation::Inserted(&mut slot.entry));
        }

        // 3. Replacement, skipping pinned (banned) victims.
        let eligible: Vec<usize> = range
            .clone()
            .filter(|&i| !banned(self.slots[i].key))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let victim_idx = match self.policy {
            Replacement::Lru => eligible
                .iter()
                .copied()
                .min_by_key(|&i| self.slots[i].last_use)
                .expect("eligible is non-empty"),
            Replacement::Lra => eligible
                .iter()
                .copied()
                .min_by_key(|&i| self.slots[i].allocated)
                .expect("eligible is non-empty"),
            Replacement::Random => {
                let off = (self.next_random() % eligible.len() as u64) as usize;
                eligible[off]
            }
        };
        self.stats.replacements += 1;
        let victim_key = self.slots[victim_idx].key;
        if let Some(churn) = &mut self.churn {
            churn.on_replacement(victim_key);
        }
        let slot = &mut self.slots[victim_idx];
        let mut victim = DirEntry::new(self.scheme, self.clusters);
        std::mem::swap(&mut victim, &mut slot.entry);
        slot.key = key;
        slot.valid = true;
        slot.last_use = now;
        slot.allocated = now;
        Some(Allocation::Replaced {
            victim_key,
            victim,
            entry: &mut slot.entry,
        })
    }

    /// Drops the entry for `key` (used when the protocol empties an entry —
    /// e.g. last copy written back — and wants the slot reusable at once).
    pub fn invalidate_key(&mut self, key: u64) -> bool {
        let range = self.set_range(key);
        for idx in range {
            if self.slots[idx].valid && self.slots[idx].key == key {
                self.slots[idx].valid = false;
                self.slots[idx].entry.clear();
                return true;
            }
        }
        false
    }

    /// True if [`Self::allocate_excluding`] would return `None` for `key`:
    /// the key is absent, no way is reclaimable, and every resident is
    /// banned.
    pub fn would_stall(&self, key: u64, banned: impl Fn(u64) -> bool) -> bool {
        let range = self.set_range(key);
        for i in range.clone() {
            let s = &self.slots[i];
            if s.valid && s.key == key {
                return false;
            }
        }
        for i in range.clone() {
            let s = &self.slots[i];
            if !s.valid || s.entry.is_empty() {
                return false;
            }
        }
        range.into_iter().all(|i| banned(self.slots[i].key))
    }

    /// Keys of the valid entries in `key`'s set (stall diagnostics).
    pub fn resident_set_keys(&self, key: u64) -> Vec<u64> {
        self.set_range(key)
            .map(|i| &self.slots[i])
            .filter(|s| s.valid)
            .map(|s| s.key)
            .collect()
    }

    /// Visits every live (valid, non-empty) entry with its key. Iteration
    /// order is slot order — deterministic for a given access history.
    pub fn for_each_live(&self, mut f: impl FnMut(u64, &DirEntry)) {
        for s in &self.slots {
            if s.valid && !s.entry.is_empty() {
                f(s.key, &s.entry);
            }
        }
    }

    /// Number of currently live (valid, non-empty) entries.
    pub fn live_entries(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.valid && !s.entry.is_empty())
            .count()
    }

    /// Hashes the directory's protocol-visible state into `h` for
    /// model-checking state digests.
    ///
    /// Slot *position* is hashed (set/way placement determines future
    /// victims), but absolute `last_use` / `allocated` times are reduced to
    /// their rank within the set: victim selection only ever compares these
    /// times against each other inside one set, so two states whose
    /// recency *orders* agree behave identically even if the clocks differ.
    /// The hit/replacement counters are excluded; `rng_state` is included
    /// because the random policy's future choices depend on it.
    pub fn fingerprint<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        let rank_of = |times: &[u64], t: u64| times.iter().filter(|&&x| x < t).count();
        for set in 0..self.sets {
            let range = set * self.ways..(set + 1) * self.ways;
            let uses: Vec<u64> = self.slots[range.clone()]
                .iter()
                .filter(|s| s.valid)
                .map(|s| s.last_use)
                .collect();
            let allocs: Vec<u64> = self.slots[range.clone()]
                .iter()
                .filter(|s| s.valid)
                .map(|s| s.allocated)
                .collect();
            for (way, slot) in self.slots[range].iter().enumerate() {
                if !slot.valid {
                    (way, false).hash(h);
                    continue;
                }
                (way, true, slot.key).hash(h);
                slot.entry.hash(h);
                rank_of(&uses, slot.last_use).hash(h);
                rank_of(&allocs, slot.allocated).hash(h);
            }
        }
        if self.policy == Replacement::Random {
            self.rng_state.hash(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: usize = 32;

    fn dir(entries: usize, ways: usize, policy: Replacement) -> SparseDirectory {
        SparseDirectory::new(Scheme::dir_n(), P, entries, ways, policy, 42)
    }

    #[test]
    fn miss_then_hit() {
        let mut d = dir(8, 2, Replacement::Lru);
        assert!(d.lookup(100, 0).is_none());
        match d.allocate(100, 1) {
            Allocation::Inserted(e) => {
                e.add_sharer(3);
            }
            _ => panic!("expected insert"),
        }
        let e = d.lookup(100, 2).expect("resident now");
        assert!(e.sharer_superset().contains(3));
        assert_eq!(d.stats().hits, 1);
        assert_eq!(d.stats().misses, 2);
    }

    #[test]
    fn conflicting_keys_fill_then_replace_lru() {
        // 4 sets x 1 way; keys 0, 4, 8 all map to set 0.
        let mut d = dir(4, 1, Replacement::Lru);
        match d.allocate(0, 10) {
            Allocation::Inserted(e) => {
                e.add_sharer(1);
            }
            _ => panic!(),
        }
        match d.allocate(4, 20) {
            Allocation::Replaced {
                victim_key, victim, ..
            } => {
                assert_eq!(victim_key, 0);
                assert!(victim.sharer_superset().contains(1));
            }
            _ => panic!("direct-mapped conflict must replace"),
        }
        assert!(d.probe(0).is_none());
        assert!(d.probe(4).is_some());
        assert_eq!(d.stats().replacements, 1);
    }

    #[test]
    fn lru_picks_least_recently_used_way() {
        // 1 set x 2 ways.
        let mut d = dir(2, 2, Replacement::Lru);
        match d.allocate(1, 0) {
            Allocation::Inserted(e) => {
                e.add_sharer(0);
            }
            _ => panic!(),
        }
        match d.allocate(2, 1) {
            Allocation::Inserted(e) => {
                e.add_sharer(0);
            }
            _ => panic!(),
        }
        // Touch key 1 so key 2 becomes LRU.
        assert!(d.lookup(1, 5).is_some());
        match d.allocate(3, 6) {
            Allocation::Replaced { victim_key, .. } => assert_eq!(victim_key, 2),
            _ => panic!("full set must replace"),
        }
    }

    #[test]
    fn lra_ignores_recency_of_use() {
        let mut d = dir(2, 2, Replacement::Lra);
        match d.allocate(1, 0) {
            Allocation::Inserted(e) => {
                e.add_sharer(0);
            }
            _ => panic!(),
        }
        match d.allocate(2, 1) {
            Allocation::Inserted(e) => {
                e.add_sharer(0);
            }
            _ => panic!(),
        }
        // Heavy use of key 1 does not protect it under LRA.
        for t in 2..50 {
            assert!(d.lookup(1, t).is_some());
        }
        match d.allocate(3, 50) {
            Allocation::Replaced { victim_key, .. } => {
                assert_eq!(victim_key, 1, "LRA evicts the earliest allocation")
            }
            _ => panic!(),
        }
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let run = |seed| {
            let mut d = SparseDirectory::new(Scheme::dir_n(), P, 4, 4, Replacement::Random, seed);
            for k in 0..4 {
                if let Allocation::Inserted(e) = d.allocate(k, k) {
                    e.add_sharer(0);
                } else {
                    panic!()
                }
            }
            let mut victims = vec![];
            for k in 4..12 {
                if let Allocation::Replaced {
                    victim_key, entry, ..
                } = d.allocate(k, k)
                {
                    // Keep the fresh entry live so the next allocation also
                    // has to replace (empty entries are reclaimed first).
                    entry.add_sharer(0);
                    victims.push(victim_key);
                } else {
                    panic!()
                }
            }
            victims
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    #[test]
    fn empty_entries_are_reclaimed_before_replacement() {
        let mut d = dir(2, 2, Replacement::Lru);
        match d.allocate(1, 0) {
            Allocation::Inserted(e) => {
                e.add_sharer(4);
            }
            _ => panic!(),
        }
        match d.allocate(2, 1) {
            Allocation::Inserted(e) => {
                e.add_sharer(5);
            }
            _ => panic!(),
        }
        // Key 1's entry empties out (e.g. dirty writeback of the only copy).
        d.lookup(1, 2).unwrap().clear();
        match d.allocate(3, 3) {
            Allocation::Inserted(_) => {}
            _ => panic!("empty entry should be reclaimed without invalidations"),
        }
        assert!(d.probe(2).is_some(), "live entry untouched");
    }

    #[test]
    fn invalidate_key_frees_slot() {
        let mut d = dir(4, 2, Replacement::Lru);
        if let Allocation::Inserted(e) = d.allocate(9, 0) {
            e.add_sharer(1);
        } else {
            panic!()
        }
        assert_eq!(d.live_entries(), 1);
        assert!(d.invalidate_key(9));
        assert!(!d.invalidate_key(9));
        assert_eq!(d.live_entries(), 0);
        assert!(d.probe(9).is_none());
    }

    #[test]
    #[should_panic(expected = "multiple of associativity")]
    fn entries_must_be_multiple_of_ways() {
        dir(5, 2, Replacement::Lru);
    }

    #[test]
    fn churn_tracking_counts_rerefs_with_log2_distances() {
        // 4 sets x 1 way; keys 0, 4, 8 conflict in set 0.
        let mut d = dir(4, 1, Replacement::Lru);
        assert_eq!(d.churn_stats(), None, "off by default");
        d.enable_churn_tracking();
        assert_eq!(d.churn_stats(), Some(ChurnStats::default()));

        let live = |d: &mut SparseDirectory, k, t| match d.allocate(k, t) {
            Allocation::Hit(e) | Allocation::Inserted(e) => {
                e.add_sharer(0);
            }
            Allocation::Replaced { entry, .. } => {
                entry.add_sharer(0);
            }
        };
        live(&mut d, 0, 0); // clock 1: insert
        live(&mut d, 4, 1); // clock 2: evicts 0
        live(&mut d, 0, 2); // clock 3: evicts 4, re-refs 0 at distance 1
        live(&mut d, 8, 3); // clock 4: evicts 0
        live(&mut d, 4, 4); // clock 5: evicts 8, re-refs 4 at distance 2
        let c = d.churn_stats().unwrap();
        assert_eq!(c.replacements, 4);
        assert_eq!(c.rerefs, 2);
        assert_eq!(c.reref_distance[0], 1, "distance 1 → bucket 0");
        assert_eq!(c.reref_distance[1], 1, "distance 2 → bucket 1");
        assert_eq!(c.reref_distance[2..].iter().sum::<u64>(), 0);
        assert!(c.rerefs <= c.replacements);
    }

    #[test]
    fn churn_tracking_does_not_perturb_behavior_or_fingerprint() {
        use std::hash::Hasher;
        let run = |track: bool| {
            let mut d = SparseDirectory::new(Scheme::dir_n(), P, 4, 2, Replacement::Random, 9);
            if track {
                d.enable_churn_tracking();
            }
            let mut victims = vec![];
            for k in 0..20u64 {
                match d.allocate(k, k) {
                    Allocation::Hit(e) | Allocation::Inserted(e) => {
                        e.add_sharer(0);
                    }
                    Allocation::Replaced {
                        victim_key, entry, ..
                    } => {
                        entry.add_sharer(0);
                        victims.push(victim_key);
                    }
                }
            }
            let mut h = std::collections::hash_map::DefaultHasher::new();
            d.fingerprint(&mut h);
            (victims, h.finish(), d.stats())
        };
        assert_eq!(run(false), run(true), "telemetry must be invisible");
    }

    #[test]
    fn churn_merge_accumulates_per_home_stats() {
        let mut total = ChurnStats::default();
        let mut a = ChurnStats {
            replacements: 3,
            rerefs: 1,
            ..Default::default()
        };
        a.reref_distance[0] = 1;
        let mut b = ChurnStats {
            replacements: 2,
            rerefs: 2,
            ..Default::default()
        };
        b.reref_distance[0] = 1;
        b.reref_distance[5] = 1;
        total.merge(&a);
        total.merge(&b);
        assert_eq!(total.replacements, 5);
        assert_eq!(total.rerefs, 3);
        assert_eq!(total.reref_distance[0], 2);
        assert_eq!(total.reref_distance[5], 1);
    }

    #[test]
    fn churn_victim_map_is_bounded() {
        // Direct-mapped single set: every allocation after the first evicts.
        let mut d = dir(1, 1, Replacement::Lru);
        d.enable_churn_tracking();
        for k in 0..(CHURN_VICTIM_CAP as u64 + 100) {
            match d.allocate(k, k) {
                Allocation::Hit(e) | Allocation::Inserted(e) => {
                    e.add_sharer(0);
                }
                Allocation::Replaced { entry, .. } => {
                    entry.add_sharer(0);
                }
            }
        }
        let c = d.churn.as_ref().unwrap();
        assert!(c.evicted_at.len() <= CHURN_VICTIM_CAP);
        assert_eq!(c.evicted_at.len(), c.fifo.len());
        // Key 0 was evicted long ago and fell off the FIFO: returning to it
        // replaces again (recorded) but the distance is lost, not counted.
        assert_eq!(c.stats.rerefs, 0);
    }

    #[test]
    fn for_each_live_visits_exactly_live_entries() {
        let mut d = dir(8, 2, Replacement::Lru);
        for k in [3u64, 9, 17] {
            if let Allocation::Inserted(e) = d.allocate(k, k) {
                e.add_sharer((k % 4) as u16);
            } else {
                panic!()
            }
        }
        // Empty one entry out; it must not be visited.
        d.lookup(9, 50).unwrap().clear();
        let mut seen = vec![];
        d.for_each_live(|k, e| {
            assert!(!e.is_empty());
            seen.push(k);
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![3, 17]);
        assert_eq!(d.live_entries(), 2);
    }

    #[test]
    fn banned_victims_are_skipped() {
        // 1 set x 2 ways, keys 1 and 2 resident, key 1 pinned.
        let mut d = dir(2, 2, Replacement::Lru);
        for k in [1u64, 2] {
            if let Allocation::Inserted(e) = d.allocate(k, k) {
                e.add_sharer(0);
            } else {
                panic!()
            }
        }
        match d.allocate_excluding(3, 10, |k| k == 1) {
            Some(Allocation::Replaced { victim_key, .. }) => {
                assert_eq!(victim_key, 2, "pinned key 1 must survive")
            }
            _ => panic!("expected replacement of the unpinned way"),
        }
        assert!(d.probe(1).is_some());
    }

    #[test]
    fn fully_pinned_set_stalls() {
        let mut d = dir(2, 2, Replacement::Lru);
        for k in [1u64, 2] {
            if let Allocation::Inserted(e) = d.allocate(k, k) {
                e.add_sharer(0);
            } else {
                panic!()
            }
        }
        assert!(d.allocate_excluding(3, 10, |_| true).is_none());
        // Nothing was displaced.
        assert!(d.probe(1).is_some() && d.probe(2).is_some());
    }
}
