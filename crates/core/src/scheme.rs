//! Directory scheme descriptors and their storage-cost arithmetic.
//!
//! The paper compares five memory-based directory organizations:
//!
//! * `Dir_N` — full bit vector, one presence bit per cluster (§3.1)
//! * `Dir_i B` — `i` pointers, overflow sets a broadcast bit (§3.2.1)
//! * `Dir_i NB` — `i` pointers, overflow evicts an existing sharer (§3.2.2)
//! * `Dir_i X` — `i` pointers, overflow collapses them into one composite
//!   (superset) pointer whose bits may be 0, 1, or X (§3.2.3)
//! * `Dir_i CV_r` — `i` pointers, overflow reinterprets the same storage as a
//!   coarse bit vector with one bit per region of `r` clusters (§4.1)
//!
//! [`Scheme`] carries the parameters; [`Scheme::state_bits`] reproduces the
//! paper's storage accounting (used by the Table 1 overhead model).

/// Victim selection policy for `Dir_i NB` pointer overflow.
///
/// The paper (following Agarwal et al.) invalidates "one of the caches
/// already sharing the block" without fixing the choice; both options are
/// provided so the sensitivity can be measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NbVictim {
    /// Evict the pointer that has been resident longest (FIFO order).
    Oldest,
    /// Evict a pseudo-randomly chosen pointer (deterministic per entry,
    /// derived from an internal rotation counter — keeps the simulator
    /// reproducible without threading an RNG through the directory).
    Rotating,
}

/// A directory scheme together with its parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// `Dir_N`: full bit vector, one bit per cluster.
    FullVector,
    /// `Dir_i B`: limited pointers with broadcast on overflow.
    LimitedB {
        /// Number of pointers per entry.
        i: usize,
    },
    /// `Dir_i NB`: limited pointers, never broadcast; overflow evicts.
    LimitedNB {
        /// Number of pointers per entry.
        i: usize,
        /// How the evicted sharer is chosen on overflow.
        victim: NbVictim,
    },
    /// `Dir_i X`: limited pointers collapsing to a composite (superset)
    /// pointer on overflow.
    Superset {
        /// Number of pointers per entry before the collapse.
        i: usize,
    },
    /// `Dir_i CV_r`: limited pointers reinterpreted as a coarse vector with
    /// one bit per `r` clusters on overflow.
    CoarseVector {
        /// Number of pointers per entry before the switch.
        i: usize,
        /// Region size: number of clusters covered by one coarse-vector bit.
        r: usize,
    },
}

impl Scheme {
    /// Shorthand constructors matching the paper's notation.
    pub fn dir_n() -> Self {
        Scheme::FullVector
    }

    /// `Dir_i B`.
    pub fn dir_b(i: usize) -> Self {
        Scheme::LimitedB { i }
    }

    /// `Dir_i NB` with the default (oldest-pointer) victim policy.
    pub fn dir_nb(i: usize) -> Self {
        Scheme::LimitedNB {
            i,
            victim: NbVictim::Oldest,
        }
    }

    /// `Dir_i X`.
    pub fn dir_x(i: usize) -> Self {
        Scheme::Superset { i }
    }

    /// `Dir_i CV_r`.
    pub fn dir_cv(i: usize, r: usize) -> Self {
        Scheme::CoarseVector { i, r }
    }

    /// `Dir_i CV_r` with `r` derived from the pointer storage budget, as the
    /// paper does: the coarse vector reuses exactly the bits that previously
    /// held the `i` pointers, so `r = ceil(P / (i * ceil(log2 P)))`.
    pub fn dir_cv_auto(i: usize, p: usize) -> Self {
        let bits = i * ptr_bits(p);
        let r = p.div_ceil(bits.max(1)).max(1);
        Scheme::CoarseVector { i, r }
    }

    /// Number of *sharer-state* bits one entry needs for a `p`-cluster
    /// machine (excluding the dirty bit and any sparse-directory tag, which
    /// [`mod@crate::overhead`] accounts separately).
    pub fn state_bits(&self, p: usize) -> usize {
        match *self {
            Scheme::FullVector => p,
            Scheme::LimitedB { i } => i * ptr_bits(p) + 1, // + broadcast bit
            Scheme::LimitedNB { i, .. } => i * ptr_bits(p),
            Scheme::Superset { i } => (i * ptr_bits(p)).max(2 * ptr_bits(p)) + 1, // + mode bit
            Scheme::CoarseVector { i, r } => {
                // Pointer mode and coarse mode share storage; one extra bit
                // records which representation is active.
                (i * ptr_bits(p)).max(p.div_ceil(r)) + 1
            }
        }
    }

    /// Human-readable name in the paper's notation (e.g. `Dir3CV2`).
    pub fn name(&self, p: usize) -> String {
        match *self {
            Scheme::FullVector => format!("Dir{p}"),
            Scheme::LimitedB { i } => format!("Dir{i}B"),
            Scheme::LimitedNB { i, .. } => format!("Dir{i}NB"),
            Scheme::Superset { i } => format!("Dir{i}X"),
            Scheme::CoarseVector { i, r } => format!("Dir{i}CV{r}"),
        }
    }

    /// The pointer count `i`, if this is a limited-pointer variant.
    pub fn pointer_count(&self) -> Option<usize> {
        match *self {
            Scheme::FullVector => None,
            Scheme::LimitedB { i }
            | Scheme::LimitedNB { i, .. }
            | Scheme::Superset { i }
            | Scheme::CoarseVector { i, .. } => Some(i),
        }
    }
}

/// Bits needed for one node pointer on a `p`-cluster machine: `ceil(log2 p)`.
pub fn ptr_bits(p: usize) -> usize {
    assert!(p >= 1, "machine must have at least one cluster");
    usize::BITS as usize - (p - 1).leading_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_width() {
        assert_eq!(ptr_bits(1), 0);
        assert_eq!(ptr_bits(2), 1);
        assert_eq!(ptr_bits(16), 4);
        assert_eq!(ptr_bits(17), 5);
        assert_eq!(ptr_bits(32), 5);
        assert_eq!(ptr_bits(1024), 10);
    }

    #[test]
    fn full_vector_bits_match_dash_prototype() {
        // DASH prototype: 16 clusters, full bit vector => 16 state bits
        // (+1 dirty = the paper's 17 bits per 16-byte block).
        assert_eq!(Scheme::FullVector.state_bits(16), 16);
    }

    #[test]
    fn limited_pointer_bits() {
        // Dir3 on 32 clusters: 3 pointers x 5 bits.
        assert_eq!(Scheme::dir_nb(3).state_bits(32), 15);
        assert_eq!(Scheme::dir_b(3).state_bits(32), 16); // + broadcast bit
    }

    #[test]
    fn coarse_vector_reuses_pointer_storage() {
        // Dir3CV2 on 32 clusters: max(15, 16) + mode bit.
        assert_eq!(Scheme::dir_cv(3, 2).state_bits(32), 17);
        // Auto-derived region size for 3 pointers on 32 clusters:
        // 15 bits of storage -> r = ceil(32/15) = 3... the paper instead
        // allows itself ~17 bits and chooses r = 2; both are representable.
        match Scheme::dir_cv_auto(3, 32) {
            Scheme::CoarseVector { i: 3, r } => assert_eq!(r, 3),
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn names_follow_paper_notation() {
        assert_eq!(Scheme::dir_n().name(32), "Dir32");
        assert_eq!(Scheme::dir_b(3).name(32), "Dir3B");
        assert_eq!(Scheme::dir_nb(3).name(32), "Dir3NB");
        assert_eq!(Scheme::dir_x(3).name(32), "Dir3X");
        assert_eq!(Scheme::dir_cv(3, 2).name(32), "Dir3CV2");
    }

    #[test]
    fn pointer_counts() {
        assert_eq!(Scheme::dir_n().pointer_count(), None);
        assert_eq!(Scheme::dir_cv(8, 4).pointer_count(), Some(8));
    }
}
