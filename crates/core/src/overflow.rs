//! Overflow directories — the paper's §7 future-work organization:
//! "we can associate small directory entries with each memory block and
//! allow these to overflow into a small cache of much wider entries."
//!
//! Every memory block gets a *small* entry of `i` exact pointers (no
//! broadcast bit, no coarse mode). When a block gains more sharers than
//! its pointers can hold, the entry is **promoted** into a small
//! fully-associative-per-set cache of *wide* (full bit vector) entries.
//! Because widely shared blocks are rare (§1), a handful of wide entries
//! per home covers them; unlike `Dir_i B`/`Dir_i CV` nothing is ever
//! overestimated while a wide slot is available.
//!
//! Costs, mirrored from the sparse directory:
//! * a promoted block occupies a wide slot until it empties or collapses
//!   back to ≤ `i` precise sharers (demotion);
//! * when the wide cache is full, a victim wide entry is displaced and all
//!   its cached copies must be invalidated (same replacement-invalidation
//!   flow as sparse directories);
//! * if every wide slot in the set is pinned by an in-flight transaction,
//!   promotion falls back to `Dir_i NB` semantics for that one recording
//!   (evict a pointer), which is always safe.

use std::collections::HashMap;

use crate::entry::{AddSharer, DirEntry};
use crate::node_set::NodeId;
use crate::scheme::{ptr_bits, Scheme};
use crate::sparse::{Allocation, Replacement, SparseDirectory};

/// Outcome of recording a sharer in an overflow directory.
#[derive(Debug)]
pub enum OverflowAdd {
    /// Recorded (small entry, or an existing/new wide entry).
    Recorded,
    /// Recorded after displacing a wide victim: the caller must invalidate
    /// all cached copies of `victim_key` per the returned entry.
    RecordedDisplacing {
        /// Block that lost its wide entry.
        victim_key: u64,
        /// The displaced wide entry.
        victim: DirEntry,
    },
    /// Every wide slot was pinned: fell back to pointer eviction (the
    /// returned cluster must be invalidated), like `Dir_i NB`.
    Evicted(NodeId),
}

/// Statistics for the overflow organization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverflowStats {
    /// Small→wide promotions.
    pub promotions: u64,
    /// Wide→small demotions (entry collapsed back to ≤ i sharers).
    pub demotions: u64,
    /// Wide-victim displacements (replacement invalidations required).
    pub displacements: u64,
    /// Pinned-set fallbacks to pointer eviction.
    pub fallback_evictions: u64,
}

/// One home node's overflow directory: per-block small entries plus a wide
/// overflow cache.
#[derive(Clone)]
pub struct OverflowDirectory {
    small_scheme: Scheme,
    clusters: usize,
    /// Lazily materialized small entries (absent = uncached).
    small: HashMap<u64, DirEntry>,
    /// Wide (full-vector) overflow cache.
    wide: SparseDirectory,
    stats: OverflowStats,
}

impl OverflowDirectory {
    /// Creates an overflow directory with `i`-pointer small entries and
    /// `wide_entries` wide slots of associativity `wide_ways`.
    pub fn new(
        i: usize,
        clusters: usize,
        wide_entries: usize,
        wide_ways: usize,
        policy: Replacement,
        seed: u64,
    ) -> Self {
        OverflowDirectory {
            small_scheme: Scheme::dir_nb(i),
            clusters,
            small: HashMap::new(),
            wide: SparseDirectory::new(
                Scheme::FullVector,
                clusters,
                wide_entries,
                wide_ways,
                policy,
                seed,
            ),
            stats: OverflowStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> OverflowStats {
        self.stats
    }

    /// The current entry for `key` (wide wins over small), if any.
    pub fn probe(&self, key: u64) -> Option<&DirEntry> {
        self.wide.probe(key).or_else(|| self.small.get(&key))
    }

    /// Mutable access to the current entry, materializing a small entry if
    /// the block is untracked.
    pub fn entry_mut(&mut self, key: u64, now: u64) -> &mut DirEntry {
        if self.wide.probe(key).is_some() {
            return self.wide.lookup(key, now).expect("probed above");
        }
        self.small
            .entry(key)
            .or_insert_with(|| DirEntry::new(self.small_scheme, self.clusters))
    }

    /// Records `node` as a sharer of `key`, promoting to a wide entry on
    /// pointer overflow. `pinned` guards wide-victim selection.
    pub fn add_sharer(
        &mut self,
        key: u64,
        node: NodeId,
        now: u64,
        pinned: impl Fn(u64) -> bool,
    ) -> OverflowAdd {
        // Already wide?
        if self.wide.probe(key).is_some() {
            let e = self.wide.lookup(key, now).expect("probed above");
            let r = e.add_sharer(node);
            debug_assert_eq!(r, AddSharer::Recorded, "full vector never overflows");
            return OverflowAdd::Recorded;
        }
        let small = self
            .small
            .entry(key)
            .or_insert_with(|| DirEntry::new(self.small_scheme, self.clusters));
        if small.covers(node) || !small_would_overflow(small, self.small_scheme) {
            let r = small.add_sharer(node);
            debug_assert_eq!(r, AddSharer::Recorded);
            return OverflowAdd::Recorded;
        }
        // Pointer overflow: promote into the wide cache.
        let sharers: Vec<NodeId> = small.sharer_superset().iter().collect();
        match self.wide.allocate_excluding(key, now, &pinned) {
            None => {
                // All wide slots pinned: fall back to NB semantics.
                self.stats.fallback_evictions += 1;
                match small.add_sharer(node) {
                    AddSharer::Evict(v) => OverflowAdd::Evicted(v),
                    AddSharer::Recorded => OverflowAdd::Recorded,
                }
            }
            Some(Allocation::Hit(_)) => unreachable!("checked wide.probe above"),
            Some(Allocation::Inserted(e)) => {
                for s in sharers {
                    e.add_sharer(s);
                }
                e.add_sharer(node);
                self.small.remove(&key);
                self.stats.promotions += 1;
                OverflowAdd::Recorded
            }
            Some(Allocation::Replaced {
                victim_key,
                victim,
                entry,
            }) => {
                for s in sharers {
                    entry.add_sharer(s);
                }
                entry.add_sharer(node);
                self.small.remove(&key);
                self.stats.promotions += 1;
                self.stats.displacements += 1;
                OverflowAdd::RecordedDisplacing { victim_key, victim }
            }
        }
    }

    /// Housekeeping after protocol mutations: frees empty entries and
    /// demotes wide entries that fit in a small entry again.
    pub fn maintain(&mut self, key: u64) {
        if let Some(e) = self.small.get(&key) {
            if e.is_empty() {
                self.small.remove(&key);
            }
            return;
        }
        let Some(w) = self.wide.probe(key) else {
            return;
        };
        if w.is_empty() {
            self.wide.invalidate_key(key);
            return;
        }
        let i = self
            .small_scheme
            .pointer_count()
            .expect("small entries are limited-pointer");
        let sharers = w.sharer_superset();
        if sharers.len() <= i {
            let dirty_owner = w.is_dirty().then(|| w.owner()).flatten();
            let mut small = DirEntry::new(self.small_scheme, self.clusters);
            if let Some(o) = dirty_owner {
                small.make_dirty(o);
            } else {
                for s in sharers.iter() {
                    small.add_sharer(s);
                }
            }
            self.wide.invalidate_key(key);
            self.small.insert(key, small);
            self.stats.demotions += 1;
        }
    }

    /// Live entries (small + wide), for occupancy checks.
    pub fn live_entries(&self) -> usize {
        self.small.values().filter(|e| !e.is_empty()).count() + self.wide.live_entries()
    }

    /// Visits every live entry (small then wide) with its key. Small-array
    /// visit order is unspecified (hash map), so callers must aggregate
    /// order-independently.
    pub fn for_each_live(&self, mut f: impl FnMut(u64, &DirEntry)) {
        for (&k, e) in &self.small {
            if !e.is_empty() {
                f(k, e);
            }
        }
        self.wide.for_each_live(&mut f);
    }

    /// State bits per *block* of the small array (pointers only — no
    /// broadcast/mode bits — plus dirty and a promoted flag).
    pub fn small_bits_per_block(i: usize, clusters: usize) -> usize {
        i * ptr_bits(clusters) + 1 /* dirty */ + 1 /* promoted */
    }

    /// Hashes the protocol-visible state (small entries in key order, then
    /// the wide cache via [`SparseDirectory::fingerprint`]) into `h` for
    /// model-checking state digests; promotion/demotion counters excluded.
    pub fn fingerprint<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        let mut keys: Vec<u64> = self
            .small
            .iter()
            .filter(|(_, e)| !e.is_empty())
            .map(|(&k, _)| k)
            .collect();
        keys.sort_unstable();
        for k in keys {
            k.hash(h);
            self.small[&k].hash(h);
        }
        0xa3u8.hash(h); // section separator
        self.wide.fingerprint(h);
    }
}

/// Whether adding one more distinct sharer would overflow the small entry.
fn small_would_overflow(e: &DirEntry, scheme: Scheme) -> bool {
    let i = scheme.pointer_count().expect("limited scheme");
    e.sharer_superset().len() >= i
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: usize = 16;

    fn dir(i: usize, wide: usize) -> OverflowDirectory {
        OverflowDirectory::new(i, P, wide, wide.min(2), Replacement::Lru, 9)
    }

    fn sharers(d: &OverflowDirectory, key: u64) -> Vec<NodeId> {
        d.probe(key).map_or(Vec::new(), |e| {
            e.sharer_superset().iter().collect()
        })
    }

    #[test]
    fn small_entries_are_exact_below_i() {
        let mut d = dir(2, 4);
        assert!(matches!(
            d.add_sharer(7, 3, 0, |_| false),
            OverflowAdd::Recorded
        ));
        assert!(matches!(
            d.add_sharer(7, 5, 1, |_| false),
            OverflowAdd::Recorded
        ));
        assert_eq!(sharers(&d, 7), vec![3, 5]);
        assert_eq!(d.stats().promotions, 0);
    }

    #[test]
    fn overflow_promotes_to_wide_full_vector() {
        let mut d = dir(2, 4);
        for n in [1, 2, 3, 4, 5] {
            d.add_sharer(7, n, n as u64, |_| false);
        }
        assert_eq!(sharers(&d, 7), vec![1, 2, 3, 4, 5], "wide entry is exact");
        assert_eq!(d.stats().promotions, 1);
        assert!(d.probe(7).unwrap().is_precise());
    }

    #[test]
    fn duplicate_add_never_promotes() {
        let mut d = dir(2, 4);
        d.add_sharer(7, 1, 0, |_| false);
        d.add_sharer(7, 2, 1, |_| false);
        d.add_sharer(7, 2, 2, |_| false); // already covered
        assert_eq!(d.stats().promotions, 0);
    }

    #[test]
    fn wide_cache_displacement_reports_victim() {
        // 2 wide slots (1 set x 2 ways): promote three different blocks.
        let mut d = OverflowDirectory::new(1, P, 2, 2, Replacement::Lru, 9);
        for key in [10u64, 11, 12] {
            d.add_sharer(key, 1, key, |_| false);
            match d.add_sharer(key, 2, key + 100, |_| false) {
                OverflowAdd::Recorded => assert!(key < 12, "third promotion must displace"),
                OverflowAdd::RecordedDisplacing { victim_key, victim } => {
                    assert_eq!(key, 12);
                    assert_eq!(victim_key, 10, "LRU wide victim");
                    assert_eq!(
                        victim.sharer_superset().iter().collect::<Vec<_>>(),
                        vec![1, 2]
                    );
                }
                OverflowAdd::Evicted(_) => panic!("nothing pinned"),
            }
        }
        assert_eq!(d.stats().displacements, 1);
    }

    #[test]
    fn pinned_wide_set_falls_back_to_pointer_eviction() {
        let mut d = OverflowDirectory::new(1, P, 1, 1, Replacement::Lru, 9);
        // Fill the single wide slot with block 10.
        d.add_sharer(10, 1, 0, |_| false);
        d.add_sharer(10, 2, 1, |_| false);
        // Promote block 11 while everything is pinned.
        d.add_sharer(11, 3, 2, |_| false);
        match d.add_sharer(11, 4, 3, |_| true) {
            OverflowAdd::Evicted(v) => assert_eq!(v, 3, "oldest pointer evicted"),
            o => panic!("expected fallback eviction, got {o:?}"),
        }
        assert_eq!(d.stats().fallback_evictions, 1);
        assert_eq!(sharers(&d, 11), vec![4]);
    }

    #[test]
    fn maintain_demotes_collapsed_wide_entries() {
        let mut d = dir(2, 4);
        for n in [1, 2, 3, 4] {
            d.add_sharer(7, n, n as u64, |_| false);
        }
        assert_eq!(d.stats().promotions, 1);
        // A write collapses the entry to a single owner.
        d.entry_mut(7, 10).make_dirty(3);
        d.maintain(7);
        assert_eq!(d.stats().demotions, 1);
        assert_eq!(sharers(&d, 7), vec![3]);
        // The wide slot is free again: promoting another block fits without
        // displacement.
        for n in [1, 2, 3] {
            d.add_sharer(8, n, 20 + n as u64, |_| false);
        }
        assert_eq!(d.stats().displacements, 0);
    }

    #[test]
    fn maintain_frees_empty_entries() {
        let mut d = dir(2, 4);
        d.add_sharer(7, 1, 0, |_| false);
        d.entry_mut(7, 1).clear();
        d.maintain(7);
        assert_eq!(d.live_entries(), 0);
        assert!(d.probe(7).is_none());
    }

    #[test]
    fn storage_accounting() {
        // 3 pointers on 32 clusters: 15 + dirty + promoted = 17 bits/block,
        // same budget as Dir3CV2's 17 state bits.
        assert_eq!(OverflowDirectory::small_bits_per_block(3, 32), 17);
    }
}
