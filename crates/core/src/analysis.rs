//! Monte-Carlo invalidation analysis (paper Figure 2).
//!
//! "The graph shows the average number of invalidations sent out on a write
//! to a shared block as the number of processors sharing that block is
//! varied. For each invalidation event, the sharers were randomly chosen and
//! the number of invalidations required was recorded."
//!
//! Model (stated precisely so the curves are reproducible):
//!
//! * The machine has `p` clusters. For each event a *home* cluster `h` and a
//!   *writer* cluster `w != h` are drawn uniformly.
//! * The `s` sharers are a uniform random subset of the remaining `p - 2`
//!   clusters, inserted into a fresh directory entry in random order (order
//!   matters for the limited-pointer schemes).
//! * The write then triggers invalidations to the entry's target superset
//!   minus the writer and minus the home cluster (home-cluster copies are
//!   invalidated over the local bus, not the network — this is why the
//!   paper's broadcast count is `p - 2`).
//!
//! The full-vector line is exactly `s`; `Dir_i B` is exactly `s` for
//! `s <= i` and `p - 2` beyond; the coarse-vector and superset schemes are
//! genuinely stochastic.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::entry::DirEntry;
use crate::node_set::NodeId;
use crate::scheme::Scheme;

/// Average invalidations per write event for a fixed sharer count.
///
/// Runs `events` independent events and averages; deterministic per `seed`.
pub fn average_invalidations(scheme: Scheme, p: usize, s: usize, events: usize, seed: u64) -> f64 {
    assert!(p >= 2, "need at least writer and home");
    assert!(
        s <= p - 2,
        "at most p-2 clusters can share (writer and home excluded)"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut total = 0u64;
    let mut others: Vec<NodeId> = Vec::with_capacity(p);
    for _ in 0..events {
        let h: NodeId = rng.gen_range(0..p as u16);
        let w: NodeId = loop {
            let c = rng.gen_range(0..p as u16);
            if c != h {
                break c;
            }
        };
        others.clear();
        others.extend((0..p as NodeId).filter(|&n| n != h && n != w));
        others.shuffle(&mut rng);
        let mut entry = DirEntry::new(scheme, p);
        for &n in &others[..s] {
            // Dir_NB never appears in Figure 2 (its sharer count cannot
            // exceed i); evictions here would silently shrink the set, so we
            // simply record whatever the entry keeps.
            let _ = entry.add_sharer(n);
        }
        let mut targets = entry.invalidation_targets(w);
        targets.remove(h);
        total += targets.len() as u64;
    }
    total as f64 / events as f64
}

/// A full Figure-2 curve: average invalidations for every sharer count
/// `0..=p-2`.
pub fn invalidation_curve(scheme: Scheme, p: usize, events: usize, seed: u64) -> Vec<f64> {
    (0..=p - 2)
        .map(|s| average_invalidations(scheme, p, s, events, seed))
        .collect()
}

/// The area between a scheme's curve and the ideal (full-vector) line —
/// the paper's visual measure of extraneous invalidations.
pub fn extraneous_area(curve: &[f64]) -> f64 {
    curve
        .iter()
        .enumerate()
        .map(|(s, &v)| (v - s as f64).max(0.0))
        .sum()
}

/// Closed-form expectation for `Dir_i B` (used to validate the Monte Carlo).
pub fn dir_b_exact(i: usize, p: usize, s: usize) -> f64 {
    if s <= i {
        s as f64
    } else {
        (p - 2) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: usize = 32;
    const EVENTS: usize = 2_000;

    #[test]
    fn full_vector_curve_is_identity() {
        let c = invalidation_curve(Scheme::dir_n(), P, 200, 1);
        for (s, v) in c.iter().enumerate() {
            assert!((v - s as f64).abs() < 1e-9, "s={s} v={v}");
        }
    }

    #[test]
    fn broadcast_matches_closed_form() {
        for s in [0, 1, 3, 4, 10, 30] {
            let mc = average_invalidations(Scheme::dir_b(3), P, s, EVENTS, 2);
            let exact = dir_b_exact(3, P, s);
            assert!(
                (mc - exact).abs() < 1e-9,
                "s={s}: mc={mc} exact={exact} (B is deterministic)"
            );
        }
    }

    #[test]
    fn coarse_vector_bounded_by_region_rounding() {
        // Dir3CV2: for s > 3 sharers the targets are whole regions of 2, so
        // invalidations are at most 2s (and at least s, minus w/h overlap).
        for s in [4, 8, 16, 30] {
            let v = average_invalidations(Scheme::dir_cv(3, 2), P, s, EVENTS, 3);
            assert!(v >= s as f64 - 2.0, "s={s} v={v}");
            assert!(v <= (2 * s) as f64, "s={s} v={v}");
        }
    }

    #[test]
    fn scheme_ordering_matches_figure_2() {
        // For a mid-range sharer count: Dir_N < Dir3CV2 < Dir3X <= Dir3B.
        let s = 8;
        let full = average_invalidations(Scheme::dir_n(), P, s, EVENTS, 4);
        let cv = average_invalidations(Scheme::dir_cv(3, 2), P, s, EVENTS, 4);
        let x = average_invalidations(Scheme::dir_x(3), P, s, EVENTS, 4);
        let b = average_invalidations(Scheme::dir_b(3), P, s, EVENTS, 4);
        assert!(full < cv, "full={full} cv={cv}");
        assert!(cv < x, "cv={cv} x={x}");
        assert!(x <= b + 1e-9, "x={x} b={b}");
        // And the paper's observation that X "is almost as bad as broadcast":
        assert!(b - x < 0.15 * b, "x={x} should be within 15% of b={b}");
    }

    #[test]
    fn all_schemes_converge_at_maximum_sharers() {
        let s = P - 2;
        for scheme in [
            Scheme::dir_n(),
            Scheme::dir_b(3),
            Scheme::dir_x(3),
            Scheme::dir_cv(3, 2),
        ] {
            let v = average_invalidations(scheme, P, s, 500, 5);
            assert!(
                (v - s as f64).abs() < 1e-9,
                "{scheme:?}: everyone shares, so v={v} must equal {s}"
            );
        }
    }

    #[test]
    fn extraneous_area_ranks_schemes() {
        let ev = 500;
        let cv = extraneous_area(&invalidation_curve(Scheme::dir_cv(3, 2), P, ev, 6));
        let x = extraneous_area(&invalidation_curve(Scheme::dir_x(3), P, ev, 6));
        let b = extraneous_area(&invalidation_curve(Scheme::dir_b(3), P, ev, 6));
        assert!(cv < x && x < b, "cv={cv} x={x} b={b}");
        // Coarse vector's extraneous area is much smaller: each region bit
        // overshoots by at most r-1 = 1 node, so it is bounded by half the
        // broadcast area (observed ~40% for Dir3CV2 on 32 clusters).
        assert!(cv < 0.5 * b, "cv={cv} should be well under half of b={b}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = invalidation_curve(Scheme::dir_cv(3, 2), 16, 100, 9);
        let b = invalidation_curve(Scheme::dir_cv(3, 2), 16, 100, 9);
        assert_eq!(a, b);
    }
}
