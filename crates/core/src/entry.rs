//! Per-block directory entries for each of the five schemes.
//!
//! A [`DirEntry`] records which clusters may cache a memory block, plus a
//! dirty bit. The representation starts precise (bit vector or pointers) and,
//! for the limited-pointer schemes, degrades on *pointer overflow* exactly as
//! the paper describes: `Dir_i B` sets a broadcast bit, `Dir_i NB` evicts an
//! existing sharer, `Dir_i X` collapses to a composite (superset) pointer,
//! and `Dir_i CV_r` reinterprets the pointer storage as a coarse bit vector.
//!
//! The entry itself never sends messages; it reports what the protocol must
//! do (e.g. [`AddSharer::Evict`]) and what the invalidation target superset
//! is. This keeps the schemes testable in isolation — the Figure 2 analysis
//! drives exactly this API.

use crate::node_set::{NodeId, NodeSet};
use crate::scheme::{NbVictim, Scheme};

/// Maximum number of pointers any limited-pointer configuration may use.
///
/// Pointer storage is kept inline (no heap allocation per entry); the paper's
/// largest configuration is `Dir8CV4`, so 16 leaves generous headroom.
pub const MAX_POINTERS: usize = 16;

/// Externally visible state of a directory entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirState {
    /// No cluster caches the block; the entry is reclaimable.
    Uncached,
    /// One or more clusters hold clean copies.
    Shared,
    /// Exactly one cluster holds an exclusive (modifiable) copy.
    Dirty,
}

/// Which sharer-set representation a [`DirEntry`] currently uses, as a
/// telemetry-facing view of the private internals (the observatory
/// counts overflow modes per scheme without re-deriving them from
/// superset sizes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReprKind {
    /// Precise full bit vector.
    Full,
    /// Precise pointer list.
    Pointers,
    /// `Dir_i B` after overflow.
    Broadcast,
    /// `Dir_i X` after overflow.
    Composite,
    /// `Dir_i CV_r` after overflow.
    Coarse,
}

/// Result of recording a new sharer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AddSharer {
    /// The sharer is now covered by the entry (possibly imprecisely).
    Recorded,
    /// `Dir_i NB` pointer overflow: the returned cluster was dropped from the
    /// entry to make room and **the caller must invalidate its cached copy**.
    Evict(NodeId),
}

/// Inline fixed-capacity pointer array (FIFO order preserved for the
/// `Dir_i NB` oldest-victim policy).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Pointers {
    slots: [NodeId; MAX_POINTERS],
    len: u8,
}

impl Pointers {
    fn new() -> Self {
        Pointers {
            slots: [0; MAX_POINTERS],
            len: 0,
        }
    }

    fn as_slice(&self) -> &[NodeId] {
        &self.slots[..self.len as usize]
    }

    fn contains(&self, n: NodeId) -> bool {
        self.as_slice().contains(&n)
    }

    fn push(&mut self, n: NodeId) {
        debug_assert!((self.len as usize) < MAX_POINTERS);
        self.slots[self.len as usize] = n;
        self.len += 1;
    }

    /// Removes `n` preserving FIFO order; returns whether it was present.
    fn remove(&mut self, n: NodeId) -> bool {
        let len = self.len as usize;
        if let Some(pos) = self.as_slice().iter().position(|&x| x == n) {
            self.slots.copy_within(pos + 1..len, pos);
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes and returns the pointer at `idx` preserving order.
    fn take(&mut self, idx: usize) -> NodeId {
        let len = self.len as usize;
        debug_assert!(idx < len);
        let v = self.slots[idx];
        self.slots.copy_within(idx + 1..len, idx);
        self.len -= 1;
        v
    }

    fn clear(&mut self) {
        self.len = 0;
    }
}

/// Sharer-set representation; which variants are reachable depends on the
/// scheme.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Repr {
    /// Precise bit vector (`Dir_N` only).
    Full(NodeSet),
    /// Precise pointer list (initial state of every limited scheme).
    Pointers(Pointers),
    /// `Dir_i B` after overflow: invalidations go to everyone.
    Broadcast,
    /// `Dir_i X` after overflow: nodes matching `value` on all non-`xmask`
    /// bits are considered (potential) sharers.
    Composite { value: u32, xmask: u32 },
    /// `Dir_i CV_r` after overflow: one bit per region of `r` clusters.
    Coarse { regions: NodeSet },
}

/// A directory entry: dirty bit + sharer representation for one memory block.
///
/// `Hash` covers the full observable state (dirty bit, representation,
/// rotation counter), so model-checking state digests can hash entries
/// directly.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DirEntry {
    scheme: Scheme,
    /// Number of clusters in the machine.
    p: u16,
    dirty: bool,
    repr: Repr,
    /// Rotation counter for the `NbVictim::Rotating` policy.
    rotation: u8,
}

impl DirEntry {
    /// Creates an empty (uncached, clean) entry.
    pub fn new(scheme: Scheme, p: usize) -> Self {
        assert!(p >= 1 && p <= u16::MAX as usize);
        if let Some(i) = scheme.pointer_count() {
            assert!(
                (1..=MAX_POINTERS).contains(&i),
                "pointer count {i} outside supported range 1..={MAX_POINTERS}"
            );
        }
        if let Scheme::CoarseVector { r, .. } = scheme {
            assert!(r >= 1, "region size must be at least 1");
        }
        let repr = match scheme {
            Scheme::FullVector => Repr::Full(NodeSet::new(p)),
            _ => Repr::Pointers(Pointers::new()),
        };
        DirEntry {
            scheme,
            p: p as u16,
            dirty: false,
            repr,
            rotation: 0,
        }
    }

    /// The scheme this entry was created for.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The machine size (number of clusters) this entry tracks.
    pub fn universe(&self) -> usize {
        self.p as usize
    }

    /// Current state of the block.
    pub fn state(&self) -> DirState {
        if self.dirty {
            DirState::Dirty
        } else if self.is_repr_empty() {
            DirState::Uncached
        } else {
            DirState::Shared
        }
    }

    fn is_repr_empty(&self) -> bool {
        match &self.repr {
            Repr::Full(s) => s.is_empty(),
            Repr::Pointers(p) => p.len == 0,
            Repr::Broadcast | Repr::Composite { .. } => false,
            Repr::Coarse { regions } => regions.is_empty(),
        }
    }

    /// True if the entry tracks no cluster at all.
    pub fn is_empty(&self) -> bool {
        self.state() == DirState::Uncached
    }

    /// Dirty bit: some cluster holds an exclusive, possibly modified copy.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// The owning cluster, when dirty.
    ///
    /// Every scheme keeps the owner precise: granting exclusive access resets
    /// the entry to a single pointer/bit.
    pub fn owner(&self) -> Option<NodeId> {
        if !self.dirty {
            return None;
        }
        match &self.repr {
            Repr::Full(s) => s.first(),
            Repr::Pointers(p) => p.as_slice().first().copied(),
            // Unreachable by construction: make_dirty always resets to a
            // precise single-pointer representation.
            _ => None,
        }
    }

    /// Records `node` as a clean sharer.
    ///
    /// May degrade the representation on pointer overflow, per scheme. For
    /// `Dir_i NB` the returned [`AddSharer::Evict`] carries the cluster the
    /// protocol must invalidate to honour the "never more than `i` copies"
    /// invariant.
    pub fn add_sharer(&mut self, node: NodeId) -> AddSharer {
        debug_assert!(!self.dirty, "add_sharer on a dirty entry; convert first");
        debug_assert!((node as usize) < self.p as usize);
        match &mut self.repr {
            Repr::Full(s) => {
                s.insert(node);
                AddSharer::Recorded
            }
            Repr::Pointers(ptrs) => {
                if ptrs.contains(node) {
                    return AddSharer::Recorded;
                }
                let i = self
                    .scheme
                    .pointer_count()
                    .expect("pointer repr implies limited scheme");
                if (ptrs.len as usize) < i {
                    ptrs.push(node);
                    return AddSharer::Recorded;
                }
                // Pointer overflow.
                match self.scheme {
                    Scheme::LimitedB { .. } => {
                        self.repr = Repr::Broadcast;
                        AddSharer::Recorded
                    }
                    Scheme::LimitedNB { victim, .. } => {
                        let idx = match victim {
                            NbVictim::Oldest => 0,
                            NbVictim::Rotating => {
                                let idx = self.rotation as usize % ptrs.len as usize;
                                self.rotation = self.rotation.wrapping_add(1);
                                idx
                            }
                        };
                        let evicted = ptrs.take(idx);
                        ptrs.push(node);
                        AddSharer::Evict(evicted)
                    }
                    Scheme::Superset { .. } => {
                        let mut value = ptrs.as_slice()[0] as u32;
                        let mut xmask = 0u32;
                        for &n in ptrs.as_slice()[1..].iter().chain(std::iter::once(&node)) {
                            xmask |= value ^ n as u32;
                            value &= !xmask;
                        }
                        self.repr = Repr::Composite { value, xmask };
                        AddSharer::Recorded
                    }
                    Scheme::CoarseVector { r, .. } => {
                        let nregions = (self.p as usize).div_ceil(r);
                        let mut regions = NodeSet::new(nregions);
                        for &n in ptrs.as_slice() {
                            regions.insert((n as usize / r) as NodeId);
                        }
                        regions.insert((node as usize / r) as NodeId);
                        self.repr = Repr::Coarse { regions };
                        AddSharer::Recorded
                    }
                    Scheme::FullVector => unreachable!("full vector never overflows"),
                }
            }
            Repr::Broadcast => AddSharer::Recorded,
            Repr::Composite { value, xmask } => {
                *xmask |= *value ^ node as u32;
                *value &= !*xmask;
                AddSharer::Recorded
            }
            Repr::Coarse { regions } => {
                let r = match self.scheme {
                    Scheme::CoarseVector { r, .. } => r,
                    _ => unreachable!("coarse repr implies coarse-vector scheme"),
                };
                regions.insert((node as usize / r) as NodeId);
                AddSharer::Recorded
            }
        }
    }

    /// Resets the entry to dirty with a single exclusive `owner`.
    ///
    /// This is what the directory does after granting ownership for a write:
    /// every degraded representation (broadcast bit, composite pointer,
    /// coarse vector) collapses back to one precise pointer.
    pub fn make_dirty(&mut self, owner: NodeId) {
        debug_assert!((owner as usize) < self.p as usize);
        self.reset_repr();
        match &mut self.repr {
            Repr::Full(s) => {
                s.insert(owner);
            }
            Repr::Pointers(ptrs) => ptrs.push(owner),
            _ => unreachable!("reset_repr restores a precise representation"),
        }
        self.dirty = true;
    }

    /// Resets the entry to clean-shared with exactly the given sharers.
    ///
    /// Used after a dirty block is downgraded (sharing writeback): the new
    /// sharer set is `{old owner, requester}` and fits any scheme's pointers
    /// as long as `sharers.len() <= i` (callers pass at most 2).
    pub fn make_shared(&mut self, sharers: &[NodeId]) {
        self.reset_repr();
        self.dirty = false;
        for &s in sharers {
            let outcome = self.add_sharer(s);
            debug_assert_eq!(
                outcome,
                AddSharer::Recorded,
                "make_shared must not overflow; pass at most i sharers"
            );
        }
    }

    fn reset_repr(&mut self) {
        self.dirty = false;
        match &mut self.repr {
            Repr::Full(s) => s.clear(),
            Repr::Pointers(p) => p.clear(),
            _ => {
                self.repr = match self.scheme {
                    Scheme::FullVector => Repr::Full(NodeSet::new(self.p as usize)),
                    _ => Repr::Pointers(Pointers::new()),
                }
            }
        }
    }

    /// Empties the entry entirely (after invalidating all cached copies,
    /// e.g. on sparse-directory replacement).
    pub fn clear(&mut self) {
        self.reset_repr();
    }

    /// Forgets `node` if the representation allows it precisely.
    ///
    /// Returns `true` if the representation changed. Imprecise modes
    /// (broadcast / composite / coarse) cannot un-record a single node — the
    /// directory does not know whether other sharers map to the same state —
    /// so the call is a no-op there, exactly as in hardware.
    pub fn remove_sharer(&mut self, node: NodeId) -> bool {
        let changed = match &mut self.repr {
            Repr::Full(s) => s.remove(node),
            Repr::Pointers(p) => p.remove(node),
            Repr::Broadcast | Repr::Composite { .. } | Repr::Coarse { .. } => false,
        };
        if changed && self.is_repr_empty() {
            self.dirty = false;
        }
        changed
    }

    /// True while the representation still tracks sharers exactly.
    pub fn is_precise(&self) -> bool {
        matches!(self.repr, Repr::Full(_) | Repr::Pointers(_))
    }

    /// Which representation the entry currently uses (telemetry view;
    /// the protocol itself only asks [`DirEntry::is_precise`]).
    pub fn repr_kind(&self) -> ReprKind {
        match &self.repr {
            Repr::Full(_) => ReprKind::Full,
            Repr::Pointers(_) => ReprKind::Pointers,
            Repr::Broadcast => ReprKind::Broadcast,
            Repr::Composite { .. } => ReprKind::Composite,
            Repr::Coarse { .. } => ReprKind::Coarse,
        }
    }

    /// Region bits currently set, when the entry has degraded to the
    /// coarse-vector representation (`None` otherwise). Together with
    /// [`DirEntry::sharer_superset`] this measures region-bit waste: a
    /// set bit stands for `r` clusters, however many actually share.
    pub fn coarse_regions_set(&self) -> Option<usize> {
        match &self.repr {
            Repr::Coarse { regions } => Some(regions.len()),
            _ => None,
        }
    }

    /// The full set of clusters the entry considers potential sharers.
    ///
    /// Always a superset of the true sharer set (for `Dir_i NB` the true set
    /// was trimmed by evictions, so it is exact there too).
    pub fn sharer_superset(&self) -> NodeSet {
        let p = self.p as usize;
        match &self.repr {
            Repr::Full(s) => s.clone(),
            Repr::Pointers(ptrs) => NodeSet::from_iter(p, ptrs.as_slice().iter().copied()),
            Repr::Broadcast => NodeSet::full(p),
            Repr::Composite { value, xmask } => {
                let mut out = NodeSet::new(p);
                let keep = !xmask;
                for n in 0..p as u32 {
                    if n & keep == value & keep {
                        out.insert(n as NodeId);
                    }
                }
                out
            }
            Repr::Coarse { regions } => {
                let r = match self.scheme {
                    Scheme::CoarseVector { r, .. } => r,
                    _ => unreachable!(),
                };
                let mut out = NodeSet::new(p);
                for g in regions.iter() {
                    let start = g as usize * r;
                    for n in start..(start + r).min(p) {
                        out.insert(n as NodeId);
                    }
                }
                out
            }
        }
    }

    /// Clusters that must receive an invalidation when `writer` writes the
    /// block: the sharer superset minus the writer itself.
    ///
    /// The protocol layer may additionally strip the home cluster (whose
    /// copies are invalidated over the local bus, not the network).
    pub fn invalidation_targets(&self, writer: NodeId) -> NodeSet {
        let mut t = self.sharer_superset();
        t.remove(writer);
        t
    }

    /// Removes and returns the next "grant group" when the entry is used as
    /// a lock-waiter queue (paper §7).
    ///
    /// DASH reuses directory vectors to queue lock waiters. With a precise
    /// representation the released lock is granted to exactly one waiter;
    /// once a coarse vector has overflowed, "we are only able to keep track
    /// of which processor regions are queued", so the whole first region is
    /// released to retry. Broadcast/composite representations release every
    /// covered node.
    ///
    /// Returns the released nodes (empty if no waiter is queued).
    pub fn take_first_waiter_group(&mut self) -> NodeSet {
        let p = self.p as usize;
        match &mut self.repr {
            Repr::Full(s) => match s.first() {
                Some(n) => {
                    s.remove(n);
                    NodeSet::from_iter(p, [n])
                }
                None => NodeSet::new(p),
            },
            Repr::Pointers(ptrs) => {
                if ptrs.len == 0 {
                    NodeSet::new(p)
                } else {
                    let n = ptrs.take(0);
                    NodeSet::from_iter(p, [n])
                }
            }
            Repr::Coarse { regions } => {
                let r = match self.scheme {
                    Scheme::CoarseVector { r, .. } => r,
                    _ => unreachable!(),
                };
                match regions.first() {
                    Some(g) => {
                        regions.remove(g);
                        let start = g as usize * r;
                        NodeSet::from_iter(p, (start..(start + r).min(p)).map(|n| n as NodeId))
                    }
                    None => NodeSet::new(p),
                }
            }
            Repr::Broadcast | Repr::Composite { .. } => {
                let all = self.sharer_superset();
                self.reset_repr();
                all
            }
        }
    }

    /// Whether `node` is covered by the current representation.
    pub fn covers(&self, node: NodeId) -> bool {
        match &self.repr {
            Repr::Full(s) => s.contains(node),
            Repr::Pointers(p) => p.contains(node),
            Repr::Broadcast => true,
            Repr::Composite { value, xmask } => {
                let keep = !xmask;
                (node as u32) & keep == value & keep
            }
            Repr::Coarse { regions } => {
                let r = match self.scheme {
                    Scheme::CoarseVector { r, .. } => r,
                    _ => unreachable!(),
                };
                regions.contains((node as usize / r) as NodeId)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: usize = 32;

    fn sharers(e: &DirEntry) -> Vec<NodeId> {
        e.sharer_superset().iter().collect()
    }

    #[test]
    fn new_entry_is_uncached() {
        for s in [
            Scheme::dir_n(),
            Scheme::dir_b(3),
            Scheme::dir_nb(3),
            Scheme::dir_x(3),
            Scheme::dir_cv(3, 2),
        ] {
            let e = DirEntry::new(s, P);
            assert_eq!(e.state(), DirState::Uncached, "{s:?}");
            assert!(e.is_precise());
            assert!(e.sharer_superset().is_empty());
        }
    }

    #[test]
    fn full_vector_is_always_exact() {
        let mut e = DirEntry::new(Scheme::dir_n(), P);
        for n in 0..P as NodeId {
            assert_eq!(e.add_sharer(n), AddSharer::Recorded);
        }
        assert_eq!(e.state(), DirState::Shared);
        assert!(e.is_precise());
        assert_eq!(e.sharer_superset().len(), P);
        assert_eq!(e.invalidation_targets(5).len(), P - 1);
        assert!(!e.invalidation_targets(5).contains(5));
    }

    #[test]
    fn dirty_owner_round_trip() {
        for s in [
            Scheme::dir_n(),
            Scheme::dir_b(3),
            Scheme::dir_nb(3),
            Scheme::dir_x(3),
            Scheme::dir_cv(3, 2),
        ] {
            let mut e = DirEntry::new(s, P);
            e.make_dirty(7);
            assert_eq!(e.state(), DirState::Dirty);
            assert_eq!(e.owner(), Some(7));
            assert_eq!(sharers(&e), vec![7]);
            e.make_shared(&[7, 12]);
            assert_eq!(e.state(), DirState::Shared);
            assert_eq!(e.owner(), None);
            assert_eq!(sharers(&e), vec![7, 12]);
        }
    }

    #[test]
    fn broadcast_overflow() {
        let mut e = DirEntry::new(Scheme::dir_b(3), P);
        for n in [1, 2, 3] {
            assert_eq!(e.add_sharer(n), AddSharer::Recorded);
        }
        assert!(e.is_precise());
        assert_eq!(e.add_sharer(4), AddSharer::Recorded);
        assert!(!e.is_precise());
        assert_eq!(e.sharer_superset().len(), P, "broadcast covers everyone");
        assert_eq!(e.invalidation_targets(1).len(), P - 1);
        // Granting ownership collapses the broadcast bit.
        e.make_dirty(9);
        assert!(e.is_precise());
        assert_eq!(e.owner(), Some(9));
    }

    #[test]
    fn nb_overflow_evicts_oldest() {
        let mut e = DirEntry::new(Scheme::dir_nb(3), P);
        for n in [10, 11, 12] {
            assert_eq!(e.add_sharer(n), AddSharer::Recorded);
        }
        assert_eq!(e.add_sharer(13), AddSharer::Evict(10));
        assert_eq!(sharers(&e), vec![11, 12, 13]);
        assert_eq!(e.add_sharer(14), AddSharer::Evict(11));
        assert_eq!(sharers(&e), vec![12, 13, 14]);
        assert!(e.is_precise(), "NB never degrades precision");
    }

    #[test]
    fn nb_rotating_policy_cycles_victims() {
        let mut e = DirEntry::new(
            Scheme::LimitedNB {
                i: 2,
                victim: NbVictim::Rotating,
            },
            P,
        );
        e.add_sharer(1);
        e.add_sharer(2);
        let AddSharer::Evict(v1) = e.add_sharer(3) else {
            panic!("expected eviction")
        };
        let AddSharer::Evict(v2) = e.add_sharer(4) else {
            panic!("expected eviction")
        };
        assert_ne!(v1, v2, "rotation should not hammer one slot");
    }

    #[test]
    fn nb_duplicate_add_does_not_evict() {
        let mut e = DirEntry::new(Scheme::dir_nb(3), P);
        for n in [1, 2, 3] {
            e.add_sharer(n);
        }
        assert_eq!(e.add_sharer(2), AddSharer::Recorded);
        assert_eq!(sharers(&e), vec![1, 2, 3]);
    }

    #[test]
    fn superset_covers_all_inserted() {
        let mut e = DirEntry::new(Scheme::dir_x(2), P);
        let ins = [0b00001, 0b00011, 0b10001, 0b00101];
        for n in ins {
            e.add_sharer(n);
        }
        assert!(!e.is_precise());
        let sup = e.sharer_superset();
        for n in ins {
            assert!(sup.contains(n), "composite must cover inserted node {n}");
        }
        // 00001, 00011, 10001, 00101 differ in bits 1, 4, 2 => xmask covers
        // bits {1,2,4}; base value has bit0 = 1 => 2^3 = 8 matches.
        assert_eq!(sup.len(), 8);
    }

    #[test]
    fn superset_degrades_toward_broadcast() {
        // The paper: "The composite vector soon contains mostly Xs and is
        // thus close to a broadcast bit."
        let mut e = DirEntry::new(Scheme::dir_x(3), P);
        for n in [0b00000, 0b11111, 0b00001, 0b10000] {
            e.add_sharer(n);
        }
        assert_eq!(e.sharer_superset().len(), P);
    }

    #[test]
    fn coarse_vector_exact_until_overflow() {
        let mut e = DirEntry::new(Scheme::dir_cv(3, 2), P);
        for n in [4, 9, 20] {
            e.add_sharer(n);
        }
        assert!(e.is_precise());
        assert_eq!(sharers(&e), vec![4, 9, 20]);
    }

    #[test]
    fn coarse_vector_overflow_rounds_to_regions() {
        let mut e = DirEntry::new(Scheme::dir_cv(3, 2), P);
        for n in [4, 9, 20, 21] {
            e.add_sharer(n);
        }
        assert!(!e.is_precise());
        // Regions of size 2: {4,5}, {8,9}, {20,21}.
        assert_eq!(sharers(&e), vec![4, 5, 8, 9, 20, 21]);
        // Invalidating on a write by node 9 spares 9 itself.
        assert_eq!(
            e.invalidation_targets(9).iter().collect::<Vec<_>>(),
            vec![4, 5, 8, 20, 21]
        );
    }

    #[test]
    fn coarse_vector_region_size_four() {
        let mut e = DirEntry::new(Scheme::dir_cv(2, 4), P);
        for n in [0, 5, 13] {
            e.add_sharer(n);
        }
        // Overflowed at the third sharer: regions {0..4}, {4..8}, {12..16}.
        assert_eq!(sharers(&e), vec![0, 1, 2, 3, 4, 5, 6, 7, 12, 13, 14, 15]);
        assert!(e.covers(6));
        assert!(!e.covers(8));
    }

    #[test]
    fn coarse_vector_ragged_last_region() {
        // p = 10, r = 4: last region covers only nodes 8..10.
        let mut e = DirEntry::new(Scheme::dir_cv(1, 4), 10);
        e.add_sharer(9);
        e.add_sharer(1); // overflow with i = 1
        assert_eq!(sharers(&e), vec![0, 1, 2, 3, 8, 9]);
    }

    #[test]
    fn coarse_region_accounting_exactly_at_overflow() {
        // Dir3CV2 on 32 clusters. Three sharers stay precise (pointer
        // repr, no region bits); the fourth flips to coarse with exactly
        // one region bit per occupied region.
        let mut e = DirEntry::new(Scheme::dir_cv(3, 2), P);
        for n in [4, 9, 20] {
            e.add_sharer(n);
        }
        assert_eq!(e.repr_kind(), ReprKind::Pointers);
        assert_eq!(e.coarse_regions_set(), None);
        e.add_sharer(21); // 21 shares region {20,21} with 20
        assert_eq!(e.repr_kind(), ReprKind::Coarse);
        // 4 sharers in 3 distinct regions → 3 region bits set, superset 6.
        assert_eq!(e.coarse_regions_set(), Some(3));
        assert_eq!(e.sharer_superset().len(), 6);
        // Region-bit utilization: 4 present of 6 covered.
        assert!(e.covers(5) && e.covers(8), "rounded-up neighbours covered");
    }

    #[test]
    fn coarse_region_accounting_one_sharer_per_region_worst_case() {
        // Dir1CV4 on 32 clusters: sharers 0, 4, 8, ... land one per
        // region, the worst case for region-bit utilization — every set
        // bit drags in r−1 absent neighbours.
        let regions = P / 4;
        let mut e = DirEntry::new(Scheme::dir_cv(1, 4), P);
        for g in 0..regions {
            e.add_sharer((g * 4) as NodeId);
        }
        assert_eq!(e.repr_kind(), ReprKind::Coarse);
        assert_eq!(e.coarse_regions_set(), Some(regions));
        // Superset covers the whole machine although only 1/4 are sharers.
        assert_eq!(e.sharer_superset().len(), P);
        let targets = e.invalidation_targets(0);
        assert_eq!(targets.len(), P - 1, "write by node 0 spares only itself");
    }

    #[test]
    fn repr_kind_tracks_every_representation() {
        let mut full = DirEntry::new(Scheme::dir_n(), P);
        full.add_sharer(3);
        assert_eq!(full.repr_kind(), ReprKind::Full);
        assert_eq!(full.coarse_regions_set(), None);

        let mut b = DirEntry::new(Scheme::dir_b(1), P);
        b.add_sharer(0);
        assert_eq!(b.repr_kind(), ReprKind::Pointers);
        b.add_sharer(1);
        assert_eq!(b.repr_kind(), ReprKind::Broadcast);

        let mut x = DirEntry::new(Scheme::dir_x(3), P);
        for n in [0b00000, 0b11111, 0b00001, 0b10000] {
            x.add_sharer(n);
        }
        assert_eq!(x.repr_kind(), ReprKind::Composite);
    }

    #[test]
    fn remove_sharer_precise_modes() {
        let mut e = DirEntry::new(Scheme::dir_cv(3, 2), P);
        e.add_sharer(4);
        e.add_sharer(9);
        assert!(e.remove_sharer(4));
        assert_eq!(sharers(&e), vec![9]);
        assert!(!e.remove_sharer(4));
        assert!(e.remove_sharer(9));
        assert_eq!(e.state(), DirState::Uncached);
    }

    #[test]
    fn remove_sharer_is_noop_when_imprecise() {
        let mut e = DirEntry::new(Scheme::dir_cv(1, 2), P);
        e.add_sharer(4);
        e.add_sharer(5); // overflow -> coarse
        assert!(!e.is_precise());
        assert!(!e.remove_sharer(4), "imprecise modes cannot un-record");
        assert_eq!(sharers(&e), vec![4, 5]);
    }

    #[test]
    fn clear_empties_any_representation() {
        let mut e = DirEntry::new(Scheme::dir_b(1), P);
        e.add_sharer(0);
        e.add_sharer(1); // broadcast
        e.clear();
        assert_eq!(e.state(), DirState::Uncached);
        assert!(e.is_precise());
    }

    #[test]
    fn covers_matches_superset_membership() {
        let mut e = DirEntry::new(Scheme::dir_x(2), P);
        for n in [3, 17, 22] {
            e.add_sharer(n);
        }
        let sup = e.sharer_superset();
        for n in 0..P as NodeId {
            assert_eq!(e.covers(n), sup.contains(n), "node {n}");
        }
    }

    #[test]
    fn waiter_group_precise_grants_one_fifo() {
        let mut e = DirEntry::new(Scheme::dir_cv(3, 2), P);
        e.add_sharer(9);
        e.add_sharer(4);
        let g1 = e.take_first_waiter_group();
        assert_eq!(g1.iter().collect::<Vec<_>>(), vec![9], "FIFO order");
        let g2 = e.take_first_waiter_group();
        assert_eq!(g2.iter().collect::<Vec<_>>(), vec![4]);
        assert!(e.take_first_waiter_group().is_empty());
    }

    #[test]
    fn waiter_group_coarse_releases_region() {
        let mut e = DirEntry::new(Scheme::dir_cv(1, 4), P);
        e.add_sharer(5);
        e.add_sharer(13); // overflow: regions {4..8} and {12..16}
        let g1 = e.take_first_waiter_group();
        assert_eq!(g1.iter().collect::<Vec<_>>(), vec![4, 5, 6, 7]);
        let g2 = e.take_first_waiter_group();
        assert_eq!(g2.iter().collect::<Vec<_>>(), vec![12, 13, 14, 15]);
        assert!(e.take_first_waiter_group().is_empty());
        // Region bits cleared; a re-queued waiter re-sets its region.
        e.add_sharer(6);
        assert!(e.covers(6));
    }

    #[test]
    fn waiter_group_broadcast_releases_everyone() {
        let mut e = DirEntry::new(Scheme::dir_b(1), P);
        e.add_sharer(0);
        e.add_sharer(1); // broadcast
        let g = e.take_first_waiter_group();
        assert_eq!(g.len(), P);
        assert!(e.is_empty());
    }

    #[test]
    fn writer_never_among_invalidation_targets() {
        for s in [
            Scheme::dir_n(),
            Scheme::dir_b(2),
            Scheme::dir_nb(2),
            Scheme::dir_x(2),
            Scheme::dir_cv(2, 4),
        ] {
            let mut e = DirEntry::new(s, P);
            for n in [1, 2, 3, 4, 5] {
                e.add_sharer(n);
            }
            for w in 0..P as NodeId {
                assert!(
                    !e.invalidation_targets(w).contains(w),
                    "{s:?} writer {w} invalidated itself"
                );
            }
        }
    }
}
