//! A dynamically sized bitset over cluster/node identifiers.
//!
//! Directory entries, invalidation target sets, and sharer supersets are all
//! sets of nodes. The paper's machines range from 16 clusters to 1024
//! processors, so the set is backed by a small vector of 64-bit words rather
//! than a fixed-width integer.

/// Identifier of a cluster (processing node) in the machine.
///
/// The paper's directory state is kept per *cluster* (DASH keeps one
/// presence bit per cluster, intra-cluster coherence being snoopy), so all
/// directory-level APIs speak `NodeId`.
pub type NodeId = u16;

/// A set of nodes, backed by a bit vector.
///
/// The set has a fixed universe size (`capacity`) established at creation;
/// nodes `>= capacity` are outside the universe in *every* build:
/// [`NodeSet::insert`] and [`NodeSet::remove`] ignore them (returning
/// `false`), matching [`NodeSet::contains`], so no tail bit can ever leak
/// into [`NodeSet::len`] or iteration as a phantom member.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct NodeSet {
    words: Vec<u64>,
    capacity: usize,
}

impl NodeSet {
    /// Creates an empty set over a universe of `capacity` nodes.
    pub fn new(capacity: usize) -> Self {
        NodeSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set containing every node in the universe.
    pub fn full(capacity: usize) -> Self {
        let mut s = NodeSet::new(capacity);
        for w in 0..s.words.len() {
            s.words[w] = !0u64;
        }
        s.mask_tail();
        s
    }

    /// Creates a set from an iterator of node ids.
    pub fn from_iter<I: IntoIterator<Item = NodeId>>(capacity: usize, iter: I) -> Self {
        let mut s = NodeSet::new(capacity);
        for n in iter {
            s.insert(n);
        }
        s
    }

    /// The universe size this set was created with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears bits beyond `capacity` (kept as an invariant after whole-word ops).
    fn mask_tail(&mut self) {
        let rem = self.capacity % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Inserts `node`; returns `true` if it was newly inserted.
    ///
    /// Out-of-universe nodes (`>= capacity`) are a no-op returning `false`
    /// in all builds. Earlier versions only `debug_assert`ed here, so a
    /// release-build `insert(70)` on a capacity-70 set would set a tail bit
    /// that `len()` and `iter()` then reported as a phantom sharer.
    #[inline]
    pub fn insert(&mut self, node: NodeId) -> bool {
        if node as usize >= self.capacity {
            return false;
        }
        let (w, b) = (node as usize / 64, node as usize % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `node`; returns `true` if it was present.
    ///
    /// Out-of-universe nodes are a no-op returning `false` in all builds,
    /// mirroring [`NodeSet::insert`].
    #[inline]
    pub fn remove(&mut self, node: NodeId) -> bool {
        if node as usize >= self.capacity {
            return false;
        }
        let (w, b) = (node as usize / 64, node as usize % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        if node as usize >= self.capacity {
            return false;
        }
        let (w, b) = (node as usize / 64, node as usize % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Number of nodes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no node is present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all nodes.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference (`self -= other`).
    pub fn difference_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// True if every node of `self` is in `other`.
    pub fn is_subset_of(&self, other: &NodeSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// The lowest-numbered node in the set, if any.
    pub fn first(&self) -> Option<NodeId> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some((i * 64 + w.trailing_zeros() as usize) as NodeId);
            }
        }
        None
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> NodeSetIter<'_> {
        NodeSetIter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The raw 64-bit words backing the set, low nodes first. Tail bits
    /// beyond `capacity` are always zero (the masking invariant), so
    /// word-level consumers need no edge handling.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Word-at-a-time traversal of the members in ascending order.
    ///
    /// Semantically identical to `for n in set.iter() { f(n) }` but without
    /// iterator state in the loop — this is what the machine's
    /// invalidation/flush fanout uses, where the set is walked once and
    /// immediately consumed.
    #[inline]
    pub fn for_each_member(&self, mut f: impl FnMut(NodeId)) {
        for (i, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                f((i * 64 + bit) as NodeId);
            }
        }
    }

    /// Number of members strictly below `node` (the classical bitset
    /// *rank*). `rank(capacity)` — or any out-of-universe node — is the
    /// total membership, consistent with out-of-universe ids never being
    /// members.
    #[inline]
    pub fn rank(&self, node: NodeId) -> usize {
        let n = (node as usize).min(self.capacity);
        let (full, bit) = (n / 64, n % 64);
        let mut count = self.words[..full.min(self.words.len())]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        if bit != 0 {
            if let Some(&w) = self.words.get(full) {
                count += (w & ((1u64 << bit) - 1)).count_ones() as usize;
            }
        }
        count
    }

    /// The `k`-th smallest member (0-based *select*), or `None` when the
    /// set has `k` or fewer members. `select(0) == first()`, and
    /// `rank(select(k)) == k` for every valid `k`.
    #[inline]
    pub fn select(&self, k: usize) -> Option<NodeId> {
        let mut remaining = k;
        for (i, &word) in self.words.iter().enumerate() {
            let pop = word.count_ones() as usize;
            if remaining < pop {
                // Drop the `remaining` lowest set bits, then the lowest
                // survivor is the answer.
                let mut w = word;
                for _ in 0..remaining {
                    w &= w - 1;
                }
                return Some((i * 64 + w.trailing_zeros() as usize) as NodeId);
            }
            remaining -= pop;
        }
        None
    }
}

impl std::fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the members of a [`NodeSet`].
pub struct NodeSetIter<'a> {
    set: &'a NodeSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for NodeSetIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some((self.word_idx * 64 + bit) as NodeId);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = NodeSetIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_members() {
        let s = NodeSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.first(), None);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already-present");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn full_respects_capacity() {
        let s = NodeSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn iteration_is_ascending() {
        let s = NodeSet::from_iter(200, [5, 199, 63, 64, 0]);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![0, 5, 63, 64, 199]);
    }

    #[test]
    fn set_algebra() {
        let mut a = NodeSet::from_iter(64, [1, 2, 3]);
        let b = NodeSet::from_iter(64, [3, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        a.difference_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2]);
        let mut i = u.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3, 4]);
        assert!(i.is_subset_of(&u));
        assert!(!u.is_subset_of(&i));
    }

    /// The release-semantics contract: out-of-universe inserts/removes are
    /// ignored in every build (no `debug_assert` divergence), so `len()`,
    /// `iter()` and word-level algebra never see a phantom member. The
    /// capacities straddle the word boundary on purpose: 70 exercises the
    /// partial tail word, 64 the exact-word case where there is no tail to
    /// mask.
    #[test]
    fn out_of_universe_inserts_are_masked() {
        for cap in [70usize, 64, 1] {
            let mut s = NodeSet::new(cap);
            assert!(!s.insert(cap as NodeId), "insert at capacity is a no-op");
            assert!(!s.insert(cap as NodeId + 7), "insert past capacity is a no-op");
            assert!(s.is_empty(), "cap {cap}: phantom member after oob insert");
            assert_eq!(s.len(), 0);
            assert_eq!(s.iter().count(), 0);
            assert!(!s.contains(cap as NodeId));
            assert!(!s.remove(cap as NodeId), "remove past capacity is a no-op");
        }
    }

    #[test]
    fn out_of_universe_bits_never_reach_set_algebra() {
        let mut a = NodeSet::new(70);
        a.insert(69);
        a.insert(70); // masked
        let mut b = NodeSet::full(70);
        b.union_with(&a);
        assert_eq!(b.len(), 70, "union must not resurrect a masked tail bit");
        b.difference_with(&a);
        assert_eq!(b.len(), 69);
        assert!(!b.contains(69));
    }

    #[test]
    fn first_finds_lowest() {
        let s = NodeSet::from_iter(128, [90, 17, 65]);
        assert_eq!(s.first(), Some(17));
    }

    #[test]
    fn words_expose_masked_tail() {
        let mut s = NodeSet::new(70);
        s.insert(0);
        s.insert(69);
        s.insert(70); // masked
        assert_eq!(s.words().len(), 2);
        assert_eq!(s.words()[0], 1);
        assert_eq!(s.words()[1], 1 << 5);
    }

    #[test]
    fn for_each_member_matches_iter() {
        let s = NodeSet::from_iter(200, [5, 199, 63, 64, 0]);
        let mut v = Vec::new();
        s.for_each_member(|n| v.push(n));
        assert_eq!(v, s.iter().collect::<Vec<_>>());
    }

    #[test]
    fn rank_counts_members_below() {
        let s = NodeSet::from_iter(130, [0, 5, 63, 64, 129]);
        assert_eq!(s.rank(0), 0);
        assert_eq!(s.rank(1), 1);
        assert_eq!(s.rank(64), 3);
        assert_eq!(s.rank(65), 4);
        assert_eq!(s.rank(129), 4);
        assert_eq!(s.rank(130), 5, "rank at capacity is the full count");
        assert_eq!(s.rank(300), 5, "out-of-universe rank clamps");
    }

    #[test]
    fn select_is_rank_inverse() {
        let members = [0u16, 5, 63, 64, 129];
        let s = NodeSet::from_iter(130, members);
        for (k, &m) in members.iter().enumerate() {
            assert_eq!(s.select(k), Some(m));
            assert_eq!(s.rank(m), k);
        }
        assert_eq!(s.select(5), None);
        assert_eq!(NodeSet::new(64).select(0), None);
    }
}
