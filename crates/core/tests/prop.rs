//! Property-based tests for the directory schemes and sparse organization.
//!
//! The key invariants the paper's correctness rests on:
//!
//! 1. Every scheme's representation is a **superset** of the true sharer
//!    set (except `Dir_i NB`, where the true set is trimmed by evictions
//!    and the representation is exact).
//! 2. Invalidation targets never include the writer.
//! 3. With at most `i` sharers, the limited schemes are exact.
//! 4. Sparse directories never exceed capacity and never displace without
//!    reporting the victim.

use proptest::prelude::*;
use scd_core::{AddSharer, DirEntry, NodeSet, Replacement, Scheme, SparseDirectory};
use std::collections::HashSet;

const P: usize = 32;

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::FullVector),
        (1usize..=8).prop_map(Scheme::dir_b),
        (1usize..=8).prop_map(Scheme::dir_nb),
        (2usize..=8).prop_map(Scheme::dir_x),
        ((1usize..=8), (1usize..=8)).prop_map(|(i, r)| Scheme::dir_cv(i, r)),
    ]
}

fn sharer_seq() -> impl Strategy<Value = Vec<u16>> {
    prop::collection::vec(0u16..P as u16, 0..64)
}

/// Replays a sharer-insertion sequence, maintaining the ground-truth set
/// (honouring NB evictions).
fn replay(scheme: Scheme, seq: &[u16]) -> (DirEntry, HashSet<u16>) {
    let mut e = DirEntry::new(scheme, P);
    let mut truth = HashSet::new();
    for &n in seq {
        match e.add_sharer(n) {
            AddSharer::Recorded => {
                truth.insert(n);
            }
            AddSharer::Evict(v) => {
                truth.remove(&v);
                truth.insert(n);
            }
        }
    }
    (e, truth)
}

proptest! {
    #[test]
    fn superset_invariant(scheme in scheme_strategy(), seq in sharer_seq()) {
        let (e, truth) = replay(scheme, &seq);
        let sup = e.sharer_superset();
        for &n in &truth {
            prop_assert!(sup.contains(n), "{scheme:?}: true sharer {n} uncovered");
            prop_assert!(e.covers(n));
        }
    }

    #[test]
    fn nb_is_exact_and_bounded(i in 1usize..=8, seq in sharer_seq()) {
        let scheme = Scheme::dir_nb(i);
        let (e, truth) = replay(scheme, &seq);
        let sup: HashSet<u16> = e.sharer_superset().iter().collect();
        prop_assert_eq!(&sup, &truth, "NB representation must be exact");
        prop_assert!(sup.len() <= i, "never more than i sharers under NB");
    }

    #[test]
    fn exact_below_pointer_count(scheme in scheme_strategy(), seq in sharer_seq()) {
        let distinct: HashSet<u16> = seq.iter().copied().collect();
        let i = scheme.pointer_count().unwrap_or(usize::MAX);
        prop_assume!(distinct.len() <= i);
        let (e, truth) = replay(scheme, &seq);
        let sup: HashSet<u16> = e.sharer_superset().iter().collect();
        prop_assert_eq!(sup, truth, "{:?} must be exact below overflow", scheme);
        prop_assert!(e.is_precise());
    }

    #[test]
    fn writer_excluded_from_targets(
        scheme in scheme_strategy(),
        seq in sharer_seq(),
        writer in 0u16..P as u16,
    ) {
        let (e, _) = replay(scheme, &seq);
        prop_assert!(!e.invalidation_targets(writer).contains(writer));
    }

    #[test]
    fn make_dirty_collapses_to_owner(
        scheme in scheme_strategy(),
        seq in sharer_seq(),
        owner in 0u16..P as u16,
    ) {
        let (mut e, _) = replay(scheme, &seq);
        e.make_dirty(owner);
        prop_assert!(e.is_dirty());
        prop_assert_eq!(e.owner(), Some(owner));
        prop_assert_eq!(e.sharer_superset().len(), 1);
        prop_assert!(e.is_precise());
    }

    #[test]
    fn clear_is_total(scheme in scheme_strategy(), seq in sharer_seq()) {
        let (mut e, _) = replay(scheme, &seq);
        e.clear();
        prop_assert!(e.is_empty());
        prop_assert!(e.sharer_superset().is_empty());
    }

    #[test]
    fn waiter_groups_partition_precise_waiters(
        scheme in scheme_strategy(),
        seq in sharer_seq(),
    ) {
        // Draining the waiter queue yields every true waiter at least once
        // and terminates.
        let (mut e, truth) = replay(scheme, &seq);
        let mut drained = HashSet::new();
        for _ in 0..P + 2 {
            let g = e.take_first_waiter_group();
            if g.is_empty() {
                break;
            }
            for n in g.iter() {
                drained.insert(n);
            }
        }
        prop_assert!(e.take_first_waiter_group().is_empty(), "queue must drain");
        for n in truth {
            prop_assert!(drained.contains(&n), "waiter {n} lost");
        }
    }

    #[test]
    fn nodeset_behaves_like_hashset(ops in prop::collection::vec((0u16..128, any::<bool>()), 0..200)) {
        let mut ns = NodeSet::new(128);
        let mut hs: HashSet<u16> = HashSet::new();
        for (n, insert) in ops {
            if insert {
                prop_assert_eq!(ns.insert(n), hs.insert(n));
            } else {
                prop_assert_eq!(ns.remove(n), hs.remove(&n));
            }
        }
        prop_assert_eq!(ns.len(), hs.len());
        let mut from_ns: Vec<u16> = ns.iter().collect();
        let mut from_hs: Vec<u16> = hs.into_iter().collect();
        from_ns.sort_unstable();
        from_hs.sort_unstable();
        prop_assert_eq!(from_ns, from_hs);
    }

    #[test]
    fn sparse_directory_respects_capacity(
        keys in prop::collection::vec(0u64..64, 1..300),
        ways in 1usize..=4,
        sets in 1usize..=4,
        policy_idx in 0usize..3,
    ) {
        let policy = [Replacement::Lru, Replacement::Random, Replacement::Lra][policy_idx];
        let entries = ways * sets;
        let mut sd = SparseDirectory::new(Scheme::FullVector, P, entries, ways, policy, 7);
        let mut resident: HashSet<u64> = HashSet::new();
        for (t, &k) in keys.iter().enumerate() {
            match sd.allocate(k, t as u64) {
                scd_core::sparse::Allocation::Hit(e) | scd_core::sparse::Allocation::Inserted(e) => {
                    e.add_sharer((k % P as u64) as u16);
                    resident.insert(k);
                }
                scd_core::sparse::Allocation::Replaced { victim_key, entry, .. } => {
                    prop_assert!(resident.remove(&victim_key), "victim {victim_key} not resident");
                    entry.add_sharer((k % P as u64) as u16);
                    resident.insert(k);
                }
            }
            prop_assert!(sd.live_entries() <= entries);
            // Everything we believe resident is findable.
            for &r in &resident {
                prop_assert!(sd.probe(r).is_some(), "lost key {r}");
            }
        }
    }

    #[test]
    fn overhead_is_monotone_in_sparsity(clusters in 1usize..=256, log_s in 0u32..=8) {
        let spec = scd_core::MachineSpec::paper_defaults(clusters.max(1));
        let s1 = 1u64 << log_s;
        let r1 = scd_core::overhead(&spec, &scd_core::DirectoryChoice {
            scheme: Scheme::FullVector, sparsity: s1,
        });
        let r2 = scd_core::overhead(&spec, &scd_core::DirectoryChoice {
            scheme: Scheme::FullVector, sparsity: s1 * 2,
        });
        prop_assert!(r2.total_bits <= r1.total_bits, "more sparsity, less memory");
    }
}

// ---------------------------------------------------------------------------
// NodeSet word-level helpers vs a bit-by-bit `contains()` oracle.
//
// The machine's fanout loops moved from per-bit iteration to the word-level
// `for_each_member`/`rank`/`select` helpers, so these must agree with the
// naive scan on arbitrary universes — including the out-of-universe masking
// semantics (ids >= capacity are never members, in debug and release).
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn node_set_word_iteration_matches_contains_scan(
        capacity in 1usize..=256,
        // Draw ids past the universe on purpose: they must be masked.
        inserts in prop::collection::vec(0u16..300, 0..120),
        removes in prop::collection::vec(0u16..300, 0..40),
    ) {
        let mut s = NodeSet::new(capacity);
        for &n in &inserts {
            s.insert(n);
        }
        for &n in &removes {
            s.remove(n);
        }

        // Oracle: the member list according to bit-by-bit `contains`,
        // scanned well past the universe to catch phantom tail bits.
        let mut oracle = Vec::new();
        for n in 0..(capacity as u16 + 70) {
            if s.contains(n) {
                oracle.push(n);
            }
        }
        prop_assert!(oracle.iter().all(|&n| (n as usize) < capacity));

        let via_iter: Vec<u16> = s.iter().collect();
        prop_assert_eq!(&via_iter, &oracle);

        let mut via_words = Vec::new();
        s.for_each_member(|n| via_words.push(n));
        prop_assert_eq!(&via_words, &oracle);

        // Raw words: tail bits beyond capacity are always zero.
        let rebuilt: Vec<u16> = s
            .words()
            .iter()
            .enumerate()
            .flat_map(|(i, &w)| (0..64).filter(move |b| w & (1 << b) != 0).map(move |b| (i * 64 + b) as u16))
            .collect();
        prop_assert_eq!(&rebuilt, &oracle);

        prop_assert_eq!(s.len(), oracle.len());
    }

    #[test]
    fn node_set_rank_select_match_contains_scan(
        capacity in 1usize..=256,
        inserts in prop::collection::vec(0u16..300, 0..120),
    ) {
        let mut s = NodeSet::new(capacity);
        for &n in &inserts {
            s.insert(n);
        }
        let oracle: Vec<u16> =
            (0..capacity as u16).filter(|&n| s.contains(n)).collect();

        // rank(n) == |{m in set : m < n}| for every probe, in and out of
        // the universe.
        for probe in 0..(capacity as u16 + 70) {
            let expect = oracle.iter().filter(|&&m| m < probe).count();
            prop_assert_eq!(s.rank(probe), expect, "rank({}) wrong", probe);
        }

        // select is the inverse of rank on the member list.
        for (k, &m) in oracle.iter().enumerate() {
            prop_assert_eq!(s.select(k), Some(m));
            prop_assert_eq!(s.rank(m), k);
        }
        prop_assert_eq!(s.select(oracle.len()), None);
        prop_assert_eq!(s.first(), oracle.first().copied());
    }
}
