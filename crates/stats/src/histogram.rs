//! Invalidation-distribution histograms (Figures 3–6).

/// A dense histogram over small non-negative integers (e.g. invalidations
/// per write event, 0..=P).
///
/// Optionally *bounded*: values above a cap saturate into the top bucket,
/// so a pathological run (say, a multi-million-cycle latency under fault
/// injection) cannot allocate per-value buckets without limit. Counts and
/// totals use saturating arithmetic throughout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total_events: u64,
    total_weight: u64,
    /// Largest representable value; 0 means unbounded (legacy behaviour).
    cap: usize,
}

impl Histogram {
    /// An empty, unbounded histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty histogram whose values saturate at `cap` (values above it
    /// are clamped into the top bucket on record and merge).
    pub fn bounded(cap: usize) -> Self {
        Histogram {
            cap,
            ..Self::default()
        }
    }

    /// The saturation cap (0 = unbounded).
    pub fn cap(&self) -> usize {
        self.cap
    }

    fn clamp(&self, value: usize) -> usize {
        if self.cap > 0 {
            value.min(self.cap)
        } else {
            value
        }
    }

    /// Records one event with the given value (clamped to the cap, if
    /// any; the event count stays exact, the value saturates).
    pub fn record(&mut self, value: usize) {
        let value = self.clamp(value);
        if self.counts.len() <= value {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] = self.counts[value].saturating_add(1);
        self.total_events = self.total_events.saturating_add(1);
        self.total_weight = self.total_weight.saturating_add(value as u64);
    }

    /// Number of events recorded.
    pub fn events(&self) -> u64 {
        self.total_events
    }

    /// Sum of all recorded values (e.g. total invalidations).
    pub fn weight(&self) -> u64 {
        self.total_weight
    }

    /// Mean value per event (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            self.total_weight as f64 / self.total_events as f64
        }
    }

    /// Count of events with exactly `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Fraction of events with exactly `value`.
    pub fn fraction(&self, value: usize) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total_events as f64
        }
    }

    /// Largest recorded value.
    pub fn max_value(&self) -> usize {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(0)
    }

    /// Smallest value whose cumulative event count reaches fraction `p`
    /// of all events (0 for an empty histogram). `p` is clamped to
    /// `[0, 1]`; any positive `p` targets at least one event, so
    /// `percentile(0.0 + ε)` on a single sample returns that sample.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total_events == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        let target = ((p * self.total_events as f64).ceil() as u64)
            .clamp(1, self.total_events);
        let mut cum = 0u64;
        for (v, &c) in self.counts.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum >= target {
                return v as u64;
            }
        }
        self.max_value() as u64
    }

    /// Merges another histogram into this one. Buckets above this
    /// histogram's cap (if any) saturate into the top bucket; totals add
    /// saturating.
    pub fn merge(&mut self, other: &Histogram) {
        for (i, &c) in other.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let v = self.clamp(i);
            if self.counts.len() <= v {
                self.counts.resize(v + 1, 0);
            }
            self.counts[v] = self.counts[v].saturating_add(c);
            // Re-derive the weight from the clamped value so a bounded
            // receiver stays internally consistent; when caps match (the
            // common case) this equals `other.total_weight` exactly.
            self.total_weight = self
                .total_weight
                .saturating_add(c.saturating_mul(v as u64));
        }
        self.total_events = self.total_events.saturating_add(other.total_events);
    }

    /// Renders the distribution as the paper's style of bar chart:
    /// percentage of events per value, one row per value, `width` columns
    /// for 100%.
    pub fn render(&self, title: &str, width: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = writeln!(
            out,
            "  events: {}   average per event: {:.2}   total weight: {}",
            self.total_events,
            self.mean(),
            self.total_weight
        );
        let max = self.max_value();
        for v in 0..=max {
            let frac = self.fraction(v);
            let bar = "#".repeat((frac * width as f64).round() as usize);
            let _ = writeln!(out, "  {v:>4} | {:>6.2}% {bar}", frac * 100.0);
        }
        out
    }

    /// CSV rows `value,count,fraction` for external plotting.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("value,count,fraction\n");
        for v in 0..=self.max_value() {
            let _ = writeln!(out, "{v},{},{:.6}", self.count(v), self.fraction(v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.events(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max_value(), 0);
        assert_eq!(h.fraction(3), 0.0);
    }

    #[test]
    fn record_and_mean() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(1);
        h.record(30);
        assert_eq!(h.events(), 4);
        assert_eq!(h.weight(), 32);
        assert_eq!(h.mean(), 8.0);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.max_value(), 30);
        assert!((h.fraction(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(2);
        let mut b = Histogram::new();
        b.record(2);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.events(), 3);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.count(5), 1);
        assert_eq!(a.weight(), 9);
    }

    #[test]
    fn merging_empty_histograms_is_a_no_op() {
        let mut a = Histogram::new();
        a.record(3);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before, "merging an empty rhs changes nothing");

        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before, "merging into an empty lhs copies rhs");

        let mut both = Histogram::new();
        both.merge(&Histogram::new());
        assert_eq!(both, Histogram::new());
        assert_eq!(both.percentile(0.99), 0);
    }

    #[test]
    fn single_sample_percentiles_all_return_the_sample() {
        let mut h = Histogram::new();
        h.record(42);
        for p in [0.0, 0.001, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.percentile(p), 42, "p={p}");
        }
        // Out-of-range fractions clamp rather than panic.
        assert_eq!(h.percentile(-1.0), 42);
        assert_eq!(h.percentile(2.0), 42);
    }

    #[test]
    fn percentiles_walk_the_cumulative_distribution() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.50), 50);
        assert_eq!(h.percentile(0.90), 90);
        assert_eq!(h.percentile(0.99), 99);
        assert_eq!(h.percentile(1.0), 100);
    }

    #[test]
    fn bounded_values_saturate_into_the_top_bucket() {
        let mut h = Histogram::bounded(8);
        h.record(3);
        h.record(8);
        h.record(1_000_000);
        h.record(usize::MAX);
        assert_eq!(h.events(), 4, "event counts stay exact");
        assert_eq!(h.count(8), 3, "overflowing values clamp to the cap");
        assert_eq!(h.max_value(), 8);
        assert_eq!(h.weight(), 3 + 8 * 3, "weight reflects clamped values");
        assert_eq!(h.percentile(1.0), 8);
    }

    #[test]
    fn merge_clamps_into_the_receivers_cap() {
        let mut wide = Histogram::new();
        wide.record(100);
        wide.record(2);
        let mut narrow = Histogram::bounded(10);
        narrow.merge(&wide);
        assert_eq!(narrow.count(10), 1);
        assert_eq!(narrow.count(2), 1);
        assert_eq!(narrow.max_value(), 10);
        assert_eq!(narrow.weight(), 12);
    }

    #[test]
    fn merge_is_associative() {
        let mut parts = Vec::new();
        for seed in 0..3u64 {
            let mut h = Histogram::bounded(16);
            let mut x = seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
            for _ in 0..50 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                h.record((x >> 33) as usize % 24); // some values past the cap
            }
            parts.push(h);
        }
        // (a ∪ b) ∪ c
        let mut left = Histogram::bounded(16);
        left.merge(&parts[0]);
        left.merge(&parts[1]);
        let mut left_assoc = Histogram::bounded(16);
        left_assoc.merge(&left);
        left_assoc.merge(&parts[2]);
        // a ∪ (b ∪ c)
        let mut right = Histogram::bounded(16);
        right.merge(&parts[1]);
        right.merge(&parts[2]);
        let mut right_assoc = Histogram::bounded(16);
        right_assoc.merge(&parts[0]);
        right_assoc.merge(&right);
        assert_eq!(left_assoc, right_assoc);
        assert_eq!(left_assoc.events(), 150);
    }

    #[test]
    fn render_contains_rows() {
        let mut h = Histogram::new();
        for _ in 0..3 {
            h.record(1);
        }
        h.record(4);
        let s = h.render("dist", 40);
        assert!(s.contains("dist"));
        assert!(s.contains("events: 4"));
        assert!(s.contains("75.00%"));
        assert!(s.lines().count() >= 7, "rows 0..=4 plus header: {s}");
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(2);
        let csv = h.to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "value,count,fraction");
        assert_eq!(lines.len(), 4); // header + values 0,1,2
        assert!(lines[1].starts_with("0,1,"));
        assert!(lines[2].starts_with("1,0,"));
    }
}
