//! Invalidation-distribution histograms (Figures 3–6).

/// A dense histogram over small non-negative integers (e.g. invalidations
/// per write event, 0..=P).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total_events: u64,
    total_weight: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event with the given value.
    pub fn record(&mut self, value: usize) {
        if self.counts.len() <= value {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total_events += 1;
        self.total_weight += value as u64;
    }

    /// Number of events recorded.
    pub fn events(&self) -> u64 {
        self.total_events
    }

    /// Sum of all recorded values (e.g. total invalidations).
    pub fn weight(&self) -> u64 {
        self.total_weight
    }

    /// Mean value per event (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            self.total_weight as f64 / self.total_events as f64
        }
    }

    /// Count of events with exactly `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Fraction of events with exactly `value`.
    pub fn fraction(&self, value: usize) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total_events as f64
        }
    }

    /// Largest recorded value.
    pub fn max_value(&self) -> usize {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(0)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total_events += other.total_events;
        self.total_weight += other.total_weight;
    }

    /// Renders the distribution as the paper's style of bar chart:
    /// percentage of events per value, one row per value, `width` columns
    /// for 100%.
    pub fn render(&self, title: &str, width: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = writeln!(
            out,
            "  events: {}   average per event: {:.2}   total weight: {}",
            self.total_events,
            self.mean(),
            self.total_weight
        );
        let max = self.max_value();
        for v in 0..=max {
            let frac = self.fraction(v);
            let bar = "#".repeat((frac * width as f64).round() as usize);
            let _ = writeln!(out, "  {v:>4} | {:>6.2}% {bar}", frac * 100.0);
        }
        out
    }

    /// CSV rows `value,count,fraction` for external plotting.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("value,count,fraction\n");
        for v in 0..=self.max_value() {
            let _ = writeln!(out, "{v},{},{:.6}", self.count(v), self.fraction(v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.events(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max_value(), 0);
        assert_eq!(h.fraction(3), 0.0);
    }

    #[test]
    fn record_and_mean() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(1);
        h.record(30);
        assert_eq!(h.events(), 4);
        assert_eq!(h.weight(), 32);
        assert_eq!(h.mean(), 8.0);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.max_value(), 30);
        assert!((h.fraction(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(2);
        let mut b = Histogram::new();
        b.record(2);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.events(), 3);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.count(5), 1);
        assert_eq!(a.weight(), 9);
    }

    #[test]
    fn render_contains_rows() {
        let mut h = Histogram::new();
        for _ in 0..3 {
            h.record(1);
        }
        h.record(4);
        let s = h.render("dist", 40);
        assert!(s.contains("dist"));
        assert!(s.contains("events: 4"));
        assert!(s.contains("75.00%"));
        assert!(s.lines().count() >= 7, "rows 0..=4 plus header: {s}");
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(2);
        let csv = h.to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "value,count,fraction");
        assert_eq!(lines.len(), 4); // header + values 0,1,2
        assert!(lines[1].starts_with("0,1,"));
        assert!(lines[2].starts_with("1,0,"));
    }
}
