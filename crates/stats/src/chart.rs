//! Plain-text line charts (for Figure-2 style series).

/// Renders multiple `(label, series)` pairs as an ASCII line chart.
///
/// All series share the x-axis `0..len` and the y-range `[0, max]`. Each
/// series is drawn with its own glyph; collisions show the later series.
///
/// ```
/// use scd_stats::chart::render_chart;
/// let ideal: Vec<f64> = (0..=10).map(|x| x as f64).collect();
/// let flat: Vec<f64> = (0..=10).map(|_| 10.0).collect();
/// let out = render_chart(
///     "test",
///     &[("ideal", &ideal), ("flat", &flat)],
///     40,
///     12,
/// );
/// assert!(out.contains("ideal"));
/// assert!(out.lines().count() > 12);
/// ```
pub fn render_chart(title: &str, series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    use std::fmt::Write as _;
    assert!(!series.is_empty(), "chart needs at least one series");
    assert!(width >= 2 && height >= 2, "chart too small");
    let glyphs = ['*', '+', 'o', 'x', '#', '@'];
    let len = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    assert!(len >= 2, "series need at least two points");
    let max = series
        .iter()
        .flat_map(|(_, s)| s.iter().copied())
        .fold(0.0_f64, f64::max)
        .max(1e-12);

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for (i, &v) in s.iter().enumerate() {
            let x = i * (width - 1) / (len - 1).max(1);
            let y = ((v / max) * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            grid[row][x] = glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{title}  (y: 0..{max:.1}, x: 0..{})", len - 1);
    for (row_idx, row) in grid.iter().enumerate() {
        let y_label = if row_idx == 0 {
            format!("{max:>7.1}")
        } else if row_idx == height - 1 {
            format!("{:>7.1}", 0.0)
        } else {
            " ".repeat(7)
        };
        let _ = writeln!(out, "{y_label} |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{}+{}", " ".repeat(7), "-".repeat(width));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", glyphs[i % glyphs.len()], name))
        .collect();
    let _ = writeln!(out, "{}{}", " ".repeat(8), legend.join("   "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_expected_shape() {
        let a: Vec<f64> = (0..20).map(|x| x as f64).collect();
        let b: Vec<f64> = (0..20).map(|_| 19.0).collect();
        let out = render_chart("t", &[("a", &a), ("b", &b)], 40, 10);
        let lines: Vec<&str> = out.lines().collect();
        // title + 10 rows + axis + legend
        assert_eq!(lines.len(), 13);
        assert!(lines[0].starts_with('t'));
        // The flat series occupies the top row.
        assert!(lines[1].contains('+'));
        // The rising series hits the bottom-left and top-right.
        assert!(lines[10].contains('*'));
        assert!(out.contains("* a"));
        assert!(out.contains("+ b"));
    }

    #[test]
    fn y_axis_labels_show_range() {
        let a: Vec<f64> = vec![0.0, 50.0, 100.0];
        let out = render_chart("t", &[("a", &a)], 20, 5);
        assert!(out.contains("100.0"));
        assert!(out.contains("0.0"));
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn empty_series_panics() {
        render_chart("t", &[], 10, 10);
    }

    #[test]
    fn single_peak_lands_where_expected() {
        let a = vec![0.0, 0.0, 10.0, 0.0, 0.0];
        let out = render_chart("t", &[("a", &a)], 5, 5);
        let lines: Vec<&str> = out.lines().collect();
        // Peak at the middle column of the top row: 7 label chars, a
        // space, the '|' — the grid starts at column 9, so x=2 is col 11.
        assert_eq!(lines[1].chars().nth(11), Some('*'));
    }
}
