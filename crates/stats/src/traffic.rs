//! Message-traffic accounting by class.

/// The four message classes of the DASH protocol description (§5):
/// "Request messages are sent by the caches to request data or ownership.
/// Reply messages are sent by the directories to grant ownership and/or
/// send data. Invalidation messages are sent by the directories to
/// invalidate a block. Acknowledgement messages are sent by caches in
/// response to invalidations."
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MessageClass {
    /// Cache → directory: read/ownership requests and writebacks (the paper
    /// folds writebacks into the request class in Figures 7–10).
    Request,
    /// Directory/owner → cache: data and/or ownership grants.
    Reply,
    /// Directory → cache: invalidate a block.
    Invalidation,
    /// Cache → requester/RAC: invalidation acknowledgement.
    Acknowledgement,
}

impl MessageClass {
    /// All classes, in reporting order.
    pub const ALL: [MessageClass; 4] = [
        MessageClass::Request,
        MessageClass::Reply,
        MessageClass::Invalidation,
        MessageClass::Acknowledgement,
    ];

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            MessageClass::Request => "requests",
            MessageClass::Reply => "replies",
            MessageClass::Invalidation => "invalidations",
            MessageClass::Acknowledgement => "acks",
        }
    }
}

/// Per-class message counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Traffic {
    counts: [u64; 4],
}

impl Traffic {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    fn idx(class: MessageClass) -> usize {
        match class {
            MessageClass::Request => 0,
            MessageClass::Reply => 1,
            MessageClass::Invalidation => 2,
            MessageClass::Acknowledgement => 3,
        }
    }

    /// Records one message of `class`.
    pub fn record(&mut self, class: MessageClass) {
        self.counts[Self::idx(class)] += 1;
    }

    /// Records `n` messages of `class`.
    pub fn record_n(&mut self, class: MessageClass, n: u64) {
        self.counts[Self::idx(class)] += n;
    }

    /// Count for one class.
    pub fn get(&self, class: MessageClass) -> u64 {
        self.counts[Self::idx(class)]
    }

    /// Total messages across all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Invalidations + acknowledgements (the paper plots them as one band).
    pub fn coherence(&self) -> u64 {
        self.get(MessageClass::Invalidation) + self.get(MessageClass::Acknowledgement)
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &Traffic) {
        for i in 0..4 {
            self.counts[i] += other.counts[i];
        }
    }

    /// This traffic normalized to `baseline` (1.0 = identical total).
    pub fn normalized_total(&self, baseline: &Traffic) -> f64 {
        self.total() as f64 / baseline.total() as f64
    }
}

impl std::fmt::Display for Traffic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "req={} rep={} inval={} ack={} (total {})",
            self.get(MessageClass::Request),
            self.get(MessageClass::Reply),
            self.get(MessageClass::Invalidation),
            self.get(MessageClass::Acknowledgement),
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut t = Traffic::new();
        t.record(MessageClass::Request);
        t.record_n(MessageClass::Invalidation, 5);
        t.record_n(MessageClass::Acknowledgement, 5);
        assert_eq!(t.get(MessageClass::Request), 1);
        assert_eq!(t.get(MessageClass::Reply), 0);
        assert_eq!(t.coherence(), 10);
        assert_eq!(t.total(), 11);
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut a = Traffic::new();
        a.record(MessageClass::Reply);
        let mut b = Traffic::new();
        b.record_n(MessageClass::Reply, 2);
        b.record(MessageClass::Request);
        a.merge(&b);
        assert_eq!(a.get(MessageClass::Reply), 3);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn normalization() {
        let mut base = Traffic::new();
        base.record_n(MessageClass::Request, 100);
        let mut t = Traffic::new();
        t.record_n(MessageClass::Request, 112);
        assert!((t.normalized_total(&base) - 1.12).abs() < 1e-12);
    }

    #[test]
    fn display_is_compact() {
        let mut t = Traffic::new();
        t.record(MessageClass::Request);
        assert_eq!(format!("{t}"), "req=1 rep=0 inval=0 ack=0 (total 1)");
    }
}
