//! # scd-stats — measurement and reporting
//!
//! Counters, histograms, and plain-text rendering shared by the simulator
//! and the experiment harness. The paper reports three kinds of artifact:
//!
//! * **message traffic** broken down by class (requests incl. writebacks,
//!   replies, invalidations + acknowledgements) — [`traffic::Traffic`];
//! * **invalidation distributions** (Figures 3–6) — [`histogram::Histogram`];
//! * **normalized bar charts and tables** (Table 1/2, Figures 7–14) —
//!   [`table`].

#![warn(missing_docs)]

pub mod chart;
pub mod histogram;
pub mod table;
pub mod traffic;

pub use chart::render_chart;
pub use histogram::Histogram;
pub use table::{render_table, Align};
pub use traffic::{MessageClass, Traffic};
