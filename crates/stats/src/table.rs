//! Plain-text table rendering for experiment output.

/// Column alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Align {
    /// Left-justified (labels).
    Left,
    /// Right-justified (numbers).
    Right,
}

/// Renders `rows` under `headers` with per-column width fitting.
///
/// `aligns` may be shorter than the column count; missing columns default to
/// right alignment (numeric).
pub fn render_table(headers: &[&str], aligns: &[Align], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let align = |i: usize| aligns.get(i).copied().unwrap_or(Align::Right);
    let fmt_cell = |i: usize, s: &str| match align(i) {
        Align::Left => format!("{:<width$}", s, width = widths[i]),
        Align::Right => format!("{:>width$}", s, width = widths[i]),
    };
    let mut out = String::new();
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| fmt_cell(i, h))
        .collect();
    out.push_str(&header_line.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| fmt_cell(i, c))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

/// Renders a horizontal stacked-bar "figure" in the style of Figures 7–10:
/// one row per configuration, bar length proportional to `value`, annotated
/// with the numeric value.
pub fn render_bars(title: &str, rows: &[(String, f64)], width: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let max = rows.iter().map(|r| r.1).fold(0.0_f64, f64::max).max(1e-12);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    for (label, value) in rows {
        let bar = "#".repeat((value / max * width as f64).round() as usize);
        let _ = writeln!(out, "  {label:<label_w$} | {value:>10.3} {bar}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let s = render_table(
            &["name", "value"],
            &[Align::Left, Align::Right],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "12345".into()],
            ],
        );
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a     "));
        assert!(lines[3].ends_with("12345"));
        // All lines same width.
        assert_eq!(lines[2].trim_end().len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        render_table(&["a", "b"], &[], &[vec!["x".into()]]);
    }

    #[test]
    fn bars_scale_to_max() {
        let s = render_bars(
            "fig",
            &[("base".into(), 1.0), ("double".into(), 2.0)],
            20,
        );
        let lines: Vec<_> = s.lines().collect();
        let hashes =
            |l: &str| l.chars().filter(|&c| c == '#').count();
        assert_eq!(hashes(lines[2]), 20, "max bar fills the width");
        assert_eq!(hashes(lines[1]), 10);
    }
}
