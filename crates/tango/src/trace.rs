//! Trace capture and replay (Tango's trace mode).
//!
//! A [`Trace`] stores one operation stream per logical process in a compact
//! varint-coded binary format, so large runs can be captured once and
//! replayed against many memory-system configurations. (As the Tango paper
//! notes, a trace freezes one interleaving; the coupled mode — running the
//! generator against the simulator — is what the paper's experiments use.)

use crate::op::{Op, ThreadProgram};

/// A captured multiprocess reference trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    per_proc: Vec<Vec<Op>>,
}

impl Trace {
    /// An empty trace over `procs` processes.
    pub fn new(procs: usize) -> Self {
        Trace {
            per_proc: vec![Vec::new(); procs],
        }
    }

    /// Number of processes.
    pub fn procs(&self) -> usize {
        self.per_proc.len()
    }

    /// Operations of process `p`.
    pub fn ops(&self, p: usize) -> &[Op] {
        &self.per_proc[p]
    }

    /// Total operations across all processes.
    pub fn total_ops(&self) -> usize {
        self.per_proc.iter().map(Vec::len).sum()
    }

    /// Serializes to the compact binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"SCDT\x01"); // magic + version
        write_varint(&mut out, self.per_proc.len() as u64);
        for ops in &self.per_proc {
            write_varint(&mut out, ops.len() as u64);
            for &op in ops {
                encode_op(&mut out, op);
            }
        }
        out
    }

    /// Deserializes from [`Trace::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        let mut cur = Cursor { bytes, pos: 0 };
        let magic = cur.take(5)?;
        if magic != b"SCDT\x01" {
            return Err(TraceError::BadMagic);
        }
        let procs = cur.varint()? as usize;
        if procs > 1 << 20 {
            return Err(TraceError::Corrupt("absurd process count"));
        }
        let mut per_proc = Vec::with_capacity(procs);
        for _ in 0..procs {
            let n = cur.varint()? as usize;
            let mut ops = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                ops.push(decode_op(&mut cur)?);
            }
            per_proc.push(ops);
        }
        if cur.pos != bytes.len() {
            return Err(TraceError::Corrupt("trailing bytes"));
        }
        Ok(Trace { per_proc })
    }

    /// Writes the trace to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a trace from a file.
    pub fn load(path: &std::path::Path) -> std::io::Result<Trace> {
        let bytes = std::fs::read(path)?;
        Trace::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))
    }

    /// Replay programs, one per process.
    pub fn replay(&self) -> Vec<ReplayProgram> {
        self.per_proc
            .iter()
            .map(|ops| ReplayProgram {
                ops: ops.clone().into_iter(),
            })
            .collect()
    }
}

/// Decoding failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// Wrong magic/version header.
    BadMagic,
    /// Truncated input.
    Truncated,
    /// Structurally invalid content.
    Corrupt(&'static str),
}

/// Captures the op streams the machine actually issued.
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    trace: Trace,
}

impl TraceRecorder {
    /// A recorder for `procs` processes.
    pub fn new(procs: usize) -> Self {
        TraceRecorder {
            trace: Trace::new(procs),
        }
    }

    /// Records that process `p` issued `op`.
    pub fn record(&mut self, p: usize, op: Op) {
        self.trace.per_proc[p].push(op);
    }

    /// Finishes recording.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

/// A [`ThreadProgram`] replaying one captured stream.
#[derive(Clone, Debug)]
pub struct ReplayProgram {
    ops: std::vec::IntoIter<Op>,
}

impl ThreadProgram for ReplayProgram {
    fn next_op(&mut self) -> Op {
        self.ops.next().unwrap_or(Op::Done)
    }

    fn fork(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn cursor_digest(&self) -> u64 {
        crate::op::digest_ops(self.ops.as_slice())
    }
}

// ----- encoding helpers -----

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn encode_op(out: &mut Vec<u8>, op: Op) {
    match op {
        Op::Read(a) => {
            out.push(0);
            write_varint(out, a);
        }
        Op::Write(a) => {
            out.push(1);
            write_varint(out, a);
        }
        Op::Compute(c) => {
            out.push(2);
            write_varint(out, c);
        }
        Op::Lock(l) => {
            out.push(3);
            write_varint(out, l as u64);
        }
        Op::Unlock(l) => {
            out.push(4);
            write_varint(out, l as u64);
        }
        Op::Barrier(b) => {
            out.push(5);
            write_varint(out, b as u64);
        }
        Op::Done => out.push(6),
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        if self.pos + n > self.bytes.len() {
            return Err(TraceError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn byte(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return Err(TraceError::Corrupt("varint overflow"));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }
}

fn decode_op(cur: &mut Cursor) -> Result<Op, TraceError> {
    Ok(match cur.byte()? {
        0 => Op::Read(cur.varint()?),
        1 => Op::Write(cur.varint()?),
        2 => Op::Compute(cur.varint()?),
        3 => Op::Lock(cur.varint()? as u32),
        4 => Op::Unlock(cur.varint()? as u32),
        5 => Op::Barrier(cur.varint()? as u32),
        6 => Op::Done,
        _ => return Err(TraceError::Corrupt("unknown op tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut rec = TraceRecorder::new(2);
        rec.record(0, Op::Read(0x1000));
        rec.record(0, Op::Compute(300));
        rec.record(0, Op::Write(0x1008));
        rec.record(0, Op::Done);
        rec.record(1, Op::Lock(7));
        rec.record(1, Op::Barrier(0));
        rec.record(1, Op::Unlock(7));
        rec.finish()
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let bytes = t.to_bytes();
        let back = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.total_ops(), 7);
        assert_eq!(back.procs(), 2);
    }

    #[test]
    fn replay_streams_match() {
        let t = sample();
        let mut rp = t.replay();
        assert_eq!(rp[0].next_op(), Op::Read(0x1000));
        assert_eq!(rp[0].next_op(), Op::Compute(300));
        assert_eq!(rp[1].next_op(), Op::Lock(7));
        // Exhausted streams keep returning Done.
        let mut one = ReplayProgram {
            ops: vec![].into_iter(),
        };
        assert_eq!(one.next_op(), Op::Done);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(Trace::from_bytes(b"NOPE\x01xx"), Err(TraceError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        for cut in [0, 3, 6, bytes.len() - 1] {
            assert!(
                Trace::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert_eq!(
            Trace::from_bytes(&bytes),
            Err(TraceError::Corrupt("trailing bytes"))
        );
    }

    #[test]
    fn varint_boundaries_roundtrip() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut out = Vec::new();
            write_varint(&mut out, v);
            let mut cur = Cursor {
                bytes: &out,
                pos: 0,
            };
            assert_eq!(cur.varint().unwrap(), v);
        }
    }

    #[test]
    fn file_roundtrip() {
        let t = sample();
        let dir = std::env::temp_dir().join("scd_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.scdt");
        t.save(&path).unwrap();
        assert_eq!(Trace::load(&path).unwrap(), t);
        std::fs::remove_file(&path).ok();
    }
}
