//! Shared address-space layout for workloads.
//!
//! Applications allocate named regions (arrays); the allocator aligns each
//! region to a coherence-block boundary so that distinct data structures do
//! not falsely share blocks (false sharing *within* an array is real
//! application behaviour and is preserved).

/// A named, block-aligned span of the shared address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    base: u64,
    len: u64,
}

impl Region {
    /// Base byte address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte address at `offset`.
    ///
    /// # Panics
    /// On out-of-bounds offsets (workload bugs should fail fast).
    pub fn addr(&self, offset: u64) -> u64 {
        assert!(offset < self.len, "offset {offset} outside region");
        self.base + offset
    }

    /// Byte address of element `idx` of an array of `elem_bytes`-sized
    /// elements.
    pub fn elem(&self, idx: u64, elem_bytes: u64) -> u64 {
        self.addr(idx * elem_bytes)
    }

    /// True if `addr` falls inside this region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.len
    }
}

/// Bump allocator for the shared segment.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    block_bytes: u64,
    next: u64,
    regions: Vec<(String, Region)>,
}

impl AddressSpace {
    /// Creates an allocator aligning regions to `block_bytes`.
    pub fn new(block_bytes: u64) -> Self {
        assert!(block_bytes.is_power_of_two(), "block size must be 2^k");
        AddressSpace {
            block_bytes,
            next: 0,
            regions: Vec::new(),
        }
    }

    /// Allocates `bytes` for `name`, block-aligned.
    pub fn alloc(&mut self, name: &str, bytes: u64) -> Region {
        assert!(bytes > 0, "zero-sized region");
        let base = self.next;
        let r = Region { base, len: bytes };
        self.next = (base + bytes).div_ceil(self.block_bytes) * self.block_bytes;
        self.regions.push((name.to_string(), r));
        r
    }

    /// Total shared bytes allocated (the paper's Table 2 "shared space").
    pub fn total_bytes(&self) -> u64 {
        self.next
    }

    /// Named regions, in allocation order.
    pub fn regions(&self) -> &[(String, Region)] {
        &self.regions
    }

    /// The region containing `addr`, if any (diagnostics).
    pub fn region_of(&self, addr: u64) -> Option<&str> {
        self.regions
            .iter()
            .find(|(_, r)| r.contains(addr))
            .map(|(n, _)| n.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_block_aligned_and_disjoint() {
        let mut a = AddressSpace::new(16);
        let r1 = a.alloc("x", 10);
        let r2 = a.alloc("y", 40);
        let r3 = a.alloc("z", 16);
        assert_eq!(r1.base() % 16, 0);
        assert_eq!(r2.base(), 16, "10 bytes round up to one block");
        assert_eq!(r3.base(), 64);
        assert_eq!(a.total_bytes(), 80);
    }

    #[test]
    fn element_addressing() {
        let mut a = AddressSpace::new(16);
        let r = a.alloc("m", 8 * 100);
        assert_eq!(r.elem(0, 8), r.base());
        assert_eq!(r.elem(3, 8), r.base() + 24);
    }

    #[test]
    #[should_panic(expected = "outside region")]
    fn out_of_bounds_panics() {
        let mut a = AddressSpace::new(16);
        let r = a.alloc("m", 32);
        r.addr(32);
    }

    #[test]
    fn region_lookup() {
        let mut a = AddressSpace::new(16);
        let r1 = a.alloc("first", 16);
        let _r2 = a.alloc("second", 16);
        assert_eq!(a.region_of(r1.base()), Some("first"));
        assert_eq!(a.region_of(17), Some("second"));
        assert_eq!(a.region_of(1000), None);
    }
}
