//! # scd-tango — multiprocessor reference generation
//!
//! The paper drove its simulator with Tango (Davis, Goldschmidt & Hennessy),
//! which executes a parallel application and feeds its shared references to
//! a memory-system simulator, *coupled* so that simulated timing feeds back
//! into the interleaving of references.
//!
//! This crate reproduces that role. Each logical process is a
//! [`ThreadProgram`] — a resumable generator of [`Op`]s. The machine asks a
//! processor for its next operation only when the previous one has completed
//! in simulated time, which preserves exactly the timing-valid interleaving
//! Tango's coupled mode provides.
//!
//! Tango's *trace mode* is also reproduced: [`trace`] captures a run's
//! per-process operation streams into a compact binary format that can be
//! replayed later (or on a differently configured machine — with the usual
//! caveat that a trace fixes one interleaving).

#![warn(missing_docs)]

pub mod address;
pub mod op;
pub mod trace;

pub use address::{AddressSpace, Region};
pub use op::{Op, ScriptProgram, ThreadProgram};
pub use trace::{ReplayProgram, Trace, TraceRecorder};
