//! Global events: the operations a logical process can issue.

/// One operation of a logical process.
///
/// Tango instruments "global events — references to shared data and
/// synchronization events such as lock and unlock"; everything between two
/// global events is private computation, summarized here as [`Op::Compute`]
/// cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// Read the shared word at this byte address.
    Read(u64),
    /// Write the shared word at this byte address.
    Write(u64),
    /// Execute this many cycles of private work.
    Compute(u64),
    /// Acquire the given lock (blocks until granted).
    Lock(u32),
    /// Release the given lock.
    Unlock(u32),
    /// Wait at the given barrier until all participants arrive.
    Barrier(u32),
    /// The process has finished.
    Done,
}

impl Op {
    /// True for shared-memory references (reads and writes).
    pub fn is_reference(&self) -> bool {
        matches!(self, Op::Read(_) | Op::Write(_))
    }

    /// True for synchronization operations.
    pub fn is_sync(&self) -> bool {
        matches!(self, Op::Lock(_) | Op::Unlock(_) | Op::Barrier(_))
    }
}

/// A resumable generator of operations for one logical process.
///
/// `next_op` is called exactly once per completed operation; returning
/// [`Op::Done`] retires the process (after which `next_op` is not called
/// again).
///
/// Programs are `Send` so a sharded machine can hand each shard's
/// processors to a worker thread.
pub trait ThreadProgram: Send {
    /// Produce the next operation. Must eventually return [`Op::Done`].
    fn next_op(&mut self) -> Op;

    /// An independent copy of this program, resumed at the current
    /// position. Exploration tooling uses this to branch a machine into
    /// several futures; a program that cannot be meaningfully copied may
    /// panic, which simply makes it unusable for exploration.
    fn fork(&self) -> Box<dyn ThreadProgram>;

    /// A digest of the remaining op stream, for state fingerprinting:
    /// programs with equal digests must produce identical op sequences
    /// from this point on.
    fn cursor_digest(&self) -> u64;
}

/// Digest helper shared by the in-repo programs: hashes an explicit
/// remaining-op slice.
pub(crate) fn digest_ops(ops: &[Op]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    ops.hash(&mut h);
    h.finish()
}

/// A canned operation sequence (useful in tests and microbenchmarks).
///
/// The stream is held behind an [`Arc`] so one generated program can feed
/// any number of simulations — across threads — without deep-copying the
/// ops (the parallel sweep engine instantiates each reference program once
/// and shares it immutably among its workers).
#[derive(Clone, Debug)]
pub struct ScriptProgram {
    ops: std::sync::Arc<[Op]>,
    pos: usize,
}

impl ScriptProgram {
    /// Wraps an explicit op list; `Done` is appended implicitly.
    pub fn new(ops: Vec<Op>) -> Self {
        Self::shared(ops.into())
    }

    /// Wraps an already-shared op stream without copying it.
    pub fn shared(ops: std::sync::Arc<[Op]>) -> Self {
        ScriptProgram { ops, pos: 0 }
    }
}

impl ThreadProgram for ScriptProgram {
    fn next_op(&mut self) -> Op {
        match self.ops.get(self.pos) {
            Some(&op) => {
                self.pos += 1;
                op
            }
            None => Op::Done,
        }
    }

    fn fork(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn cursor_digest(&self) -> u64 {
        digest_ops(&self.ops[self.pos.min(self.ops.len())..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Op::Read(0).is_reference());
        assert!(Op::Write(8).is_reference());
        assert!(!Op::Compute(5).is_reference());
        assert!(Op::Lock(1).is_sync());
        assert!(Op::Barrier(0).is_sync());
        assert!(!Op::Done.is_sync());
    }

    #[test]
    fn script_yields_then_done_forever() {
        let mut p = ScriptProgram::new(vec![Op::Read(16), Op::Compute(3)]);
        assert_eq!(p.next_op(), Op::Read(16));
        assert_eq!(p.next_op(), Op::Compute(3));
        assert_eq!(p.next_op(), Op::Done);
        assert_eq!(p.next_op(), Op::Done);
    }
}
