//! Property-based tests for trace encoding: arbitrary op streams round-trip
//! through the binary format, and corrupted inputs never panic.

use proptest::prelude::*;
use scd_tango::{Op, Trace, TraceRecorder};

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u64>().prop_map(Op::Read),
        any::<u64>().prop_map(Op::Write),
        any::<u64>().prop_map(Op::Compute),
        any::<u32>().prop_map(Op::Lock),
        any::<u32>().prop_map(Op::Unlock),
        any::<u32>().prop_map(Op::Barrier),
        Just(Op::Done),
    ]
}

proptest! {
    #[test]
    fn trace_roundtrip(
        streams in prop::collection::vec(prop::collection::vec(op_strategy(), 0..50), 1..8)
    ) {
        let mut rec = TraceRecorder::new(streams.len());
        for (p, ops) in streams.iter().enumerate() {
            for &op in ops {
                rec.record(p, op);
            }
        }
        let trace = rec.finish();
        let bytes = trace.to_bytes();
        let back = Trace::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&trace, &back);
        for (p, ops) in streams.iter().enumerate() {
            prop_assert_eq!(back.ops(p), ops.as_slice());
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Result may be Ok (if it happens to parse) or Err — but no panic.
        let _ = Trace::from_bytes(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_truncation(
        streams in prop::collection::vec(prop::collection::vec(op_strategy(), 0..20), 1..4),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut rec = TraceRecorder::new(streams.len());
        for (p, ops) in streams.iter().enumerate() {
            for &op in ops {
                rec.record(p, op);
            }
        }
        let bytes = rec.finish().to_bytes();
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(Trace::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
