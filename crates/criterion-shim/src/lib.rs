//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to the crates.io registry, so this
//! crate keeps the workspace's `harness = false` bench targets compiling
//! and runnable. Each registered benchmark executes its body a small fixed
//! number of iterations and prints a single mean-time line — enough to
//! smoke-test the benches and get rough numbers, with none of criterion's
//! statistics, warm-up, or HTML reports.

#![warn(missing_docs)]

use std::time::Instant;

/// Opaque value barrier, re-exported for bench bodies.
pub use std::hint::black_box;

/// Iterations per benchmark (no warm-up, no adaptive sampling).
const ITERS: u32 = 10;

/// Entry point handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.0), &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; reporting happens per-benchmark).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Function-plus-parameter identifier.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timer handle passed to bench bodies.
pub struct Bencher {
    elapsed_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += ITERS;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut b = Bencher {
        elapsed_ns: 0,
        iters: 0,
    };
    f(&mut b);
    let mean = if b.iters == 0 {
        0
    } else {
        b.elapsed_ns / b.iters as u128
    };
    println!("bench {id:<48} {mean:>12} ns/iter (n={})", b.iters);
}

/// Collects benchmark functions into a runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("addition", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter("p1"), &41u64, |b, &x| {
            b.iter(|| x + 1)
        });
        g.bench_function("plain", |b| b.iter(|| 7u64 * 6));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs_everything() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).0, "f/32");
        assert_eq!(BenchmarkId::from_parameter("dir4nb").0, "dir4nb");
    }
}
