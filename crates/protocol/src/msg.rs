//! Protocol messages and their traffic classification.

use scd_stats::MessageClass;

/// A block number (byte address / block size).
pub type Block = u64;
/// A cluster index.
pub type Cluster = usize;

/// The protocol message vocabulary.
///
/// Field conventions: `requester` is the cluster whose processor started the
/// transaction (acknowledgements are sent to it, per §2: "invalidation
/// acknowledgement messages are sent to the local cluster").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgKind {
    // ----- cache -> home requests -----
    /// Read miss: local cluster asks the home for a shared copy.
    ReadReq {
        /// The missing block.
        block: Block,
    },
    /// Write miss or upgrade: local cluster asks the home for ownership.
    WriteReq {
        /// The block to own.
        block: Block,
    },
    /// Dirty eviction: the owning cluster returns the block to memory.
    Writeback {
        /// The evicted block.
        block: Block,
    },
    /// Optional replacement hint: a cluster silently dropped a *clean*
    /// copy; the directory may un-record it (precise representations
    /// only). Purely advisory — losing or ignoring it costs nothing but
    /// precision.
    ReplacementHint {
        /// The evicted block.
        block: Block,
    },

    // ----- home -> owner forwards -----
    /// Home forwards a read to the dirty owner.
    FwdRead {
        /// The requested block.
        block: Block,
        /// Cluster to send the data reply to.
        requester: Cluster,
        /// Ownership-epoch version the directory believes the owner holds
        /// (lets the owner distinguish a forward for its *completed* epoch
        /// from one for a still-pending grant whose reply is in flight).
        epoch: u64,
    },
    /// Home forwards a write to the dirty owner (ownership transfer).
    FwdWrite {
        /// The requested block.
        block: Block,
        /// Cluster that becomes the new owner.
        requester: Cluster,
        /// Home-assigned version of the new ownership epoch (oracle).
        version: u64,
    },

    // ----- owner -> home transaction closers -----
    /// Owner downgraded to shared and returns the dirty data to memory;
    /// the home directory becomes Shared{owner, requester}.
    SharingWriteback {
        /// The block.
        block: Block,
        /// The read requester the owner also replied to (equals the owner
        /// itself for an unsolicited intra-cluster downgrade).
        requester: Cluster,
        /// The ownership epoch being downgraded — an unsolicited
        /// notification for an older epoch than the directory's current one
        /// is stale and must be ignored.
        epoch: u64,
    },
    /// Owner invalidated its copy and passed ownership to `new_owner`.
    OwnershipTransfer {
        /// The block.
        block: Block,
        /// The cluster that now owns the block dirty.
        new_owner: Cluster,
    },
    /// Owner no longer had the block when a forward arrived (its writeback
    /// is in flight): home must requeue the forwarded transaction until the
    /// writeback lands. `was_write` reconstructs the original request.
    WritebackRace {
        /// The block.
        block: Block,
        /// Original requester to requeue.
        requester: Cluster,
        /// Whether the requeued transaction is a write.
        was_write: bool,
    },

    // ----- replies -----
    /// Data reply for a read (from home memory or the previous owner).
    ReadReply {
        /// The block.
        block: Block,
        /// Version of the data carried (see `scd-machine`'s version
        /// oracle); 0 when version tracking is off.
        version: u64,
    },
    /// Ownership (and data) reply for a write, carrying the number of
    /// invalidation acknowledgements the requester must collect.
    WriteReply {
        /// The block.
        block: Block,
        /// Invalidations sent on the requester's behalf.
        inval_count: u32,
        /// Version the write will create (version oracle; 0 when off).
        version: u64,
    },
    /// Ownership+data reply sent by a previous owner after [`MsgKind::FwdWrite`].
    TransferReply {
        /// The block.
        block: Block,
        /// Version the write will create (version oracle; 0 when off).
        version: u64,
    },
    /// The home refused to service a request this time (transient: the
    /// directory was busy, or a fault plan injected the refusal). The
    /// requester must retry; nothing about the block's state changed. DASH
    /// NAKs travel on the reply network (§7: the RAC absorbs them).
    Nack {
        /// The refused block.
        block: Block,
        /// Whether the refused request was a write — the requester matches
        /// this against its outstanding MSHR to discard stale NACKs.
        was_write: bool,
    },

    // ----- invalidations -----
    /// Home tells a cluster to drop its copy; the ack goes to `requester`.
    Inval {
        /// The block.
        block: Block,
        /// Cluster collecting the acknowledgements.
        requester: Cluster,
    },
    /// A cluster dropped its copy.
    InvalAck {
        /// The block.
        block: Block,
    },
    /// Sparse-directory replacement: home tells a cluster to drop its copy
    /// of a block whose directory entry is being reclaimed; the ack returns
    /// to the home itself (§7: the RAC tracks these). Also used for
    /// `Dir_i NB` pointer evictions and serial invalidation chains.
    DirFlush {
        /// The block losing its entry.
        block: Block,
        /// Ownership epoch as of the flush decision: a cluster that has
        /// since completed a *newer* epoch ignores the (stale) flush.
        epoch: u64,
        /// True when the flushed entry recorded the *destination* as its
        /// dirty owner. If that ownership is still being filled (grant or
        /// transfer in flight), the destination defers the flush until the
        /// write completes — its own request cannot be queued behind this
        /// replacement, because being the recorded owner means the grant
        /// was already processed.
        owner_flush: bool,
    },
    /// Acknowledgement of a [`MsgKind::DirFlush`] (carries data if the copy
    /// was dirty).
    DirFlushAck {
        /// The block.
        block: Block,
    },

    // ----- synchronization -----
    /// Acquire request for a queue lock.
    LockReq {
        /// Lock identifier.
        lock: u32,
    },
    /// The lock is granted to the destination cluster.
    LockGrant {
        /// Lock identifier.
        lock: u32,
        /// Timestamp piggyback (Tardis): the maximum program timestamp
        /// any previous releaser of this lock carried. 0 under protocols
        /// without logical timestamps.
        pts: u64,
    },
    /// Coarse-vector grant-to-region: the destination should retry its
    /// acquire (one region member will win).
    LockRetry {
        /// Lock identifier.
        lock: u32,
    },
    /// Release a held lock.
    UnlockReq {
        /// Lock identifier.
        lock: u32,
        /// Timestamp piggyback (Tardis): the releasing cluster's program
        /// timestamp. 0 under protocols without logical timestamps.
        pts: u64,
    },
    /// A cluster's processor arrived at a barrier.
    BarrierArrive {
        /// Barrier identifier.
        barrier: u32,
        /// Timestamp piggyback (Tardis): the arriving cluster's program
        /// timestamp. 0 under protocols without logical timestamps.
        pts: u64,
    },
    /// All participants arrived; the destination may proceed.
    BarrierRelease {
        /// Barrier identifier.
        barrier: u32,
        /// Timestamp piggyback (Tardis): the maximum program timestamp
        /// over all arrivals. 0 under protocols without logical
        /// timestamps.
        pts: u64,
    },

    // ----- Tardis (timestamp coherence, DESIGN.md §16) -----
    /// Tardis read miss: asks the home for a leased shared copy. Carries
    /// the requester's program timestamp so the home can grant a lease
    /// that is valid at (and beyond) the requester's logical time.
    TardisReadReq {
        /// The missing block.
        block: Block,
        /// Requesting cluster's program timestamp.
        pts: u64,
    },
    /// Tardis write: written through to the home timestamp slice. The
    /// home bumps the block's write timestamp past every outstanding
    /// lease — no sharer list, no invalidation fan-out.
    TardisWriteReq {
        /// The block to write.
        block: Block,
    },
    /// Data + lease reply for a Tardis read.
    TardisReadReply {
        /// The block.
        block: Block,
        /// Write timestamp of the version carried.
        wts: u64,
        /// Lease end: the copy may satisfy reads while `pts <= rts`.
        rts: u64,
        /// Version of the data carried (version oracle; 0 when off).
        version: u64,
    },
    /// Completion reply for a Tardis write-through.
    TardisWriteReply {
        /// The block.
        block: Block,
        /// The new version's write timestamp.
        wts: u64,
        /// Version the write created (version oracle; 0 when off).
        version: u64,
    },
    /// Lease renewal: a resident copy's lease expired; ask the home to
    /// extend it without moving data.
    RenewReq {
        /// The block.
        block: Block,
        /// Write timestamp of the copy held (renewal is only valid if
        /// the home still has this version).
        wts: u64,
        /// Requesting cluster's program timestamp.
        pts: u64,
    },
    /// Renewal outcome. `renewed == false` means the block was rewritten
    /// since the lease was granted; the requester must refetch.
    RenewReply {
        /// The block.
        block: Block,
        /// Whether the lease was extended.
        renewed: bool,
        /// The new lease end (meaningful only when `renewed`).
        rts: u64,
    },

    // ----- DLS (directoryless shared LLC, DESIGN.md §16) -----
    /// Data reply from the home LLC slice for a remote DLS read. The
    /// requester consumes the data without caching it — the next read
    /// goes back to the LLC.
    LlcFill {
        /// The block.
        block: Block,
        /// Version of the data carried (version oracle; 0 when off).
        version: u64,
    },
    /// Completion reply for a remote DLS write absorbed by the home LLC
    /// slice.
    LlcWriteAck {
        /// The block.
        block: Block,
        /// Version the write created (version oracle; 0 when off).
        version: u64,
    },
}

impl MsgKind {
    /// The paper's traffic class of this message.
    pub fn class(&self) -> MessageClass {
        use MessageClass::*;
        match self {
            MsgKind::ReadReq { .. }
            | MsgKind::WriteReq { .. }
            | MsgKind::Writeback { .. }
            | MsgKind::ReplacementHint { .. }
            | MsgKind::FwdRead { .. }
            | MsgKind::FwdWrite { .. }
            | MsgKind::SharingWriteback { .. }
            | MsgKind::OwnershipTransfer { .. }
            | MsgKind::WritebackRace { .. }
            | MsgKind::LockReq { .. }
            | MsgKind::UnlockReq { .. }
            | MsgKind::TardisReadReq { .. }
            | MsgKind::TardisWriteReq { .. }
            | MsgKind::RenewReq { .. }
            | MsgKind::BarrierArrive { .. } => Request,
            MsgKind::ReadReply { .. }
            | MsgKind::WriteReply { .. }
            | MsgKind::TransferReply { .. }
            | MsgKind::Nack { .. }
            | MsgKind::LockGrant { .. }
            | MsgKind::LockRetry { .. }
            | MsgKind::TardisReadReply { .. }
            | MsgKind::TardisWriteReply { .. }
            | MsgKind::RenewReply { .. }
            | MsgKind::LlcFill { .. }
            | MsgKind::LlcWriteAck { .. }
            | MsgKind::BarrierRelease { .. } => Reply,
            MsgKind::Inval { .. } | MsgKind::DirFlush { .. } => Invalidation,
            MsgKind::InvalAck { .. } | MsgKind::DirFlushAck { .. } => Acknowledgement,
        }
    }

    /// Stable snake_case name of this message kind, for trace schemas.
    /// Names are part of the JSONL trace format — never reuse or rename.
    pub fn label(&self) -> &'static str {
        match self {
            MsgKind::ReadReq { .. } => "read_req",
            MsgKind::WriteReq { .. } => "write_req",
            MsgKind::Writeback { .. } => "writeback",
            MsgKind::ReplacementHint { .. } => "replacement_hint",
            MsgKind::FwdRead { .. } => "fwd_read",
            MsgKind::FwdWrite { .. } => "fwd_write",
            MsgKind::SharingWriteback { .. } => "sharing_writeback",
            MsgKind::OwnershipTransfer { .. } => "ownership_transfer",
            MsgKind::WritebackRace { .. } => "writeback_race",
            MsgKind::ReadReply { .. } => "read_reply",
            MsgKind::WriteReply { .. } => "write_reply",
            MsgKind::TransferReply { .. } => "transfer_reply",
            MsgKind::Nack { .. } => "nack",
            MsgKind::Inval { .. } => "inval",
            MsgKind::InvalAck { .. } => "inval_ack",
            MsgKind::DirFlush { .. } => "dir_flush",
            MsgKind::DirFlushAck { .. } => "dir_flush_ack",
            MsgKind::LockReq { .. } => "lock_req",
            MsgKind::LockGrant { .. } => "lock_grant",
            MsgKind::LockRetry { .. } => "lock_retry",
            MsgKind::UnlockReq { .. } => "unlock_req",
            MsgKind::BarrierArrive { .. } => "barrier_arrive",
            MsgKind::BarrierRelease { .. } => "barrier_release",
            MsgKind::TardisReadReq { .. } => "tardis_read_req",
            MsgKind::TardisWriteReq { .. } => "tardis_write_req",
            MsgKind::TardisReadReply { .. } => "tardis_read_reply",
            MsgKind::TardisWriteReply { .. } => "tardis_write_reply",
            MsgKind::RenewReq { .. } => "renew_req",
            MsgKind::RenewReply { .. } => "renew_reply",
            MsgKind::LlcFill { .. } => "llc_fill",
            MsgKind::LlcWriteAck { .. } => "llc_write_ack",
        }
    }

    /// The block this message concerns, if any.
    pub fn block(&self) -> Option<Block> {
        match *self {
            MsgKind::ReadReq { block }
            | MsgKind::WriteReq { block }
            | MsgKind::Writeback { block }
            | MsgKind::FwdRead { block, .. }
            | MsgKind::FwdWrite { block, .. }
            | MsgKind::SharingWriteback { block, .. }
            | MsgKind::OwnershipTransfer { block, .. }
            | MsgKind::WritebackRace { block, .. }
            | MsgKind::ReplacementHint { block }
            | MsgKind::ReadReply { block, .. }
            | MsgKind::WriteReply { block, .. }
            | MsgKind::TransferReply { block, .. }
            | MsgKind::Nack { block, .. }
            | MsgKind::Inval { block, .. }
            | MsgKind::InvalAck { block }
            | MsgKind::DirFlush { block, .. }
            | MsgKind::DirFlushAck { block }
            | MsgKind::TardisReadReq { block, .. }
            | MsgKind::TardisWriteReq { block }
            | MsgKind::TardisReadReply { block, .. }
            | MsgKind::TardisWriteReply { block, .. }
            | MsgKind::RenewReq { block, .. }
            | MsgKind::RenewReply { block, .. }
            | MsgKind::LlcFill { block, .. }
            | MsgKind::LlcWriteAck { block, .. } => Some(block),
            _ => None,
        }
    }
}

/// A message in flight between two clusters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Msg {
    /// Sending cluster.
    pub src: Cluster,
    /// Destination cluster.
    pub dst: Cluster,
    /// Payload.
    pub kind: MsgKind,
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_stats::MessageClass::*;

    #[test]
    fn classes_match_paper_taxonomy() {
        assert_eq!(MsgKind::ReadReq { block: 1 }.class(), Request);
        assert_eq!(MsgKind::Writeback { block: 1 }.class(), Request);
        assert_eq!(
            MsgKind::WriteReply {
                block: 1,
                inval_count: 3,
                version: 0
            }
            .class(),
            Reply
        );
        assert_eq!(
            MsgKind::Inval {
                block: 1,
                requester: 0
            }
            .class(),
            Invalidation
        );
        assert_eq!(MsgKind::InvalAck { block: 1 }.class(), Acknowledgement);
        assert_eq!(
            MsgKind::DirFlush {
                block: 1,
                epoch: 0,
                owner_flush: false
            }
            .class(),
            Invalidation
        );
        assert_eq!(MsgKind::DirFlushAck { block: 1 }.class(), Acknowledgement);
        assert_eq!(MsgKind::LockReq { lock: 0 }.class(), Request);
        assert_eq!(
            MsgKind::BarrierRelease { barrier: 0, pts: 0 }.class(),
            Reply
        );
        assert_eq!(MsgKind::TardisReadReq { block: 1, pts: 0 }.class(), Request);
        assert_eq!(
            MsgKind::RenewReq {
                block: 1,
                wts: 0,
                pts: 0
            }
            .class(),
            Request
        );
        assert_eq!(MsgKind::LlcFill { block: 1, version: 0 }.class(), Reply);
        assert_eq!(
            MsgKind::LlcWriteAck { block: 1, version: 0 }.class(),
            Reply
        );
        assert_eq!(
            MsgKind::Nack {
                block: 1,
                was_write: true
            }
            .class(),
            Reply
        );
        assert_eq!(
            MsgKind::Nack {
                block: 4,
                was_write: false
            }
            .block(),
            Some(4)
        );
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        let kinds = [
            MsgKind::ReadReq { block: 1 },
            MsgKind::WriteReq { block: 1 },
            MsgKind::Writeback { block: 1 },
            MsgKind::ReplacementHint { block: 1 },
            MsgKind::FwdRead { block: 1, requester: 0, epoch: 0 },
            MsgKind::FwdWrite { block: 1, requester: 0, version: 0 },
            MsgKind::SharingWriteback { block: 1, requester: 0, epoch: 0 },
            MsgKind::OwnershipTransfer { block: 1, new_owner: 0 },
            MsgKind::WritebackRace { block: 1, requester: 0, was_write: false },
            MsgKind::ReadReply { block: 1, version: 0 },
            MsgKind::WriteReply { block: 1, inval_count: 0, version: 0 },
            MsgKind::TransferReply { block: 1, version: 0 },
            MsgKind::Nack { block: 1, was_write: false },
            MsgKind::Inval { block: 1, requester: 0 },
            MsgKind::InvalAck { block: 1 },
            MsgKind::DirFlush { block: 1, epoch: 0, owner_flush: false },
            MsgKind::DirFlushAck { block: 1 },
            MsgKind::LockReq { lock: 0 },
            MsgKind::LockGrant { lock: 0, pts: 0 },
            MsgKind::LockRetry { lock: 0 },
            MsgKind::UnlockReq { lock: 0, pts: 0 },
            MsgKind::BarrierArrive { barrier: 0, pts: 0 },
            MsgKind::BarrierRelease { barrier: 0, pts: 0 },
            MsgKind::TardisReadReq { block: 1, pts: 0 },
            MsgKind::TardisWriteReq { block: 1 },
            MsgKind::TardisReadReply { block: 1, wts: 0, rts: 0, version: 0 },
            MsgKind::TardisWriteReply { block: 1, wts: 0, version: 0 },
            MsgKind::RenewReq { block: 1, wts: 0, pts: 0 },
            MsgKind::RenewReply { block: 1, renewed: false, rts: 0 },
            MsgKind::LlcFill { block: 1, version: 0 },
            MsgKind::LlcWriteAck { block: 1, version: 0 },
        ];
        let labels: std::collections::HashSet<_> =
            kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len(), "labels must be distinct");
        assert_eq!(MsgKind::ReadReq { block: 1 }.label(), "read_req");
        assert_eq!(MsgKind::DirFlushAck { block: 1 }.label(), "dir_flush_ack");
        for k in &kinds {
            let l = k.label();
            assert!(
                l.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "snake_case only: {l}"
            );
        }
    }

    #[test]
    fn block_extraction() {
        assert_eq!(MsgKind::ReadReq { block: 9 }.block(), Some(9));
        assert_eq!(MsgKind::LockReq { lock: 2 }.block(), None);
        assert_eq!(
            MsgKind::FwdWrite {
                block: 7,
                requester: 3,
                version: 0
            }
            .block(),
            Some(7)
        );
    }
}
