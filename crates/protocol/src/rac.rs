//! The Remote Access Cache (RAC).
//!
//! Each DASH cluster has a RAC that tracks its outstanding remote accesses:
//! which blocks have a request in flight (MSHRs), how many invalidation
//! acknowledgements a pending write still needs, and — on the home side —
//! how many flush acknowledgements a sparse-directory replacement is still
//! owed (§7: "Such an entity must already exist in systems that implement
//! weak consistency ... In DASH, we have the Remote Access Cache").

use std::collections::HashMap;

use crate::msg::Block;

/// What kind of access an MSHR represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MshrKind {
    /// Waiting for a shared copy.
    Read,
    /// Waiting for ownership (and possibly invalidation acks).
    Write,
}

/// One outstanding transaction of a cluster.
#[derive(Clone, Debug, Hash)]
pub struct Mshr {
    /// Read or write.
    pub kind: MshrKind,
    /// Local processors blocked on this transaction, with the kind of
    /// access each wanted (a processor whose want is stronger than the
    /// MSHR's kind must reissue when the MSHR completes).
    pub waiters: Vec<(usize, MshrKind)>,
    /// `Some(n)` once the ownership reply told us how many acks to expect.
    pub acks_expected: Option<u32>,
    /// Acks received so far (acks may overtake the ownership reply).
    pub acks_received: u32,
    /// The data/ownership reply has arrived.
    pub reply_received: bool,
    /// A sparse-directory flush arrived while this transaction was in
    /// flight: when the transaction completes, the cluster must drop the
    /// line and send the deferred `DirFlushAck`.
    pub flush_pending: bool,
    /// Version the pending write will create (version oracle; set by the
    /// ownership reply).
    pub version: u64,
    /// An invalidation arrived while this *read* was in flight (possible
    /// when the network reorders cross-channel messages, e.g. under
    /// contention): the reply's data may be consumed by the waiting
    /// processors — the read was serialized before the invalidating write —
    /// but the line must not stay cached.
    pub poisoned: bool,
    /// A forwarded request arrived while this cluster's own *write* for the
    /// block was still collecting acknowledgements (the directory records
    /// the new owner at grant time, before the owner's fill). The owner
    /// services it — `(requester, is_write, version)` — right after
    /// completing (`version` is the home-assigned version of the forwarded
    /// write, 0 for reads).
    pub deferred_forward: Option<(usize, bool, u64)>,
    /// Times this transaction's request has been NACKed and reissued.
    pub retries: u32,
}

impl Mshr {
    fn complete(&self) -> bool {
        match self.kind {
            MshrKind::Read => self.reply_received,
            MshrKind::Write => {
                self.reply_received && self.acks_expected == Some(self.acks_received)
            }
        }
    }
}

/// Outcome of [`Rac::start`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StartOutcome {
    /// No transaction was outstanding: the caller must send the request.
    IssueRequest,
    /// Merged into an existing transaction that will satisfy this access.
    Merged,
    /// An existing *read* transaction is in flight but the processor wants
    /// to write: it must wait for completion and then reissue.
    WaitAndReissue,
}

/// Per-cluster transaction bookkeeping.
#[derive(Clone, Debug, Default)]
pub struct Rac {
    outstanding: HashMap<Block, Mshr>,
    /// Home-side: flush acks still owed per replaced block.
    replacements: HashMap<Block, u32>,
    /// Blocks whose dirty eviction writeback has been sent but whose home
    /// has not yet (observably) processed it. Used to disambiguate a
    /// forward that bounces: flag set => the directory's dirty record is
    /// our *previous* ownership epoch (answer `WritebackRace`); flag clear
    /// but write MSHR present => the record is our in-flight grant (defer
    /// the forward until the write completes).
    writeback_in_flight: std::collections::HashSet<Block>,
}

impl Rac {
    /// An empty RAC.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of outstanding request MSHRs.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Whether `block` has a transaction in flight.
    pub fn has_mshr(&self, block: Block) -> bool {
        self.outstanding.contains_key(&block)
    }

    /// Registers processor `proc`'s `kind` access to `block`.
    pub fn start(&mut self, block: Block, kind: MshrKind, proc: usize) -> StartOutcome {
        match self.outstanding.get_mut(&block) {
            None => {
                self.outstanding.insert(
                    block,
                    Mshr {
                        kind,
                        waiters: vec![(proc, kind)],
                        acks_expected: None,
                        acks_received: 0,
                        reply_received: false,
                        flush_pending: false,
                        version: 0,
                        poisoned: false,
                        deferred_forward: None,
                        retries: 0,
                    },
                );
                StartOutcome::IssueRequest
            }
            Some(m) => {
                if kind == MshrKind::Write && m.kind == MshrKind::Read {
                    // A shared copy will not satisfy a write; reissue later.
                    m.waiters.push((proc, kind));
                    StartOutcome::WaitAndReissue
                } else {
                    // Read-into-read, read-into-write, write-into-write all
                    // merge: ownership satisfies reads too.
                    m.waiters.push((proc, kind));
                    StartOutcome::Merged
                }
            }
        }
    }

    /// Records a data reply for a read MSHR. Returns the completed MSHR.
    ///
    /// # Panics
    /// If no read MSHR is outstanding for `block` (a stray reply is always a
    /// protocol bug).
    pub fn read_reply(&mut self, block: Block) -> Mshr {
        self.try_read_reply(block).expect("read reply without MSHR")
    }

    /// Records a data reply for a read MSHR, tolerating strays: returns
    /// `None` when no *read* MSHR is outstanding for `block`. Under fault
    /// injection a duplicated read request is serviced twice, so the second
    /// reply finds its MSHR gone (or superseded by a write) and must simply
    /// be discarded.
    pub fn try_read_reply(&mut self, block: Block) -> Option<Mshr> {
        if self.outstanding.get(&block).map(|m| m.kind) != Some(MshrKind::Read) {
            return None;
        }
        // Any reply implies the home processed our request, which followed
        // our writeback on the same channel: the writeback has landed.
        self.writeback_in_flight.remove(&block);
        self.outstanding.remove(&block)
    }

    /// Records a NACK for `block`'s outstanding request. Returns
    /// `Some(attempt)` — the number of reissues so far, starting at 1 —
    /// when a retry must be sent: the MSHR exists, its kind matches the
    /// NACKed request, and the transaction has seen no service yet (no
    /// reply, no acks). Any other NACK is stale — the transaction it
    /// refused already completed, or a duplicated request bounced — and
    /// must be dropped (`None`), because reissuing a request that was
    /// *also* serviced would corrupt the directory.
    pub fn on_nack(&mut self, block: Block, was_write: bool) -> Option<u32> {
        let m = self.outstanding.get_mut(&block)?;
        let kind = if was_write {
            MshrKind::Write
        } else {
            MshrKind::Read
        };
        if m.kind != kind || m.reply_received || m.acks_received > 0 {
            return None;
        }
        m.retries += 1;
        Some(m.retries)
    }

    /// Records the ownership reply (with its ack count) for a write MSHR.
    /// Returns the MSHR if the transaction is now complete.
    pub fn write_reply(&mut self, block: Block, acks: u32, version: u64) -> Option<Mshr> {
        self.writeback_in_flight.remove(&block);
        let m = self
            .outstanding
            .get_mut(&block)
            .expect("write reply without MSHR");
        assert_eq!(m.kind, MshrKind::Write, "write reply for a read MSHR");
        assert!(m.acks_expected.is_none(), "duplicate write reply");
        m.acks_expected = Some(acks);
        m.reply_received = true;
        m.version = version;
        self.take_if_complete(block)
    }

    /// Records one invalidation ack. Returns the MSHR if now complete.
    pub fn inval_ack(&mut self, block: Block) -> Option<Mshr> {
        let m = self
            .outstanding
            .get_mut(&block)
            .expect("inval ack without MSHR");
        m.acks_received += 1;
        self.take_if_complete(block)
    }

    fn take_if_complete(&mut self, block: Block) -> Option<Mshr> {
        if self.outstanding.get(&block).is_some_and(Mshr::complete) {
            self.outstanding.remove(&block)
        } else {
            None
        }
    }

    // ----- home-side sparse replacement tracking -----

    /// Begins tracking a replacement that expects `acks` flush acks.
    ///
    /// # Panics
    /// If a replacement for `block` is already outstanding (the serializer
    /// keeps the block busy, so this cannot legally happen) or `acks == 0`
    /// (an empty victim needs no flushes).
    pub fn start_replacement(&mut self, block: Block, acks: u32) {
        assert!(acks > 0, "replacement with no sharers needs no tracking");
        let prev = self.replacements.insert(block, acks);
        assert!(prev.is_none(), "duplicate replacement for block {block}");
    }

    /// Records one flush ack; returns `true` when the replacement completed.
    pub fn flush_ack(&mut self, block: Block) -> bool {
        let remaining = self
            .replacements
            .get_mut(&block)
            .expect("flush ack without replacement");
        *remaining -= 1;
        if *remaining == 0 {
            self.replacements.remove(&block);
            true
        } else {
            false
        }
    }

    /// Whether a replacement is in flight for `block`.
    pub fn replacement_pending(&self, block: Block) -> bool {
        self.replacements.contains_key(&block)
    }

    /// Notes that this cluster sent a dirty-eviction writeback for `block`.
    pub fn note_writeback(&mut self, block: Block) {
        self.writeback_in_flight.insert(block);
    }

    /// Whether a dirty-eviction writeback for `block` may still be in
    /// flight to the home.
    pub fn writeback_in_flight(&self, block: Block) -> bool {
        self.writeback_in_flight.contains(&block)
    }

    /// The kind of the outstanding transaction for `block`, if any.
    pub fn mshr_kind(&self, block: Block) -> Option<MshrKind> {
        self.outstanding.get(&block).map(|m| m.kind)
    }

    /// Whether `block`'s outstanding transaction has already received its
    /// data/ownership reply (a write still collecting acknowledgements).
    pub fn mshr_reply_received(&self, block: Block) -> bool {
        self.outstanding
            .get(&block)
            .is_some_and(|m| m.reply_received)
    }

    /// Records a forward that must wait for this cluster's own write to
    /// complete (see [`Mshr::deferred_forward`]).
    ///
    /// # Panics
    /// If no write MSHR is outstanding, or a forward is already deferred —
    /// the home serializes transactions per block, so at most one forward
    /// can be in flight.
    pub fn defer_forward(&mut self, block: Block, requester: usize, is_write: bool, version: u64) {
        let m = self
            .outstanding
            .get_mut(&block)
            .unwrap_or_else(|| panic!("defer_forward without MSHR (block {block})"));
        assert_eq!(m.kind, MshrKind::Write, "forwards defer only behind writes");
        assert!(
            m.deferred_forward.is_none(),
            "two forwards deferred behind one write"
        );
        m.deferred_forward = Some((requester, is_write, version));
    }

    /// Poisons an outstanding *read* for `block` (an invalidation crossed
    /// it): returns true if a read MSHR was present and marked.
    pub fn poison_read(&mut self, block: Block) -> bool {
        match self.outstanding.get_mut(&block) {
            Some(m) if m.kind == MshrKind::Read => {
                m.poisoned = true;
                true
            }
            _ => false,
        }
    }

    /// Marks `block`'s outstanding transaction as owing a deferred flush
    /// acknowledgement (a `DirFlush` crossed this cluster's own request).
    ///
    /// # Panics
    /// If no transaction is outstanding for `block`.
    pub fn defer_flush(&mut self, block: Block) {
        self.outstanding
            .get_mut(&block)
            .expect("defer_flush without MSHR")
            .flush_pending = true;
    }

    /// Hashes the RAC's observable state into `h` in a canonical (sorted)
    /// order, for model-checking state digests. Covers every field — all
    /// of them steer protocol behavior.
    pub fn fingerprint<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        let mut blocks: Vec<Block> = self.outstanding.keys().copied().collect();
        blocks.sort_unstable();
        for b in blocks {
            b.hash(h);
            self.outstanding[&b].hash(h);
        }
        0xa1u8.hash(h); // section separator
        let mut repl: Vec<(Block, u32)> =
            self.replacements.iter().map(|(&b, &n)| (b, n)).collect();
        repl.sort_unstable();
        repl.hash(h);
        let mut wb: Vec<Block> = self.writeback_in_flight.iter().copied().collect();
        wb.sort_unstable();
        wb.hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_lifecycle() {
        let mut rac = Rac::new();
        assert_eq!(rac.start(5, MshrKind::Read, 0), StartOutcome::IssueRequest);
        assert_eq!(rac.start(5, MshrKind::Read, 1), StartOutcome::Merged);
        assert!(rac.has_mshr(5));
        let m = rac.read_reply(5);
        assert_eq!(m.waiters, vec![(0, MshrKind::Read), (1, MshrKind::Read)]);
        assert!(!rac.has_mshr(5));
    }

    #[test]
    fn write_waits_for_reply_and_all_acks() {
        let mut rac = Rac::new();
        rac.start(9, MshrKind::Write, 0);
        assert!(rac.write_reply(9, 2, 0).is_none(), "2 acks still owed");
        assert!(rac.inval_ack(9).is_none());
        let m = rac.inval_ack(9).expect("complete after final ack");
        assert_eq!(m.acks_received, 2);
    }

    #[test]
    fn acks_may_overtake_the_reply() {
        let mut rac = Rac::new();
        rac.start(9, MshrKind::Write, 0);
        assert!(rac.inval_ack(9).is_none());
        assert!(rac.inval_ack(9).is_none());
        let m = rac.write_reply(9, 2, 0).expect("acks already in");
        assert!(m.reply_received);
    }

    #[test]
    fn zero_ack_write_completes_on_reply() {
        let mut rac = Rac::new();
        rac.start(1, MshrKind::Write, 3);
        assert!(rac.write_reply(1, 0, 0).is_some());
    }

    #[test]
    fn write_into_read_must_reissue() {
        let mut rac = Rac::new();
        rac.start(4, MshrKind::Read, 0);
        assert_eq!(
            rac.start(4, MshrKind::Write, 1),
            StartOutcome::WaitAndReissue
        );
        let m = rac.read_reply(4);
        assert_eq!(m.waiters.len(), 2);
        assert_eq!(m.waiters[1], (1, MshrKind::Write));
    }

    #[test]
    fn read_merges_into_write() {
        let mut rac = Rac::new();
        rac.start(4, MshrKind::Write, 0);
        assert_eq!(rac.start(4, MshrKind::Read, 1), StartOutcome::Merged);
        let m = rac.write_reply(4, 0, 0).unwrap();
        assert_eq!(m.waiters.len(), 2);
    }

    #[test]
    fn replacement_tracking() {
        let mut rac = Rac::new();
        rac.start_replacement(7, 3);
        assert!(rac.replacement_pending(7));
        assert!(!rac.flush_ack(7));
        assert!(!rac.flush_ack(7));
        assert!(rac.flush_ack(7));
        assert!(!rac.replacement_pending(7));
    }

    #[test]
    #[should_panic(expected = "duplicate replacement")]
    fn duplicate_replacement_panics() {
        let mut rac = Rac::new();
        rac.start_replacement(7, 1);
        rac.start_replacement(7, 1);
    }

    #[test]
    #[should_panic(expected = "without MSHR")]
    fn stray_reply_panics() {
        let mut rac = Rac::new();
        rac.read_reply(42);
    }

    #[test]
    fn stray_read_reply_is_dropped_tolerantly() {
        let mut rac = Rac::new();
        assert!(rac.try_read_reply(42).is_none(), "no MSHR at all");
        rac.start(42, MshrKind::Write, 0);
        assert!(
            rac.try_read_reply(42).is_none(),
            "a write MSHR must not consume a read reply"
        );
        assert!(rac.has_mshr(42), "the write MSHR survives the stray");
    }

    #[test]
    fn nack_counts_retries_until_service() {
        let mut rac = Rac::new();
        rac.start(7, MshrKind::Write, 0);
        assert_eq!(rac.on_nack(7, true), Some(1));
        assert_eq!(rac.on_nack(7, true), Some(2));
        let m = rac.write_reply(7, 0, 0).expect("completes");
        assert_eq!(m.retries, 2);
    }

    #[test]
    fn stale_nacks_are_dropped() {
        let mut rac = Rac::new();
        // No MSHR at all.
        assert_eq!(rac.on_nack(3, false), None);
        // Kind mismatch: a read NACK must not reissue a write.
        rac.start(3, MshrKind::Write, 0);
        assert_eq!(rac.on_nack(3, false), None);
        // Service already visible (an ack arrived): the request was
        // processed, so the NACK is stale.
        assert!(rac.inval_ack(3).is_none());
        assert_eq!(rac.on_nack(3, true), None);
    }

    #[test]
    fn nack_after_reply_is_dropped() {
        let mut rac = Rac::new();
        rac.start(4, MshrKind::Write, 0);
        assert!(rac.write_reply(4, 2, 0).is_none(), "acks still owed");
        assert_eq!(rac.on_nack(4, true), None, "reply already in");
    }
}
