//! Per-block transaction serialization at the home cluster.
//!
//! A memory-based directory can process most transactions atomically, but
//! two flows leave a block in flight:
//!
//! 1. **Forwarded transactions**: the home forwarded a read/write to the
//!    dirty owner and must not touch the entry until the owner's closing
//!    message (`SharingWriteback` / `OwnershipTransfer`) lands.
//! 2. **Sparse replacements**: a victim entry's copies are being flushed;
//!    requests for the victim block must wait until every flush ack is in.
//!
//! Real DASH NAKs conflicting requests and lets requesters retry. The
//! simulator instead queues them at the home and replays them in arrival
//! order when the block closes — simpler, deadlock-free, and identical in
//! message count on the non-conflicting (overwhelmingly common) paths.
//!
//! A third, subtler case is the **writeback race**: the home forwards to an
//! owner that has just evicted the block (its `Writeback` is still in
//! flight). The owner answers `WritebackRace`; the home re-queues the
//! original request and waits for the writeback to land. The race message
//! and the writeback can arrive in either order, which is why
//! [`HomeSerializer::on_writeback`] may need to remember an "early"
//! writeback.

use std::collections::{HashMap, VecDeque};

use crate::msg::{Block, Cluster};

/// Why a block is busy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BusyReason {
    /// A forwarded transaction awaits its closing message.
    AwaitClose,
    /// A writeback race was reported; awaiting the in-flight writeback
    /// from this specific ex-owner.
    AwaitWriteback(Cluster),
    /// A sparse replacement awaits its flush acks.
    AwaitFlushAcks,
    /// The home cluster's own processor was granted ownership; the entry is
    /// cleared (home copies are bus-tracked) but the write has not yet
    /// completed, so other requests must wait for the home's fill.
    AwaitHomeWrite,
}

/// What a cluster did to its copy while the block's transaction was still
/// in flight (the corresponding protocol message arrived "early", before
/// the message that would make it applicable).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EarlyKind {
    /// The cluster evicted its dirty copy (writeback): the epoch ends with
    /// the block uncached.
    Writeback,
    /// The cluster downgraded its dirty copy (unsolicited sharing
    /// writeback): the epoch ends with the cluster holding a clean copy.
    Downgrade,
}

/// A request parked at the home.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueuedReq {
    /// The requesting cluster.
    pub requester: Cluster,
    /// The block the request targets. Usually the block it is queued
    /// behind, but a request stalled on a fully pinned sparse set parks
    /// behind a *different* (pinned) block.
    pub block: Block,
    /// True for ownership (write) requests.
    pub is_write: bool,
}

/// The home-side serialization state.
#[derive(Clone, Debug, Default)]
pub struct HomeSerializer {
    busy: HashMap<Block, BusyReason>,
    pending: HashMap<Block, VecDeque<QueuedReq>>,
    /// Epoch-ending events (writebacks / unsolicited downgrades) that
    /// arrived while their block was in flight — the matching race /
    /// transfer / request is still on the wire. Keyed by the ownership
    /// epoch they end, so a record can never be consumed by a later
    /// transaction of the same cluster.
    early: HashMap<Block, Vec<(Cluster, u64, EarlyKind)>>,
    /// High-water mark of queued requests (ablation metric).
    max_queue_depth: usize,
    /// Total requests ever queued (ablation metric).
    total_queued: u64,
}

impl HomeSerializer {
    /// An idle serializer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `block` has an in-flight transaction.
    pub fn is_busy(&self, block: Block) -> bool {
        self.busy.contains_key(&block)
    }

    /// The busy reason, if any.
    pub fn reason(&self, block: Block) -> Option<BusyReason> {
        self.busy.get(&block).copied()
    }

    /// Marks `block` busy.
    ///
    /// # Panics
    /// If already busy — each block has at most one transaction in flight.
    pub fn mark_busy(&mut self, block: Block, reason: BusyReason) {
        let prev = self.busy.insert(block, reason);
        assert!(prev.is_none(), "block {block} already busy ({prev:?})");
    }

    /// Parks a request behind `block`'s in-flight transaction.
    pub fn queue(&mut self, block: Block, req: QueuedReq) {
        let q = self.pending.entry(block).or_default();
        q.push_back(req);
        self.total_queued += 1;
        self.max_queue_depth = self.max_queue_depth.max(q.len());
    }

    /// Closes the in-flight transaction (transaction's closing message or
    /// final flush ack arrived). Queued requests become poppable.
    ///
    /// # Panics
    /// If the block was not busy.
    pub fn close(&mut self, block: Block) {
        let prev = self.busy.remove(&block);
        assert!(prev.is_some(), "closing idle block {block}");
    }

    /// Pops the next replayable request for `block`, if it is not busy.
    ///
    /// The machine processes popped requests one at a time; a request that
    /// re-marks the block busy stops the drain automatically.
    pub fn pop_ready(&mut self, block: Block) -> Option<QueuedReq> {
        if self.is_busy(block) {
            return None;
        }
        let q = self.pending.get_mut(&block)?;
        let req = q.pop_front();
        if q.is_empty() {
            self.pending.remove(&block);
        }
        req
    }

    /// Handles a `WritebackRace` report: re-queues the raced request at the
    /// *front* (it was logically first) and waits for the writeback —
    /// unless the writeback already arrived, in which case the block closes
    /// immediately.
    pub fn on_race(&mut self, block: Block, ex_owner: Cluster, epoch: u64, req: QueuedReq) {
        assert_eq!(
            self.reason(block),
            Some(BusyReason::AwaitClose),
            "race report for block {block} in unexpected state"
        );
        let q = self.pending.entry(block).or_default();
        q.push_front(req);
        self.total_queued += 1;
        self.max_queue_depth = self.max_queue_depth.max(q.len());
        if self.take_early(block, ex_owner, epoch).is_some() {
            self.close(block);
        } else {
            self.busy.insert(block, BusyReason::AwaitWriteback(ex_owner));
        }
    }

    /// Records an early event from `cluster` ending its ownership `epoch`.
    pub fn record_early(&mut self, block: Block, cluster: Cluster, epoch: u64, kind: EarlyKind) {
        self.early
            .entry(block)
            .or_default()
            .push((cluster, epoch, kind));
    }

    /// Consumes `cluster`'s early event for exactly `epoch`, if recorded.
    pub fn take_early(&mut self, block: Block, cluster: Cluster, epoch: u64) -> Option<EarlyKind> {
        if let Some(v) = self.early.get_mut(&block) {
            if let Some(pos) = v
                .iter()
                .position(|&(c, e, _)| c == cluster && e == epoch)
            {
                let (_, _, kind) = v.remove(pos);
                if v.is_empty() {
                    self.early.remove(&block);
                }
                return Some(kind);
            }
        }
        None
    }

    /// Parks a request whose *own cluster* is the recorded dirty owner: its
    /// writeback is in flight (the only way a cluster can request a block
    /// the directory says it owns), so the request waits for it directly —
    /// no forward needs to bounce.
    pub fn park_for_writeback(&mut self, block: Block, ex_owner: Cluster, req: QueuedReq) {
        assert!(
            !self.is_busy(block),
            "park_for_writeback on an already busy block"
        );
        self.busy.insert(block, BusyReason::AwaitWriteback(ex_owner));
        let q = self.pending.entry(block).or_default();
        q.push_front(req);
        self.total_queued += 1;
        self.max_queue_depth = self.max_queue_depth.max(q.len());
    }

    /// Handles an arriving writeback. Returns `true` if the block is now
    /// open (the caller should drain with [`Self::pop_ready`]).
    pub fn on_writeback(&mut self, block: Block, src: Cluster, epoch: u64) -> bool {
        match self.reason(block) {
            None => true,
            Some(BusyReason::AwaitWriteback(owner)) => {
                if owner == src {
                    self.close(block);
                    true
                } else {
                    // A different cluster's (stale-epoch) writeback; the
                    // one we are waiting for is still in flight.
                    self.record_early(block, src, epoch, EarlyKind::Writeback);
                    false
                }
            }
            Some(BusyReason::AwaitClose) => {
                // The in-flight transaction's closing message may record
                // this very cluster as the new owner (or its forward may
                // bounce): remember the writeback so either resolution can
                // consume it.
                self.record_early(block, src, epoch, EarlyKind::Writeback);
                false
            }
            Some(BusyReason::AwaitFlushAcks) => {
                // A flush target's dirty copy came back as an ordinary
                // writeback; the flush-ack accounting still governs.
                false
            }
            Some(BusyReason::AwaitHomeWrite) => {
                // A stale writeback cannot close the home's own pending
                // write; completion does.
                false
            }
        }
    }

    /// (max queue depth, total queued) — reported by the pending-queue
    /// ablation bench.
    pub fn queue_metrics(&self) -> (usize, u64) {
        (self.max_queue_depth, self.total_queued)
    }

    /// Number of currently busy blocks.
    pub fn busy_blocks(&self) -> usize {
        self.busy.len()
    }

    /// Number of requests parked behind `block`.
    pub fn pending_len(&self, block: Block) -> usize {
        self.pending.get(&block).map_or(0, |q| q.len())
    }

    /// Snapshot of busy blocks and queue depths (deadlock diagnostics).
    pub fn debug_state(&self) -> Vec<(Block, BusyReason, usize)> {
        self.busy
            .iter()
            .map(|(&b, &r)| (b, r, self.pending.get(&b).map_or(0, |q| q.len())))
            .collect()
    }

    /// Hashes the serializer's protocol-visible state into `h` in a
    /// canonical (block-sorted) order for model-checking state digests.
    /// Queue *order* within a block is preserved — it determines the next
    /// grant — while the `max_queue_depth` / `total_queued` ablation
    /// metrics are deliberately excluded (they differ between paths that
    /// reach the same protocol state and would defeat state deduplication).
    pub fn fingerprint<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        let mut busy: Vec<(Block, BusyReason)> =
            self.busy.iter().map(|(&b, &r)| (b, r)).collect();
        busy.sort_unstable_by_key(|e| e.0);
        busy.hash(h);
        let mut blocks: Vec<Block> = self
            .pending
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&b, _)| b)
            .collect();
        blocks.sort_unstable();
        for b in blocks {
            b.hash(h);
            for req in &self.pending[&b] {
                req.hash(h);
            }
        }
        0xa2u8.hash(h); // section separator
        let mut early: Vec<Block> = self
            .early
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&b, _)| b)
            .collect();
        early.sort_unstable();
        for b in early {
            b.hash(h);
            self.early[&b].hash(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: QueuedReq = QueuedReq {
        requester: 3,
        block: 1,
        is_write: false,
    };
    const W: QueuedReq = QueuedReq {
        requester: 5,
        block: 1,
        is_write: true,
    };

    #[test]
    fn queue_and_drain_in_order() {
        let mut s = HomeSerializer::new();
        s.mark_busy(1, BusyReason::AwaitClose);
        s.queue(1, R);
        s.queue(1, W);
        assert_eq!(s.pop_ready(1), None, "busy blocks do not drain");
        s.close(1);
        assert_eq!(s.pop_ready(1), Some(R));
        assert_eq!(s.pop_ready(1), Some(W));
        assert_eq!(s.pop_ready(1), None);
    }

    #[test]
    fn race_then_writeback() {
        let mut s = HomeSerializer::new();
        s.mark_busy(2, BusyReason::AwaitClose);
        s.on_race(2, 7, 1, W);
        assert_eq!(s.reason(2), Some(BusyReason::AwaitWriteback(7)));
        assert!(s.on_writeback(2, 7, 1));
        assert_eq!(s.pop_ready(2), Some(W), "raced request replays first");
    }

    #[test]
    fn writeback_then_race() {
        let mut s = HomeSerializer::new();
        s.mark_busy(2, BusyReason::AwaitClose);
        assert!(!s.on_writeback(2, 7, 1), "early writeback parks");
        assert!(s.is_busy(2));
        s.on_race(2, 7, 1, W);
        assert!(!s.is_busy(2), "race resolves against the early writeback");
        assert_eq!(s.pop_ready(2), Some(W));
    }

    #[test]
    fn raced_request_goes_ahead_of_queued_ones() {
        let mut s = HomeSerializer::new();
        s.mark_busy(9, BusyReason::AwaitClose);
        s.queue(9, R);
        s.on_race(9, 7, 1, W);
        assert!(s.on_writeback(9, 7, 1));
        assert_eq!(s.pop_ready(9), Some(W));
        assert_eq!(s.pop_ready(9), Some(R));
    }

    #[test]
    fn writeback_to_idle_block_is_open() {
        let mut s = HomeSerializer::new();
        assert!(s.on_writeback(7, 3, 1));
    }

    #[test]
    fn flush_acks_ignore_stray_writebacks() {
        let mut s = HomeSerializer::new();
        s.mark_busy(4, BusyReason::AwaitFlushAcks);
        assert!(!s.on_writeback(4, 3, 1));
        assert!(s.is_busy(4));
    }

    #[test]
    fn metrics_track_depth() {
        let mut s = HomeSerializer::new();
        s.mark_busy(1, BusyReason::AwaitClose);
        s.queue(1, R);
        s.queue(1, W);
        s.queue(1, R);
        let (depth, total) = s.queue_metrics();
        assert_eq!(depth, 3);
        assert_eq!(total, 3);
    }

    #[test]
    #[should_panic(expected = "already busy")]
    fn double_busy_panics() {
        let mut s = HomeSerializer::new();
        s.mark_busy(1, BusyReason::AwaitClose);
        s.mark_busy(1, BusyReason::AwaitClose);
    }
}
