//! Generational slab arena for in-flight protocol messages.
//!
//! The machine's event queue used to carry whole [`Msg`] values inside
//! every `Deliver` event. A [`Msg`] is ~40 bytes; the queue's ring buckets
//! therefore shuffled 40-byte payloads around on every schedule/pop. The
//! arena moves the payload into a slab indexed by a copyable 8-byte
//! [`MsgRef`], so the hot event type shrinks to a couple of words and the
//! slab's free-list recycles slots instead of growing the queue entries.
//!
//! Handles are **generational**: each slot carries a generation counter
//! that is bumped when the slot is freed, and a [`MsgRef`] embeds the
//! generation it was allocated under. A stale handle — one that outlived
//! a [`MsgArena::take`] of its slot, even after the slot was reused —
//! therefore resolves to `None` rather than aliasing another message's
//! payload. Under fault injection (duplicate deliveries, reordering) this
//! is what turns a would-be use-after-free into a detectable protocol
//! error.

use crate::msg::Msg;

/// A copyable handle to a message parked in a [`MsgArena`].
///
/// `idx` addresses the slot, `gen` is the slot generation at allocation
/// time; the pair is only valid until the message is taken out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MsgRef {
    idx: u32,
    generation: u32,
}

impl MsgRef {
    /// The slot index (diagnostic use only — slots are recycled).
    #[inline]
    pub fn index(self) -> u32 {
        self.idx
    }

    /// The slot generation this handle was allocated under.
    #[inline]
    pub fn generation(self) -> u32 {
        self.generation
    }
}

#[derive(Clone)]
struct Slot {
    /// Bumped on every free; a handle is live iff its generation matches.
    generation: u32,
    /// `Some` while a message is parked here.
    msg: Option<Msg>,
}

/// A slab of in-flight messages with free-list reuse and generational
/// use-after-free detection. See the module docs.
#[derive(Clone, Default)]
pub struct MsgArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    /// Lifetime allocation count (diagnostics).
    allocs: u64,
    /// High-water mark of simultaneously live messages.
    high_water: usize,
}

impl MsgArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena with room for `cap` messages before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        MsgArena {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            ..Self::default()
        }
    }

    /// Parks `msg` and returns its handle. Reuses a freed slot when one is
    /// available (bumped generation), otherwise grows the slab.
    #[inline]
    pub fn alloc(&mut self, msg: Msg) -> MsgRef {
        self.allocs += 1;
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.msg.is_none(), "free-listed slot still occupied");
            slot.msg = Some(msg);
            return MsgRef {
                idx,
                generation: slot.generation,
            };
        }
        let idx = u32::try_from(self.slots.len()).expect("message arena exceeds u32 slots");
        self.slots.push(Slot {
            generation: 0,
            msg: Some(msg),
        });
        MsgRef { idx, generation: 0 }
    }

    /// Reads the message behind a live handle; `None` if the handle is
    /// stale (its message was already taken, whether or not the slot has
    /// been reused since).
    #[inline]
    pub fn get(&self, r: MsgRef) -> Option<&Msg> {
        let slot = self.slots.get(r.idx as usize)?;
        if slot.generation != r.generation {
            return None;
        }
        slot.msg.as_ref()
    }

    /// Removes and returns the message behind a live handle, freeing its
    /// slot (generation bumped, slot pushed on the free list). Stale
    /// handles return `None` and leave the arena untouched.
    #[inline]
    pub fn take(&mut self, r: MsgRef) -> Option<Msg> {
        let slot = self.slots.get_mut(r.idx as usize)?;
        if slot.generation != r.generation {
            return None;
        }
        let msg = slot.msg.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(r.idx);
        self.live -= 1;
        Some(msg)
    }

    /// Messages currently parked.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// True when nothing is parked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Slots ever created (slab footprint).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Lifetime allocation count.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// High-water mark of simultaneously live messages.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgKind;

    fn msg(src: usize, dst: usize, block: u64) -> Msg {
        Msg {
            src,
            dst,
            kind: MsgKind::ReadReq { block },
        }
    }

    #[test]
    fn alloc_get_take_round_trip() {
        let mut a = MsgArena::new();
        let r = a.alloc(msg(1, 2, 77));
        assert_eq!(a.live(), 1);
        assert_eq!(a.get(r).unwrap().dst, 2);
        let m = a.take(r).unwrap();
        assert_eq!(m.src, 1);
        assert!(a.is_empty());
        assert_eq!(a.high_water(), 1);
    }

    #[test]
    fn stale_handle_is_rejected_after_free() {
        let mut a = MsgArena::new();
        let r = a.alloc(msg(0, 1, 5));
        assert!(a.take(r).is_some());
        assert_eq!(a.get(r), None, "double read after take");
        assert_eq!(a.take(r), None, "double take");
    }

    /// The soundness property: a handle that outlives its slot's reuse
    /// must NOT alias the new occupant's payload.
    #[test]
    fn stale_handle_never_aliases_reused_slot() {
        let mut a = MsgArena::new();
        let old = a.alloc(msg(3, 4, 10));
        assert!(a.take(old).is_some());
        // Slot is recycled for a different message...
        let new = a.alloc(msg(8, 9, 99));
        assert_eq!(new.index(), old.index(), "free list reuses the slot");
        assert_ne!(new.generation(), old.generation());
        // ...and the stale handle still resolves to nothing.
        assert_eq!(a.get(old), None);
        assert_eq!(a.take(old), None);
        assert_eq!(a.get(new).unwrap().dst, 9);
    }

    #[test]
    fn free_list_bounds_slab_growth() {
        let mut a = MsgArena::new();
        for i in 0..1000u64 {
            let r = a.alloc(msg(0, 1, i));
            assert_eq!(a.take(r).unwrap().kind, MsgKind::ReadReq { block: i });
        }
        assert_eq!(a.capacity(), 1, "serial churn reuses one slot");
        assert_eq!(a.allocs(), 1000);
        assert_eq!(a.high_water(), 1);
    }
}
