//! Directory-based synchronization: queue locks and barriers.
//!
//! §7 of the paper: "In DASH, the directory bit vectors are also used to
//! keep track of processors queued for a lock. In the case of the full bit
//! vector ... when a lock is released, it is granted to exactly one of the
//! waiting nodes. Once we switch to a coarse vector scheme ... we have to
//! release all processors in that region and let them try to regain the
//! lock."
//!
//! [`LockManager`] reuses [`scd_core::DirEntry`] as the waiter queue, so the
//! grant imprecision falls out of the directory representation for free.
//! Barriers are modeled as a centralized arrival counter at a home cluster.

use std::collections::HashMap;

use scd_core::{DirEntry, Scheme};

use crate::msg::Cluster;

/// Outcome of a lock acquire at its home.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock was free: granted to the requester.
    Granted,
    /// Held: the requester was queued in the waiter vector.
    Queued,
    /// The requesting cluster already holds the lock — a duplicate request
    /// (possible when a coarse-vector retry crosses an in-flight acquire).
    /// The home ignores it; intra-cluster handoff covers local waiters.
    AlreadyHeld,
}

/// Outcome of a lock release at its home.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnlockOutcome {
    /// No waiters: the lock is now free.
    Free,
    /// Precise waiter representation: granted directly to one waiter.
    GrantTo(Cluster),
    /// Imprecise (coarse/broadcast) representation: these clusters must
    /// retry their acquire; one will win, the rest re-queue.
    RetryRegion(Vec<Cluster>),
}

#[derive(Clone, Debug)]
struct LockState {
    holder: Option<Cluster>,
    waiters: DirEntry,
}

/// Per-home lock bookkeeping.
#[derive(Clone, Debug)]
pub struct LockManager {
    scheme: Scheme,
    clusters: usize,
    locks: HashMap<u32, LockState>,
    /// Grants issued (precise or via retry-win).
    grants: u64,
    /// Retry messages a coarse waiter vector caused.
    retries: u64,
}

impl LockManager {
    /// Creates a manager whose waiter vectors use `scheme`.
    ///
    /// `Dir_i NB` cannot queue waiters (evicting a waiter would lose it
    /// forever), so it falls back to a full-vector waiter representation —
    /// the paper only discusses full-vector and coarse-vector lock queues.
    pub fn new(scheme: Scheme, clusters: usize) -> Self {
        let scheme = match scheme {
            Scheme::LimitedNB { .. } => Scheme::FullVector,
            s => s,
        };
        LockManager {
            scheme,
            clusters,
            locks: HashMap::new(),
            grants: 0,
            retries: 0,
        }
    }

    fn state(&mut self, lock: u32) -> &mut LockState {
        let (scheme, clusters) = (self.scheme, self.clusters);
        self.locks.entry(lock).or_insert_with(|| LockState {
            holder: None,
            waiters: DirEntry::new(scheme, clusters),
        })
    }

    /// Processes an acquire from `cluster`.
    pub fn acquire(&mut self, lock: u32, cluster: Cluster) -> LockOutcome {
        let st = self.state(lock);
        if st.holder == Some(cluster) {
            LockOutcome::AlreadyHeld
        } else if st.holder.is_none() {
            st.holder = Some(cluster);
            self.grants += 1;
            LockOutcome::Granted
        } else {
            // NB-eviction is unreachable: the scheme was remapped in new().
            let _ = st.waiters.add_sharer(cluster as u16);
            LockOutcome::Queued
        }
    }

    /// Processes a release from `cluster`.
    ///
    /// # Panics
    /// If `cluster` does not hold the lock — that is an application bug the
    /// simulator should surface loudly.
    pub fn release(&mut self, lock: u32, cluster: Cluster) -> UnlockOutcome {
        let st = self.state(lock);
        assert_eq!(
            st.holder,
            Some(cluster),
            "cluster {cluster} released lock {lock} it does not hold"
        );
        st.holder = None;
        if st.waiters.is_empty() {
            return UnlockOutcome::Free;
        }
        let precise = st.waiters.is_precise();
        let group = st.waiters.take_first_waiter_group();
        if precise {
            let w = group.first().expect("non-empty waiter set") as Cluster;
            st.holder = Some(w);
            self.grants += 1;
            UnlockOutcome::GrantTo(w)
        } else {
            // Coarse mode: the lock stays free; region members race to
            // re-acquire. Members that never actually waited simply ignore
            // the retry at the machine layer.
            let members: Vec<Cluster> = group.iter().map(|n| n as Cluster).collect();
            self.retries += members.len() as u64;
            UnlockOutcome::RetryRegion(members)
        }
    }

    /// Whether `cluster` currently holds `lock`.
    pub fn holds(&self, lock: u32, cluster: Cluster) -> bool {
        self.locks
            .get(&lock)
            .is_some_and(|s| s.holder == Some(cluster))
    }

    /// (grants issued, retry messages caused) — for the lock ablation bench.
    pub fn metrics(&self) -> (u64, u64) {
        (self.grants, self.retries)
    }

    /// Hashes holder and waiter state into `h` in canonical (lock-sorted)
    /// order for model-checking state digests; the grant/retry metrics are
    /// excluded so equal protocol states reached by different paths merge.
    pub fn fingerprint<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        let mut ids: Vec<u32> = self
            .locks
            .iter()
            .filter(|(_, s)| s.holder.is_some() || !s.waiters.is_empty())
            .map(|(&l, _)| l)
            .collect();
        ids.sort_unstable();
        for l in ids {
            let st = &self.locks[&l];
            (l, st.holder).hash(h);
            st.waiters.hash(h);
        }
    }
}

/// A centralized barrier counter at the barrier's home cluster.
#[derive(Clone, Debug, Default)]
pub struct BarrierManager {
    arrivals: HashMap<u32, Vec<Cluster>>,
}

impl BarrierManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `cluster`'s arrival at `barrier` with `participants` total
    /// parties. Returns the release list once everyone arrived.
    pub fn arrive(
        &mut self,
        barrier: u32,
        cluster: Cluster,
        participants: usize,
    ) -> Option<Vec<Cluster>> {
        let v = self.arrivals.entry(barrier).or_default();
        debug_assert!(
            !v.contains(&cluster),
            "cluster {cluster} arrived twice at barrier {barrier}"
        );
        v.push(cluster);
        if v.len() == participants {
            Some(self.arrivals.remove(&barrier).expect("just inserted"))
        } else {
            None
        }
    }

    /// Clusters currently parked at `barrier`.
    pub fn waiting(&self, barrier: u32) -> usize {
        self.arrivals.get(&barrier).map_or(0, Vec::len)
    }

    /// Hashes arrival state into `h` in canonical (barrier-sorted) order
    /// for model-checking state digests. Arrival *order* within a barrier
    /// is preserved — it fixes the release-message order.
    pub fn fingerprint<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        let mut ids: Vec<u32> = self
            .arrivals
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&b, _)| b)
            .collect();
        ids.sort_unstable();
        for b in ids {
            b.hash(h);
            self.arrivals[&b].hash(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_lock() {
        let mut lm = LockManager::new(Scheme::FullVector, 32);
        assert_eq!(lm.acquire(0, 5), LockOutcome::Granted);
        assert!(lm.holds(0, 5));
        assert_eq!(lm.release(0, 5), UnlockOutcome::Free);
        assert!(!lm.holds(0, 5));
    }

    #[test]
    fn full_vector_grants_one_waiter_at_a_time() {
        let mut lm = LockManager::new(Scheme::FullVector, 32);
        lm.acquire(0, 1);
        assert_eq!(lm.acquire(0, 2), LockOutcome::Queued);
        assert_eq!(lm.acquire(0, 3), LockOutcome::Queued);
        match lm.release(0, 1) {
            UnlockOutcome::GrantTo(w) => {
                assert_eq!(w, 2, "lowest-numbered waiter first");
                assert!(lm.holds(0, 2));
            }
            o => panic!("unexpected {o:?}"),
        }
        assert_eq!(lm.release(0, 2), UnlockOutcome::GrantTo(3));
        assert_eq!(lm.release(0, 3), UnlockOutcome::Free);
    }

    #[test]
    fn coarse_vector_releases_region() {
        // Dir1CV4: one pointer, then regions of 4.
        let mut lm = LockManager::new(Scheme::dir_cv(1, 4), 32);
        lm.acquire(7, 0);
        lm.acquire(7, 5); // pointer
        lm.acquire(7, 6); // overflow -> coarse: region {4..8}
        match lm.release(7, 0) {
            UnlockOutcome::RetryRegion(members) => {
                assert_eq!(members, vec![4, 5, 6, 7]);
                // Lock is free: first retryer wins.
                assert_eq!(lm.acquire(7, 6), LockOutcome::Granted);
                assert_eq!(lm.acquire(7, 5), LockOutcome::Queued);
            }
            o => panic!("unexpected {o:?}"),
        }
        let (grants, retries) = lm.metrics();
        assert_eq!(grants, 2, "initial grant + retry-winner grant");
        assert_eq!(retries, 4, "one retry message per region member");
    }

    #[test]
    fn nb_scheme_falls_back_to_precise_waiters() {
        let mut lm = LockManager::new(Scheme::dir_nb(1), 32);
        lm.acquire(0, 1);
        lm.acquire(0, 2);
        lm.acquire(0, 3); // would evict under NB; must not lose a waiter
        assert_eq!(lm.release(0, 1), UnlockOutcome::GrantTo(2));
        assert_eq!(lm.release(0, 2), UnlockOutcome::GrantTo(3));
        assert_eq!(lm.release(0, 3), UnlockOutcome::Free);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn foreign_release_panics() {
        let mut lm = LockManager::new(Scheme::FullVector, 8);
        lm.acquire(0, 1);
        lm.release(0, 2);
    }

    #[test]
    fn barrier_releases_everyone_at_once() {
        let mut bm = BarrierManager::new();
        assert_eq!(bm.arrive(0, 1, 3), None);
        assert_eq!(bm.arrive(0, 2, 3), None);
        assert_eq!(bm.waiting(0), 2);
        let released = bm.arrive(0, 0, 3).expect("all arrived");
        assert_eq!(released, vec![1, 2, 0]);
        assert_eq!(bm.waiting(0), 0);
        // The barrier is reusable for the next episode.
        assert_eq!(bm.arrive(0, 1, 2), None);
        assert!(bm.arrive(0, 2, 2).is_some());
    }
}
