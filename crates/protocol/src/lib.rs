//! # scd-protocol — the DASH-style directory coherence protocol
//!
//! Building blocks of the inter-cluster protocol described in §2 of the
//! paper:
//!
//! * [`msg`] — the protocol message vocabulary and its mapping onto the
//!   paper's four traffic classes (request / reply / invalidation /
//!   acknowledgement);
//! * [`arena`] — the generational slab arena in-flight messages are parked
//!   in while they traverse the simulated network (8-byte [`MsgRef`]
//!   handles in the event queue instead of whole messages, with
//!   use-after-free detection via slot generations);
//! * [`rac`] — the Remote Access Cache: per-cluster bookkeeping of
//!   outstanding requests (MSHRs) and expected invalidation
//!   acknowledgements, including the replacement acknowledgements a sparse
//!   directory generates (§7);
//! * [`serializer`] — per-block transaction serialization at the home
//!   cluster: while a forwarded transaction or sparse replacement is in
//!   flight, later requests for the block queue (in place of DASH's
//!   NAK-and-retry; same message counts on the common paths);
//! * [`sync`] — directory-based queue locks (with the §7 coarse-vector
//!   grant-to-region behaviour) and centralized barriers.
//!
//! The flows themselves (who sends what when) are driven by `scd-machine`,
//! which owns the event loop, caches and network; this crate keeps every
//! state machine that can be tested in isolation.

#![warn(missing_docs)]

pub mod arena;
pub mod msg;
pub mod rac;
pub mod serializer;
pub mod sync;

pub use arena::{MsgArena, MsgRef};
pub use msg::{Msg, MsgKind};
pub use rac::{Mshr, MshrKind, Rac};
pub use serializer::{BusyReason, EarlyKind, HomeSerializer, QueuedReq};
pub use sync::{BarrierManager, LockManager, LockOutcome, UnlockOutcome};
