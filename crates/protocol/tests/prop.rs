//! Property tests for the protocol bookkeeping state machines.

use proptest::prelude::*;
use scd_protocol::rac::{MshrKind, Rac};
use scd_protocol::{BarrierManager, BusyReason, HomeSerializer, LockManager, LockOutcome,
    QueuedReq, UnlockOutcome};
use scd_core::Scheme;
use std::collections::HashSet;

proptest! {
    #[test]
    fn serializer_never_loses_or_duplicates_requests(
        reqs in prop::collection::vec((0u64..4, 0usize..8, any::<bool>()), 1..60),
    ) {
        // Queue a batch of requests behind busy blocks, then close and
        // drain: every request must come back exactly once, in order.
        let mut ser = HomeSerializer::new();
        for b in 0..4u64 {
            ser.mark_busy(b, BusyReason::AwaitClose);
        }
        for &(b, requester, is_write) in &reqs {
            ser.queue(b, QueuedReq { requester, block: b, is_write });
        }
        let mut drained: Vec<(u64, usize, bool)> = Vec::new();
        for b in 0..4u64 {
            ser.close(b);
            while let Some(r) = ser.pop_ready(b) {
                drained.push((b, r.requester, r.is_write));
            }
        }
        let mut expected: Vec<(u64, usize, bool)> = Vec::new();
        for b in 0..4u64 {
            for &(bb, requester, w) in &reqs {
                if bb == b {
                    expected.push((b, requester, w));
                }
            }
        }
        prop_assert_eq!(drained, expected);
    }

    #[test]
    fn serializer_race_resolution_is_order_insensitive(first_race in any::<bool>()) {
        // The race report and the writeback may arrive in either order; the
        // parked request must drain exactly once either way.
        let mut ser = HomeSerializer::new();
        ser.mark_busy(9, BusyReason::AwaitClose);
        let req = QueuedReq { requester: 2, block: 9, is_write: true };
        if first_race {
            ser.on_race(9, 7, 1, req);
            prop_assert!(ser.is_busy(9));
            prop_assert!(ser.on_writeback(9, 7, 1));
        } else {
            prop_assert!(!ser.on_writeback(9, 7, 1));
            ser.on_race(9, 7, 1, req);
            prop_assert!(!ser.is_busy(9));
        }
        prop_assert_eq!(ser.pop_ready(9), Some(req));
        prop_assert_eq!(ser.pop_ready(9), None);
    }

    #[test]
    fn rac_write_completion_requires_exactly_all_acks(
        acks in 0u32..12,
        reply_position in 0u32..13,
    ) {
        // Interleave the ownership reply at an arbitrary point in the ack
        // stream: completion must happen exactly when both the reply and
        // `acks` acknowledgements are in.
        let reply_position = reply_position.min(acks);
        let mut rac = Rac::new();
        rac.start(5, MshrKind::Write, 0);
        let mut completed = false;
        for i in 0..=acks {
            if i == reply_position {
                let done = rac.write_reply(5, acks, 7).is_some();
                prop_assert_eq!(done, acks == 0 || i == acks, "reply at {}", i);
                completed |= done;
            }
            if i < acks {
                let done = rac.inval_ack(5).is_some();
                prop_assert_eq!(
                    done,
                    i + 1 == acks && reply_position <= i + 1 && !completed
                        && reply_position != acks,
                    "ack {}", i
                );
                completed |= done;
            }
        }
        if !completed && reply_position == acks && acks > 0 {
            // Reply arrives last.
            completed = rac.write_reply(5, acks, 7).is_some();
        }
        prop_assert!(completed, "write must eventually complete");
        prop_assert!(!rac.has_mshr(5));
    }

    #[test]
    fn lock_manager_mutual_exclusion_under_random_schedules(
        ops in prop::collection::vec((0usize..6, any::<bool>()), 1..200),
        scheme_idx in 0usize..3,
    ) {
        // Random acquire/release attempts from 6 clusters: the manager must
        // never report two holders, and every grant must go to a cluster
        // that asked.
        let scheme = [Scheme::FullVector, Scheme::dir_cv(1, 2), Scheme::dir_b(1)][scheme_idx];
        let mut lm = LockManager::new(scheme, 6);
        let mut holder: Option<usize> = None;
        let mut waiting: HashSet<usize> = HashSet::new();
        for (cl, acquire) in ops {
            if acquire {
                if holder == Some(cl) || waiting.contains(&cl) {
                    continue; // a cluster has at most one request in flight
                }
                match lm.acquire(0, cl) {
                    LockOutcome::Granted => {
                        prop_assert!(holder.is_none(), "grant while held");
                        holder = Some(cl);
                    }
                    LockOutcome::Queued => {
                        waiting.insert(cl);
                    }
                    LockOutcome::AlreadyHeld => unreachable!("guarded above"),
                }
            } else if holder == Some(cl) {
                match lm.release(0, cl) {
                    UnlockOutcome::Free => {
                        holder = None;
                    }
                    UnlockOutcome::GrantTo(next) => {
                        prop_assert!(waiting.remove(&next), "grant to non-waiter {next}");
                        holder = Some(next);
                    }
                    UnlockOutcome::RetryRegion(members) => {
                        // Retried members re-request immediately; the first
                        // *actual waiter* wins.
                        holder = None;
                        for m in members {
                            if waiting.contains(&m) {
                                match lm.acquire(0, m) {
                                    LockOutcome::Granted => {
                                        prop_assert!(holder.is_none());
                                        waiting.remove(&m);
                                        holder = Some(m);
                                    }
                                    LockOutcome::Queued => {}
                                    LockOutcome::AlreadyHeld => unreachable!(),
                                }
                            }
                        }
                    }
                }
            }
        }
        // Drain: releasing repeatedly must eventually free the lock.
        let mut guard = 0;
        while let Some(h) = holder {
            guard += 1;
            prop_assert!(guard < 100, "lock never drains");
            match lm.release(0, h) {
                UnlockOutcome::Free => holder = None,
                UnlockOutcome::GrantTo(next) => {
                    prop_assert!(waiting.remove(&next));
                    holder = Some(next);
                }
                UnlockOutcome::RetryRegion(members) => {
                    holder = None;
                    for m in members {
                        if waiting.remove(&m) && holder.is_none() {
                            if let LockOutcome::Granted = lm.acquire(0, m) {
                                holder = Some(m);
                            }
                        }
                    }
                }
            }
        }
        prop_assert!(waiting.is_empty() || holder.is_none());
    }

    #[test]
    fn barriers_release_exactly_once_with_all_members(
        n in 2usize..10,
        seed in any::<u64>(),
    ) {
        let mut bm = BarrierManager::new();
        let mut arrivals: Vec<usize> = (0..n).collect();
        // Deterministic shuffle from the seed.
        let mut rng = seed | 1;
        for i in (1..arrivals.len()).rev() {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            arrivals.swap(i, (rng as usize) % (i + 1));
        }
        let mut released = None;
        for (i, &c) in arrivals.iter().enumerate() {
            let r = bm.arrive(0, c, n);
            if i + 1 == n {
                released = r;
            } else {
                prop_assert!(r.is_none(), "early release");
            }
        }
        let released = released.expect("last arrival releases");
        let set: HashSet<usize> = released.into_iter().collect();
        prop_assert_eq!(set, arrivals.into_iter().collect::<HashSet<_>>());
    }
}
