//! The paper's own caveat, tested: "Since we simulate a 32 cluster
//! multiprocessor with 32 processors ... the cluster bus is underutilized.
//! In a real DASH system ... we consequently expect the performance
//! degradation due to an increased number of messages to be larger than
//! shown here" (§6.2).
//!
//! Re-runs the Figure 7–10 scheme comparison with mesh link contention
//! enabled: extra messages now cost queueing time, so the broadcast and
//! non-broadcast penalties widen exactly as predicted.

use bench::{run_app_with, scheme_suite};
use scd_apps::suite;
use scd_machine::MachineConfig;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let occupancy: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let apps = suite(32, 0xD45B, scale);
    println!(
        "Scheme comparison with mesh link contention (occupancy {occupancy} cycles/link):\n\
         normalized execution time, Full Vector = 100\n"
    );
    println!(
        "{:<12} {:<14} {:>12} {:>12} {:>12}",
        "app", "scheme", "latency-only", "contended", "widening"
    );
    let mut csv = String::from("app,scheme,free_cycles,contended_cycles,free_norm,cont_norm\n");
    for app in &apps {
        let mut base_free = 0u64;
        let mut base_cong = 0u64;
        for (name, scheme) in scheme_suite() {
            let free = run_app_with(app, MachineConfig::paper_32().with_scheme(scheme));
            let mut cfg = MachineConfig::paper_32().with_scheme(scheme);
            cfg.link_occupancy = Some(occupancy);
            let cong = run_app_with(app, cfg);
            if base_free == 0 {
                base_free = free.cycles;
                base_cong = cong.cycles;
            }
            let nf = free.cycles as f64 / base_free as f64 * 100.0;
            let nc = cong.cycles as f64 / base_cong as f64 * 100.0;
            println!(
                "{:<12} {:<14} {:>12.1} {:>12.1} {:>11.1}pp",
                app.name,
                name,
                nf,
                nc,
                nc - nf
            );
            csv.push_str(&format!(
                "{},{},{},{},{:.4},{:.4}\n",
                app.name, name, free.cycles, cong.cycles, nf, nc
            ));
        }
        println!();
    }
    bench::write_results("ablation_contention.csv", &csv);
}
