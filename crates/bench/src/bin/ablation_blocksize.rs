//! §3.1's remark, quantified: "one way of reducing the overhead of
//! directory memory is to increase the cache block size. Beyond a certain
//! point, this is not a very practical approach because ... increasing the
//! block size increases the chances of false-sharing and may significantly
//! increase the coherence traffic."
//!
//! Sweeps the coherence block size on MP3D (particle records are 32 B, so
//! larger blocks glue unrelated particles together) and LocusRoute (cost
//! cells of neighbouring tracks share blocks).

use bench::run_app_with;
use scd_apps::{mp3d, locusroute, LocusRouteParams, Mp3dParams};
use scd_core::{overhead, DirectoryChoice, MachineSpec, Scheme};
use scd_machine::MachineConfig;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let apps = [
        mp3d(&Mp3dParams::scaled(scale), 32, 0xD45B),
        locusroute(&LocusRouteParams::scaled(scale), 32, 0xD45B),
    ];
    let mut csv =
        String::from("app,block_bytes,cycles,invalidations,total_traffic,dir_overhead\n");
    for app in &apps {
        println!("Block-size sweep, {} (Dir32):", app.name);
        println!(
            "{:>7} {:>10} {:>12} {:>12} {:>18}",
            "block", "cycles", "inval msgs", "total msgs", "dir overhead"
        );
        for block in [16u64, 32, 64, 128] {
            let mut cfg = MachineConfig::paper_32();
            cfg.block_bytes = block;
            // Same cache capacities in bytes.
            cfg.l1_blocks = (64 << 10) / block as usize;
            cfg.l2_blocks = (256 << 10) / block as usize;
            let stats = run_app_with(app, cfg);
            let mut spec = MachineSpec::paper_defaults(32);
            spec.procs_per_cluster = 1;
            spec.block_bytes = block;
            let oh = overhead(
                &spec,
                &DirectoryChoice {
                    scheme: Scheme::FullVector,
                    sparsity: 1,
                },
            );
            println!(
                "{:>6}B {:>10} {:>12} {:>12} {:>17.2}%",
                block,
                stats.cycles,
                stats.traffic.get(scd_stats::MessageClass::Invalidation),
                stats.traffic.total(),
                oh.overhead * 100.0,
            );
            csv.push_str(&format!(
                "{},{},{},{},{},{:.4}\n",
                app.name,
                block,
                stats.cycles,
                stats.traffic.get(scd_stats::MessageClass::Invalidation),
                stats.traffic.total(),
                oh.overhead,
            ));
        }
        println!();
    }
    println!(
        "Directory overhead falls with block size, but false sharing drives\n\
         invalidation traffic up — the §3.1 trade-off."
    );
    bench::write_results("ablation_blocksize.csv", &csv);
}
