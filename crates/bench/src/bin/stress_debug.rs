//! Internal debugging harness: replays the randomized coherence stress from
//! the integration suite with per-block message tracing.
//!
//! Usage: `stress_debug <scheme-index 0..8> [trace-block]`, with
//! `BLOCKS`/`WR`/`SEED` environment overrides. Scheme indices follow the
//! order in the source. When a trace block is given, every protocol
//! message touching it is printed with its delivery time — invaluable for
//! reconstructing protocol interleavings.

use scd_machine::{Machine, MachineConfig};
use scd_sim::SimRng;
use scd_core::Scheme;
use scd_tango::{Op, ScriptProgram, ThreadProgram};

fn random_programs(procs: usize, ops_per_proc: usize, blocks: u64, write_ratio: f64, seed: u64) -> Vec<Box<dyn ThreadProgram>> {
    let mut root = SimRng::new(seed);
    (0..procs).map(|p| {
        let mut rng = root.fork(p as u64);
        let mut ops = Vec::with_capacity(ops_per_proc);
        for _ in 0..ops_per_proc {
            let addr = rng.below(blocks) * 16;
            if rng.chance(write_ratio) { ops.push(Op::Write(addr)); } else { ops.push(Op::Read(addr)); }
            if rng.chance(0.3) { ops.push(Op::Compute(rng.below(20))); }
        }
        Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>
    }).collect()
}

fn main() {
    let scheme_idx: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let trace: Option<u64> = std::env::args().nth(2).and_then(|s| s.parse().ok());
    let schemes = [
        Scheme::FullVector, Scheme::dir_b(3), Scheme::dir_nb(3), Scheme::dir_x(3),
        Scheme::dir_cv(3, 2), Scheme::dir_cv(1, 4), Scheme::dir_b(1), Scheme::dir_nb(1),
    ];
    let scheme = schemes[scheme_idx];
    eprintln!("scheme {scheme_idx}: {scheme:?}");
    let blocks: u64 = std::env::var("BLOCKS").ok().and_then(|s| s.parse().ok()).unwrap_or(24);
    let wr: f64 = std::env::var("WR").ok().and_then(|s| s.parse().ok()).unwrap_or(0.4);
    let seed: u64 = std::env::var("SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE);
    let mut cfg = MachineConfig::tiny(8).with_scheme(scheme);
    cfg.trace_block = trace;
    let programs = random_programs(cfg.processors(), 400, blocks, wr, seed);
    let stats = Machine::new(cfg, programs).run();
    eprintln!("ok: {} cycles {}", stats.cycles, stats.traffic);
}
