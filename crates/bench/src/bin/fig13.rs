//! Figure 13 — effect of sparse-directory associativity on message
//! traffic (LU, full bit vector): associativities {1, 2, 4} at size
//! factors {1, 2, 4}, normalized to the non-sparse run.

use bench::{run_app_with, sparse_config};
use scd_apps::{lu, LuParams};
use scd_core::{Replacement, Scheme};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let app = lu(
        &LuParams {
            n: (96.0 * scale).round().max(16.0) as usize,
            update_cost: 4,
        },
        32,
        0xD45B,
    );
    let base = run_app_with(
        &app,
        sparse_config(&app, Scheme::FullVector, 0, 4, Replacement::Random),
    );
    println!("Figure 13: effect of associativity in sparse directory (LU, Dir32)");
    println!("normalized message traffic (non-sparse = 100)\n");
    println!(
        "{:>12} {:>8} {:>8} {:>8}",
        "size factor", "assoc 1", "assoc 2", "assoc 4"
    );
    let mut csv = String::from("size_factor,assoc,traffic,norm_traffic,replacements\n");
    for factor in [1usize, 2, 4] {
        print!("{factor:>12}");
        for ways in [1usize, 2, 4] {
            let cfg = sparse_config(&app, Scheme::FullVector, factor, ways, Replacement::Random);
            let stats = run_app_with(&app, cfg);
            let norm = stats.traffic.total() as f64 / base.traffic.total() as f64 * 100.0;
            print!(" {norm:>8.1}");
            csv.push_str(&format!(
                "{},{},{},{:.4},{}\n",
                factor,
                ways,
                stats.traffic.total(),
                norm / 100.0,
                stats.sparse.map_or(0, |s| s.replacements),
            ));
        }
        println!();
    }
    bench::write_results("fig13.csv", &csv);
}
