//! §3.3 quantified: memory-based directories "can send invalidation
//! messages as fast as the network can accept them", while cache-based
//! linked-list (SCI-style) schemes unravel the sharing list serially.
//! Same applications, same schemeless full-vector directory, invalidation
//! delivery parallel vs serial.

use bench::run_app_with;
use scd_apps::suite;
use scd_machine::MachineConfig;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let apps = suite(32, 0xD45B, scale);
    println!("Serial (SCI-style) vs parallel invalidation delivery, Dir32:\n");
    println!(
        "{:<12} {:>12} {:>12} {:>9} {:>14}",
        "app", "parallel", "serial", "slowdown", "avg invals/ev"
    );
    let mut csv = String::from("app,parallel_cycles,serial_cycles,slowdown,avg_invals\n");
    for app in &apps {
        let par = run_app_with(app, MachineConfig::paper_32());
        let mut cfg = MachineConfig::paper_32();
        cfg.serial_invalidations = true;
        let ser = run_app_with(app, cfg);
        let slow = ser.cycles as f64 / par.cycles as f64;
        println!(
            "{:<12} {:>12} {:>12} {:>8.2}x {:>14.2}",
            app.name,
            par.cycles,
            ser.cycles,
            slow,
            par.invalidations.mean(),
        );
        csv.push_str(&format!(
            "{},{},{},{:.4},{:.3}\n",
            app.name,
            par.cycles,
            ser.cycles,
            slow,
            par.invalidations.mean()
        ));
    }
    println!(
        "\nThe slowdown tracks the invalidation fan-out: applications whose\n\
         writes hit widely shared data pay one round trip per sharer."
    );
    bench::write_results("ablation_sci.csv", &csv);
}
