//! Cross-validation of Figure 2: the Monte-Carlo invalidation model
//! (`scd_core::analysis`) vs the *full machine* running a controlled
//! wide-read synthetic workload with exactly `s` sharers per written
//! block.
//!
//! Both sides implement the same event definition (sharers drawn outside
//! {home, writer}; home-cluster copies excluded from network counts), so
//! the machine's measured invalidations-per-write must land on the model's
//! curve — a strong end-to-end consistency check between the analytical
//! and simulated halves of the repository.

use bench::run_app_with;
use scd_apps::{synth, SharingPattern, SynthParams};
use scd_core::analysis::average_invalidations;
use scd_core::Scheme;
use scd_machine::MachineConfig;

fn main() {
    let procs = 32;
    // One round over many fresh blocks: every block is written exactly
    // once, with its sharer set exactly as constructed (a second round
    // would leave the previous owner as an extra recorded sharer).
    let rounds = 1;
    let blocks = 512;
    let schemes: Vec<(&str, Scheme)> = vec![
        ("Dir32", Scheme::FullVector),
        ("Dir3B", Scheme::dir_b(3)),
        ("Dir3CV2", Scheme::dir_cv(3, 2)),
    ];
    println!(
        "Figure 2 cross-validation: Monte-Carlo model vs full-machine\n\
         measurement ({procs} procs, {blocks} blocks x {rounds} rounds per point)\n"
    );
    println!(
        "{:>8} {:>16} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "sharers", "", "Dir32", "", "Dir3B", "", "Dir3CV2", ""
    );
    println!(
        "{:>8} {:>16} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "", "model", "machine", "model", "machine", "model", "machine", ""
    );
    let mut csv = String::from("sharers,scheme,model,machine\n");
    for s in [1usize, 2, 3, 4, 6, 8, 12, 16, 24, 30] {
        let app = synth(
            &SynthParams {
                pattern: SharingPattern::WideRead { sharers: s },
                blocks,
                rounds,
            },
            procs,
            0xF162 + s as u64,
        );
        let mut row = format!("{s:>8}");
        for (name, scheme) in &schemes {
            let model = average_invalidations(*scheme, procs, s, 20_000, 0xF162);
            let stats = run_app_with(&app, MachineConfig::paper_32().with_scheme(*scheme));
            // Every write is one event; reads/barriers cause none under
            // these schemes (no NB, caches hold everything).
            let measured = stats.invalidations.mean();
            row.push_str(&format!(" {model:>9.2} {measured:>9.2}"));
            csv.push_str(&format!("{s},{name},{model:.4},{measured:.4}\n"));
        }
        println!("{row}");
    }
    println!(
        "\nModel and machine must agree: both implement the event model of\n\
         scd_core::analysis (sharers exclude home and writer; home copies\n\
         are invalidated over the local bus, not the network)."
    );
    bench::write_results("fig2_machine.csv", &csv);
}
