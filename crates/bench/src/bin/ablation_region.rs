//! Coarse-vector region-size ablation — the i/r trade-off DESIGN.md calls
//! out: with a fixed storage budget, more pointers mean coarser regions
//! (`r = ceil(P / (i * log2 P))`). Sweeps region size for fixed i = 3 and
//! the storage-derived pairs, on LocusRoute (the worst-case app for
//! extraneous invalidations) and LU.

use bench::run_app;
use scd_apps::{locusroute, lu, LocusRouteParams, LuParams};
use scd_core::Scheme;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let apps = [
        lu(&LuParams::scaled(scale), 32, 0xD45B),
        locusroute(&LocusRouteParams::scaled(scale), 32, 0xD45B),
    ];
    let schemes: Vec<(String, Scheme)> = vec![
        ("Dir32 (full)".into(), Scheme::FullVector),
        ("Dir3CV2".into(), Scheme::dir_cv(3, 2)),
        ("Dir3CV4".into(), Scheme::dir_cv(3, 4)),
        ("Dir3CV8".into(), Scheme::dir_cv(3, 8)),
        ("Dir3CV16".into(), Scheme::dir_cv(3, 16)),
        ("Dir3B (r=P)".into(), Scheme::dir_b(3)),
    ];
    let mut csv = String::from("app,scheme,cycles,invalidations,total_traffic\n");
    for app in &apps {
        println!("Region-size sweep, {}:", app.name);
        println!(
            "{:<14} {:>10} {:>14} {:>12} {:>10}",
            "scheme", "cycles", "invalidations", "total msgs", "vs full"
        );
        let mut base = None;
        for (name, scheme) in &schemes {
            let stats = run_app(app, *scheme);
            let b = base.get_or_insert(stats.traffic.total());
            println!(
                "{:<14} {:>10} {:>14} {:>12} {:>9.2}x",
                name,
                stats.cycles,
                stats.traffic.get(scd_stats::MessageClass::Invalidation),
                stats.traffic.total(),
                stats.traffic.total() as f64 / *b as f64,
            );
            csv.push_str(&format!(
                "{},{},{},{},{}\n",
                app.name,
                name,
                stats.cycles,
                stats.traffic.get(scd_stats::MessageClass::Invalidation),
                stats.traffic.total(),
            ));
        }
        println!();
    }
    bench::write_results("ablation_region.csv", &csv);
}
