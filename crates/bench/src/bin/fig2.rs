//! Figure 2 — average invalidation messages sent as a function of the
//! number of sharers, for 32 processors (2a) and 64 processors (2b).
//!
//! Monte-Carlo analysis over the directory-entry implementations in
//! `scd-core` (see `scd_core::analysis` for the precise event model).

use scd_core::analysis::invalidation_curve;
use scd_core::Scheme;

const EVENTS: usize = 20_000;
const SEED: u64 = 0xF162;

fn panel(p: usize, schemes: &[(&str, Scheme)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Figure 2 panel: {p} processors, {EVENTS} events/point");
    let curves: Vec<(&str, Vec<f64>)> = schemes
        .iter()
        .map(|(name, s)| (*name, invalidation_curve(*s, p, EVENTS, SEED)))
        .collect();
    let _ = write!(out, "{:>8}", "sharers");
    for (name, _) in &curves {
        let _ = write!(out, "{name:>12}");
    }
    let _ = writeln!(out);
    for s in 0..=p - 2 {
        let _ = write!(out, "{s:>8}");
        for (_, c) in &curves {
            let _ = write!(out, "{:>12.2}", c[s]);
        }
        let _ = writeln!(out);
    }
    out
}

fn csv(p: usize, schemes: &[(&str, Scheme)]) -> String {
    use std::fmt::Write as _;
    let curves: Vec<(&str, Vec<f64>)> = schemes
        .iter()
        .map(|(name, s)| (*name, invalidation_curve(*s, p, EVENTS, SEED)))
        .collect();
    let mut out = String::from("sharers");
    for (name, _) in &curves {
        let _ = write!(out, ",{name}");
    }
    out.push('\n');
    for s in 0..=p - 2 {
        let _ = write!(out, "{s}");
        for (_, c) in &curves {
            let _ = write!(out, ",{:.4}", c[s]);
        }
        out.push('\n');
    }
    out
}

fn chart(p: usize, schemes: &[(&str, Scheme)]) -> String {
    let curves: Vec<(&str, Vec<f64>)> = schemes
        .iter()
        .map(|(name, s)| (*name, invalidation_curve(*s, p, 2_000, SEED)))
        .collect();
    let refs: Vec<(&str, &[f64])> = curves
        .iter()
        .map(|(n, c)| (*n, c.as_slice()))
        .collect();
    scd_stats::render_chart(
        &format!("Average invalidations vs sharers ({p} processors)"),
        &refs,
        64,
        16,
    )
}

fn main() {
    // 2a: 32 processors — Dir3B, Dir3CV2, Dir (the paper's panel a legend).
    let a: Vec<(&str, Scheme)> = vec![
        ("Dir3B", Scheme::dir_b(3)),
        ("Dir3CV2", Scheme::dir_cv(3, 2)),
        ("Dir", Scheme::dir_n()),
    ];
    // 2b: 64 processors — adds Dir3X and uses region size 4.
    let b: Vec<(&str, Scheme)> = vec![
        ("Dir3B", Scheme::dir_b(3)),
        ("Dir3X", Scheme::dir_x(3)),
        ("Dir3CV4", Scheme::dir_cv(3, 4)),
        ("Dir", Scheme::dir_n()),
    ];
    println!("{}", chart(32, &a));
    println!("{}", chart(64, &b));
    let out_a = panel(32, &a);
    let out_b = panel(64, &b);
    println!("{out_a}");
    println!("{out_b}");
    bench::write_results("fig2a.csv", &csv(32, &a));
    bench::write_results("fig2b.csv", &csv(64, &b));
}
