//! Figures 3–6 — invalidation distributions of shared data for the
//! LocusRoute application under Dir32 (full vector), Dir3NB, Dir3B, and
//! Dir3CV2.
//!
//! Each write transaction at a directory is an invalidation event weighted
//! by the number of invalidation messages sent; `Dir_i NB` additionally
//! turns read-caused pointer evictions into size-1 events (§6.1).

use bench::run_app;
use scd_apps::{locusroute, LocusRouteParams};
use scd_core::Scheme;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let app = locusroute(&LocusRouteParams::scaled(scale), 32, 0xD45B);

    let figures = [
        ("Figure 3", "Dir32 (full bit vector)", Scheme::dir_n()),
        ("Figure 4", "Dir3NB", Scheme::dir_nb(3)),
        ("Figure 5", "Dir3B", Scheme::dir_b(3)),
        ("Figure 6", "Dir3CV2", Scheme::dir_cv(3, 2)),
    ];
    for (fig, name, scheme) in figures {
        let stats = run_app(&app, scheme);
        let h = &stats.invalidations;
        println!(
            "{}",
            h.render(
                &format!("{fig}: invalidation distribution, LocusRoute, {name}"),
                60
            )
        );
        println!(
            "  total invalidations: {}  (events {}, avg {:.2})\n",
            h.weight(),
            h.events(),
            h.mean()
        );
        let file = format!("{}.csv", fig.to_lowercase().replace(' ', ""));
        bench::write_results(&file, &h.to_csv());
    }
}
