//! Table 1 — sample machine configurations: cluster/processor counts,
//! memory and cache provisioning, directory scheme, and the resulting
//! directory memory overhead.

use scd_core::overhead::table1_rows;
use scd_stats::{render_table, Align};

fn main() {
    let rows = table1_rows();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.spec.clusters.to_string(),
                r.spec.processors().to_string(),
                format!("{}", r.spec.total_memory() >> 20),
                format!("{}", r.spec.total_cache() >> 20),
                r.spec.block_bytes.to_string(),
                r.label.clone(),
                format!("{:.1}%", r.report.overhead * 100.0),
            ]
        })
        .collect();
    let rendered = render_table(
        &[
            "clusters",
            "processors",
            "main memory (MB)",
            "cache (MB)",
            "block (B)",
            "directory scheme",
            "overhead",
        ],
        &[
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Left,
            Align::Right,
        ],
        &table,
    );
    println!("Table 1: sample machine configurations\n\n{rendered}");

    let mut csv = String::from(
        "clusters,processors,main_memory_mb,cache_mb,block_bytes,scheme,entry_bits,entries,overhead\n",
    );
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{:.4}\n",
            r.spec.clusters,
            r.spec.processors(),
            r.spec.total_memory() >> 20,
            r.spec.total_cache() >> 20,
            r.spec.block_bytes,
            r.label,
            r.report.entry_bits,
            r.report.entries,
            r.report.overhead,
        ));
    }
    bench::write_results("table1.csv", &csv);
}
