//! Quick end-to-end calibration: run every app on every scheme at a given
//! scale and print wall time, simulated cycles and traffic. Used to tune
//! problem sizes before the real experiments.

use bench::{run_app, scheme_suite, write_bench_json};
use scd_apps::suite;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let apps = suite(32, 0xD45B, scale);
    for app in &apps {
        println!(
            "== {} | ops={} refs={} reads={} writes={} sync={} shared={}KB",
            app.name,
            app.total_ops(),
            app.shared_refs(),
            app.reads(),
            app.writes(),
            app.sync_ops(),
            app.shared_bytes / 1024,
        );
        for (name, scheme) in scheme_suite() {
            let t0 = std::time::Instant::now();
            let stats = run_app(app, scheme);
            println!(
                "  {name:<14} cycles={:>9} wall={:>6.2}s  {}  inval_events={} avg_inv={:.2}",
                stats.cycles,
                t0.elapsed().as_secs_f64(),
                stats.traffic,
                stats.invalidations.events(),
                stats.invalidations.mean(),
            );
            write_bench_json(app, name, &stats);
        }
    }
}
