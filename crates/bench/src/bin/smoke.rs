//! Quick end-to-end calibration: run every app on every scheme at a given
//! scale and print wall time, simulated cycles and traffic. Used to tune
//! problem sizes before the real experiments.
//!
//! `smoke <scale> trajectory [jobs]` runs the perf-trajectory suite
//! instead: every app under `Dir4CV4`, full directory and sparse (size
//! factor 2, 4-way), writing `BENCH_<app>_dir4cv4[_sparse].json` bench
//! points with traffic-attribution sections. These are the baselines
//! `scd-report` compares against across PRs. The trajectory grid runs on
//! the parallel sweep engine (`bench::sweep`) — `jobs` defaults to all
//! hardware threads, and the results are byte-identical whatever the
//! thread count.

use bench::{run_app_attributed, scheme_suite, write_bench_json, SweepSpec};
use scd_apps::suite;

fn trajectory(scale: f64, jobs: usize) {
    let spec = SweepSpec::trajectory(scale);
    let outcome = bench::run_sweep(&spec, jobs);
    for run in &outcome.runs {
        let app = &outcome.apps[run.desc.app_idx];
        println!(
            "  {:<36} cycles={:>9} wall={:>6.2}s  {}  inval_events={} avg_inv={:.2}",
            run.desc.id,
            run.stats.cycles,
            run.wall_seconds,
            run.stats.traffic,
            run.stats.invalidations.events(),
            run.stats.invalidations.mean(),
        );
        write_bench_json(app, &run.desc.scheme_label, &run.stats, run.attribution.clone());
    }
    println!(
        "[trajectory: {} points in {:.2}s wall on {} jobs ({:.2}s serial-equivalent)]",
        outcome.runs.len(),
        outcome.wall_seconds,
        outcome.jobs,
        outcome.serial_seconds(),
    );
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    if std::env::args().nth(2).is_some_and(|s| s == "trajectory") {
        let jobs = std::env::args()
            .nth(3)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, usize::from)
            });
        trajectory(scale, jobs);
        return;
    }
    let apps = suite(32, 0xD45B, scale);
    for app in &apps {
        println!(
            "== {} | ops={} refs={} reads={} writes={} sync={} shared={}KB",
            app.name,
            app.total_ops(),
            app.shared_refs(),
            app.reads(),
            app.writes(),
            app.sync_ops(),
            app.shared_bytes / 1024,
        );
        for (name, scheme) in scheme_suite() {
            let cfg = scd_machine::MachineConfig::paper_32().with_scheme(scheme);
            let t0 = std::time::Instant::now();
            let (stats, attrib) = run_app_attributed(app, cfg);
            println!(
                "  {name:<14} cycles={:>9} wall={:>6.2}s  {}  inval_events={} avg_inv={:.2}",
                stats.cycles,
                t0.elapsed().as_secs_f64(),
                stats.traffic,
                stats.invalidations.events(),
                stats.invalidations.mean(),
            );
            write_bench_json(app, name, &stats, attrib);
        }
    }
}
