//! Quick end-to-end calibration: run every app on every scheme at a given
//! scale and print wall time, simulated cycles and traffic. Used to tune
//! problem sizes before the real experiments.
//!
//! `smoke <scale> trajectory` runs the perf-trajectory suite instead:
//! every app under `Dir4CV4`, full directory and sparse (size factor 2,
//! 4-way), writing `BENCH_<app>_dir4cv4[_sparse].json` bench points with
//! traffic-attribution sections. These are the baselines `scd-report`
//! compares against across PRs.

use bench::{run_app_attributed, scheme_suite, sparse_config, write_bench_json};
use scd_apps::suite;
use scd_core::{Replacement, Scheme};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let trajectory = std::env::args().nth(2).is_some_and(|s| s == "trajectory");
    let apps = suite(32, 0xD45B, scale);
    for app in &apps {
        println!(
            "== {} | ops={} refs={} reads={} writes={} sync={} shared={}KB",
            app.name,
            app.total_ops(),
            app.shared_refs(),
            app.reads(),
            app.writes(),
            app.sync_ops(),
            app.shared_bytes / 1024,
        );
        let points: Vec<(String, scd_machine::MachineConfig)> = if trajectory {
            let scheme = Scheme::dir_cv(4, 4);
            let name = scheme.name(32);
            vec![
                (
                    name.clone(),
                    scd_machine::MachineConfig::paper_32().with_scheme(scheme),
                ),
                (
                    format!("{name} Sparse"),
                    sparse_config(app, scheme, 2, 4, Replacement::Random),
                ),
            ]
        } else {
            scheme_suite()
                .into_iter()
                .map(|(name, scheme)| {
                    (
                        name.to_string(),
                        scd_machine::MachineConfig::paper_32().with_scheme(scheme),
                    )
                })
                .collect()
        };
        for (name, cfg) in points {
            let t0 = std::time::Instant::now();
            let (stats, attrib) = run_app_attributed(app, cfg);
            println!(
                "  {name:<14} cycles={:>9} wall={:>6.2}s  {}  inval_events={} avg_inv={:.2}",
                stats.cycles,
                t0.elapsed().as_secs_f64(),
                stats.traffic,
                stats.invalidations.events(),
                stats.invalidations.mean(),
            );
            write_bench_json(app, &name, &stats, attrib);
        }
    }
}
