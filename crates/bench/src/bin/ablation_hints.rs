//! Replacement-hint ablation: silently evicted clean copies leave stale
//! pointers in the directory, which draw extraneous invalidations on later
//! writes. Hints un-record them at the cost of one message per clean
//! eviction. Run on scaled caches (where evictions are frequent) to expose
//! the trade-off.

use bench::{run_app_with, sparse_config};
use scd_apps::{locusroute, lu, LocusRouteParams, LuParams};
use scd_core::{Replacement, Scheme};
use scd_stats::MessageClass::*;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let apps = [
        lu(
            &LuParams {
                n: (96.0 * scale).round().max(16.0) as usize,
                update_cost: 4,
            },
            32,
            0xD45B,
        ),
        locusroute(&LocusRouteParams::scaled(scale), 32, 0xD45B),
    ];
    let mut csv = String::from("app,hints,cycles,requests,invalidations,acks,total\n");
    for app in &apps {
        println!("Replacement hints, {} (Dir32, scaled caches):", app.name);
        println!(
            "{:<10} {:>10} {:>10} {:>12} {:>10} {:>10}",
            "hints", "cycles", "requests", "inval msgs", "acks", "total"
        );
        for hints in [false, true] {
            // Scaled caches (size factor 0 = complete directory) so clean
            // evictions actually occur.
            let mut cfg = sparse_config(app, Scheme::FullVector, 0, 4, Replacement::Random);
            cfg.replacement_hints = hints;
            let stats = run_app_with(app, cfg);
            println!(
                "{:<10} {:>10} {:>10} {:>12} {:>10} {:>10}",
                if hints { "on" } else { "off" },
                stats.cycles,
                stats.traffic.get(Request),
                stats.traffic.get(Invalidation),
                stats.traffic.get(Acknowledgement),
                stats.traffic.total(),
            );
            csv.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                app.name,
                hints,
                stats.cycles,
                stats.traffic.get(Request),
                stats.traffic.get(Invalidation),
                stats.traffic.get(Acknowledgement),
                stats.traffic.total(),
            ));
        }
        println!();
    }
    println!(
        "Hints cut invalidations+acks at the price of one request-class\n\
         message per clean eviction — rarely a win in total messages, which\n\
         is why DASH-class machines leave them optional."
    );
    bench::write_results("ablation_hints.csv", &csv);
}
