//! §7 synchronization ablation — directory-based queue locks.
//!
//! "In DASH, the directory bit vectors are also used to keep track of
//! processors queued for a lock... Once we switch to a coarse vector
//! scheme... we have to release all processors in that region and let them
//! try to regain the lock."
//!
//! A contended-lock microbenchmark measures how grant precision degrades
//! with the waiter-vector representation: grants stay constant, but coarse
//! vectors add retry messages, and broadcast waiter-vectors behave like a
//! global wake-up (the hot spot the paper says queue locks avoid).

use scd_core::Scheme;
use scd_machine::{Machine, MachineConfig};
use scd_tango::{Op, ScriptProgram, ThreadProgram};

fn contended_lock_run(scheme: Scheme, clusters: usize, iters: usize) -> scd_machine::RunStats {
    let cfg = MachineConfig::paper_32()
        .with_scheme(scheme);
    let mut cfg = cfg;
    cfg.clusters = clusters;
    cfg.check_invariants = true;
    let programs: Vec<Box<dyn ThreadProgram>> = (0..clusters)
        .map(|_| {
            let mut ops = Vec::new();
            for _ in 0..iters {
                ops.push(Op::Lock(0));
                ops.push(Op::Read(0));
                ops.push(Op::Compute(20));
                ops.push(Op::Write(0));
                ops.push(Op::Unlock(0));
            }
            Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>
        })
        .collect();
    Machine::new(cfg, programs).run()
}

fn main() {
    let clusters = 32;
    let iters = 40;
    println!(
        "Queue-lock ablation: {clusters} clusters each acquiring a single lock {iters}x\n"
    );
    println!(
        "{:<22} {:>9} {:>8} {:>9} {:>10} {:>10}",
        "waiter representation", "cycles", "grants", "retries", "lock msgs", "per crit."
    );
    let mut csv = String::from("scheme,cycles,grants,retries,requests,replies\n");
    for (name, scheme) in [
        ("full vector", Scheme::FullVector),
        ("Dir4CV8", Scheme::dir_cv(4, 8)),
        ("Dir4CV4", Scheme::dir_cv(4, 4)),
        ("Dir4CV2", Scheme::dir_cv(4, 2)),
        ("Dir1B (broadcast)", Scheme::dir_b(1)),
    ] {
        let stats = contended_lock_run(scheme, clusters, iters);
        let (grants, retries) = stats.lock_metrics;
        let total = stats.traffic.total();
        println!(
            "{:<22} {:>9} {:>8} {:>9} {:>10} {:>10.2}",
            name,
            stats.cycles,
            grants,
            retries,
            total,
            total as f64 / (clusters * iters) as f64,
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{}\n",
            name,
            stats.cycles,
            grants,
            retries,
            stats.traffic.get(scd_stats::MessageClass::Request),
            stats.traffic.get(scd_stats::MessageClass::Reply),
        ));
    }
    bench::write_results("ablation_locks.csv", &csv);
}
