//! Figures 11 and 12 — sparse directory performance for LU and DWF:
//! normalized execution time as the directory size factor (directory
//! entries / total cache blocks) is varied over {1, 2, 4} plus the
//! non-sparse baseline, for the full-vector, coarse-vector and broadcast
//! schemes.
//!
//! Methodology per §6.3: the processor caches are scaled so the data set
//! comfortably exceeds them (see `bench::SPARSE_CACHE_RATIO`); sparse
//! directories are 4-way associative with random replacement.

use bench::{run_app_with, sparse_config};
use scd_apps::{dwf, lu, DwfParams, LuParams};
use scd_core::{Replacement, Scheme};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    // The paper's sparse runs use LU (with a larger matrix so replacements
    // matter) and DWF; MP3D tracked DWF and LocusRoute has too small a
    // working set to stress sparse directories (§6.3.1).
    let apps = [
        (
            "Figure 11 (LU)",
            lu(
                &LuParams {
                    n: (96.0 * scale).round().max(16.0) as usize,
                    update_cost: 4,
                },
                32,
                0xD45B,
            ),
        ),
        ("Figure 12 (DWF)", dwf(&DwfParams::scaled(scale), 32, 0xD45B)),
    ];
    let schemes = [
        ("full bit vector", Scheme::FullVector),
        ("coarse vector", Scheme::dir_cv(3, 2)),
        ("broadcast", Scheme::dir_b(3)),
    ];
    let mut csv =
        String::from("figure,scheme,size_factor,cycles,norm_time,replacements,traffic\n");
    for (fig, app) in &apps {
        println!("{fig}: sparse directory performance, 4-way, random replacement\n");
        println!(
            "{:<16} {:>11} {:>11} {:>11} {:>11}",
            "scheme", "non-sparse", "factor 4", "factor 2", "factor 1"
        );
        // Normalize to non-sparse full vector.
        let base = run_app_with(
            app,
            sparse_config(app, Scheme::FullVector, 0, 4, Replacement::Random),
        );
        for (name, scheme) in schemes {
            let mut cells = Vec::new();
            for factor in [0usize, 4, 2, 1] {
                let cfg = sparse_config(app, scheme, factor, 4, Replacement::Random);
                let stats = run_app_with(app, cfg);
                let norm = stats.cycles as f64 / base.cycles as f64 * 100.0;
                cells.push(format!("{norm:>10.1}"));
                csv.push_str(&format!(
                    "{},{},{},{},{:.4},{},{}\n",
                    fig,
                    name,
                    factor,
                    stats.cycles,
                    norm / 100.0,
                    stats.sparse.map_or(0, |s| s.replacements),
                    stats.traffic.total(),
                ));
            }
            println!(
                "{:<16} {} {} {} {}",
                name, cells[0], cells[1], cells[2], cells[3]
            );
        }
        println!();
    }
    bench::write_results("fig11_12.csv", &csv);
}
