//! §7 future-work evaluation: the overflow directory ("small directory
//! entries ... overflow into a small cache of much wider entries") against
//! the paper's published schemes, at the same ~17-bit storage budget.
//!
//! Expected shape: on read-by-all data (LU) the overflow cache absorbs the
//! widely shared blocks precisely, matching the full bit vector's traffic
//! where `Dir3NB` thrashes and `Dir3CV2` rounds to regions.

use bench::{run_app, run_app_with};
use scd_apps::{locusroute, lu, LocusRouteParams, LuParams};
use scd_core::{Replacement, Scheme};
use scd_machine::MachineConfig;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let apps = [
        lu(&LuParams::scaled(scale), 32, 0xD45B),
        locusroute(&LocusRouteParams::scaled(scale), 32, 0xD45B),
    ];
    let mut csv = String::from("app,config,cycles,invalidations,total,promotions,displacements\n");
    for app in &apps {
        println!("Overflow directory vs. published schemes, {}:", app.name);
        println!(
            "{:<26} {:>10} {:>12} {:>10} {:>11} {:>8}",
            "configuration", "cycles", "inval msgs", "total", "promotions", "displ."
        );
        let mut rows: Vec<(String, scd_machine::RunStats)> = vec![
            ("Dir32 (full)".into(), run_app(app, Scheme::FullVector)),
            ("Dir3CV2".into(), run_app(app, Scheme::dir_cv(3, 2))),
            ("Dir3NB".into(), run_app(app, Scheme::dir_nb(3))),
        ];
        for wide in [8usize, 32, 128] {
            let cfg = MachineConfig::paper_32().with_overflow(3, wide, 4, Replacement::Lru);
            rows.push((
                format!("Dir3 + {wide}-wide overflow"),
                run_app_with(app, cfg),
            ));
        }
        for (name, stats) in rows {
            let o = stats.overflow.unwrap_or_default();
            println!(
                "{:<26} {:>10} {:>12} {:>10} {:>11} {:>8}",
                name,
                stats.cycles,
                stats.traffic.get(scd_stats::MessageClass::Invalidation),
                stats.traffic.total(),
                o.promotions,
                o.displacements,
            );
            csv.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                app.name,
                name,
                stats.cycles,
                stats.traffic.get(scd_stats::MessageClass::Invalidation),
                stats.traffic.total(),
                o.promotions,
                o.displacements,
            ));
        }
        println!();
    }
    bench::write_results("ablation_overflow.csv", &csv);
}
