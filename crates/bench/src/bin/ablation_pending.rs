//! Pending-queue ablation — the cost of replacing DASH's NAK/retry with
//! per-block request queueing at the home (DESIGN.md §7).
//!
//! Reports, for each application, how often requests actually queued and
//! the worst queue depth. Small numbers justify the substitution: the
//! queued path is rare, so the message-count difference vs NAK/retry is
//! negligible.

use bench::{run_app, scheme_suite};
use scd_apps::suite;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let apps = suite(32, 0xD45B, scale);
    println!("Home pending-queue ablation (conflicting-transaction serialization)\n");
    println!(
        "{:<12} {:<14} {:>12} {:>12} {:>13} {:>9} {:>7}",
        "app", "scheme", "total reqs", "ever queued", "queued/1000", "maxdepth", "races"
    );
    let mut csv = String::from("app,scheme,requests,queued,max_depth,races,forwards\n");
    for app in &apps {
        for (name, scheme) in scheme_suite() {
            let stats = run_app(app, scheme);
            let reqs = stats.traffic.get(scd_stats::MessageClass::Request);
            let (depth, queued) = stats.queue_metrics;
            println!(
                "{:<12} {:<14} {:>12} {:>12} {:>13.2} {:>9} {:>7}",
                app.name,
                name,
                reqs,
                queued,
                queued as f64 / reqs.max(1) as f64 * 1000.0,
                depth,
                stats.protocol.races,
            );
            csv.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                app.name, name, reqs, queued, depth, stats.protocol.races, stats.protocol.forwards
            ));
        }
    }
    bench::write_results("ablation_pending.csv", &csv);
}
