//! Scaling beyond the paper's 32 processors ("we believe that a
//! combination of the two techniques presented will allow machines to be
//! scaled to hundreds of processors"). The original could not simulate
//! past 32; we run LU at 32 and 64 clusters and check that the
//! coarse-vector advantage persists (with region size adapting to the
//! fixed ~17-bit storage budget: Dir3CV2 at 32, Dir3CV4 at 64).

use bench::run_app_with;
use scd_apps::{lu, LuParams};
use scd_core::Scheme;
use scd_machine::MachineConfig;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let mut csv = String::from("procs,scheme,cycles,invalidations,total\n");
    for procs in [32usize, 64] {
        let n = ((72.0 * scale).round() as usize).max(16) * procs / 32;
        let app = lu(&LuParams { n, update_cost: 4 }, procs, 0xD45B);
        // Budget-equivalent schemes at this processor count.
        let r = if procs == 32 { 2 } else { 4 };
        let schemes = [
            ("full vector".to_string(), Scheme::FullVector),
            (format!("Dir3CV{r}"), Scheme::dir_cv(3, r)),
            ("Dir3B".to_string(), Scheme::dir_b(3)),
            ("Dir3NB".to_string(), Scheme::dir_nb(3)),
        ];
        println!("LU (n={n}) on {procs} processors:");
        println!(
            "{:<14} {:>10} {:>12} {:>12} {:>8}",
            "scheme", "cycles", "inval msgs", "total msgs", "vs full"
        );
        let mut base = None;
        for (name, scheme) in schemes {
            let mut cfg = MachineConfig::paper_32().with_scheme(scheme);
            cfg.clusters = procs;
            let stats = run_app_with(&app, cfg);
            let b = base.get_or_insert(stats.traffic.total());
            println!(
                "{:<14} {:>10} {:>12} {:>12} {:>7.2}x",
                name,
                stats.cycles,
                stats.traffic.get(scd_stats::MessageClass::Invalidation),
                stats.traffic.total(),
                stats.traffic.total() as f64 / *b as f64,
            );
            csv.push_str(&format!(
                "{},{},{},{},{}\n",
                procs,
                name,
                stats.cycles,
                stats.traffic.get(scd_stats::MessageClass::Invalidation),
                stats.traffic.total(),
            ));
        }
        println!();
    }
    bench::write_results("ablation_scale.csv", &csv);
}
