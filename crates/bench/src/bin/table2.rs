//! Table 2 — general application characteristics: shared references,
//! reads, writes, synchronization operations, and shared space, measured
//! from full-cache, non-sparse, full-bit-vector runs (as in the paper).

use bench::run_app;
use scd_apps::suite;
use scd_core::Scheme;
use scd_stats::{render_table, Align};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let apps = suite(32, 0xD45B, scale);

    let mut rows = Vec::new();
    let mut csv = String::from("app,shared_refs,shared_reads,shared_writes,sync_ops,shared_kb\n");
    for app in &apps {
        // Run to confirm the machine observes the same counts the generator
        // reports (reads/writes are counted as issued).
        let stats = run_app(app, Scheme::FullVector);
        assert_eq!(stats.shared_reads, app.reads());
        assert_eq!(stats.shared_writes, app.writes());
        rows.push(vec![
            app.name.to_string(),
            format!("{:.3}", app.shared_refs() as f64 / 1e6),
            format!("{:.3}", app.reads() as f64 / 1e6),
            format!("{:.3}", app.writes() as f64 / 1e6),
            format!("{:.2}", app.sync_ops() as f64 / 1e3),
            format!("{:.1}", app.shared_bytes as f64 / 1024.0),
        ]);
        csv.push_str(&format!(
            "{},{},{},{},{},{}\n",
            app.name,
            app.shared_refs(),
            app.reads(),
            app.writes(),
            app.sync_ops(),
            app.shared_bytes / 1024,
        ));
    }
    let rendered = render_table(
        &[
            "Application",
            "shared refs (mill)",
            "shared reads (mill)",
            "shared writes (mill)",
            "sync ops (thou)",
            "shared space (KB)",
        ],
        &[Align::Left],
        &rows,
    );
    println!("Table 2: general application characteristics");
    println!("(32 processors, 16-byte blocks, full caches, non-sparse Dir32)\n");
    println!("{rendered}");
    println!(
        "note: problem sizes are scaled for simulation speed; the paper's runs\n\
         are ~10-20x larger in reference count but identical in structure."
    );
    bench::write_results("table2.csv", &csv);
}
