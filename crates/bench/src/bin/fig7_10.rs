//! Figures 7–10 — normalized execution time and message traffic of the
//! four directory schemes (Full Vector, Coarse Vector, Broadcast,
//! Non-Broadcast) for LU, DWF, MP3D and LocusRoute.
//!
//! The traffic bars are broken down into requests (incl. writebacks),
//! replies, and invalidations+acknowledgements, exactly as the paper's
//! stacked charts.

use bench::{run_app, scheme_suite};
use scd_apps::suite;
use scd_stats::MessageClass;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let apps = suite(32, 0xD45B, scale);
    let mut csv = String::from(
        "app,scheme,cycles,norm_time,requests,replies,invalidations,acks,total,norm_traffic\n",
    );
    for (fig, app) in apps.iter().enumerate() {
        println!(
            "Figure {}: performance for {} (normalized to Full Vector = 100)\n",
            fig + 7,
            app.name
        );
        let mut baseline = None;
        println!(
            "{:<14} {:>10} {:>6}  {:>9} {:>9} {:>11} {:>9} {:>7}",
            "scheme", "cycles", "time", "requests", "replies", "inval+ack", "total", "msgs"
        );
        for (name, scheme) in scheme_suite() {
            let stats = run_app(app, scheme);
            let base = baseline.get_or_insert_with(|| stats.clone());
            let nt = stats.cycles as f64 / base.cycles as f64 * 100.0;
            let nm = stats.traffic.total() as f64 / base.traffic.total() as f64 * 100.0;
            println!(
                "{:<14} {:>10} {:>6.1}  {:>9} {:>9} {:>11} {:>9} {:>7.1}",
                name,
                stats.cycles,
                nt,
                stats.traffic.get(MessageClass::Request),
                stats.traffic.get(MessageClass::Reply),
                stats.traffic.coherence(),
                stats.traffic.total(),
                nm,
            );
            csv.push_str(&format!(
                "{},{},{},{:.4},{},{},{},{},{},{:.4}\n",
                app.name,
                name,
                stats.cycles,
                nt / 100.0,
                stats.traffic.get(MessageClass::Request),
                stats.traffic.get(MessageClass::Reply),
                stats.traffic.get(MessageClass::Invalidation),
                stats.traffic.get(MessageClass::Acknowledgement),
                stats.traffic.total(),
                nm / 100.0,
            ));
        }
        println!();
    }
    bench::write_results("fig7_10.csv", &csv);
}
