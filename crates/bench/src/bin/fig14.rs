//! Figure 14 — effect of sparse-directory replacement policy on message
//! traffic (LU, full bit vector, 4-way): LRU vs Random vs LRA at size
//! factors {1, 2, 4}, normalized to the non-sparse run.

use bench::{run_app_with, sparse_config};
use scd_apps::{lu, LuParams};
use scd_core::{Replacement, Scheme};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let app = lu(
        &LuParams {
            n: (96.0 * scale).round().max(16.0) as usize,
            update_cost: 4,
        },
        32,
        0xD45B,
    );
    let base = run_app_with(
        &app,
        sparse_config(&app, Scheme::FullVector, 0, 4, Replacement::Random),
    );
    let policies = [
        ("LRU", Replacement::Lru),
        ("Rand", Replacement::Random),
        ("LRA", Replacement::Lra),
    ];
    println!("Figure 14: effect of replacement policies in sparse directory (LU, Dir32, 4-way)");
    println!("normalized message traffic (non-sparse = 100)\n");
    println!(
        "{:>12} {:>8} {:>8} {:>8}",
        "size factor", "LRU", "Rand", "LRA"
    );
    let mut csv = String::from("size_factor,policy,traffic,norm_traffic,replacements\n");
    for factor in [1usize, 2, 4] {
        print!("{factor:>12}");
        for (name, policy) in policies {
            let cfg = sparse_config(&app, Scheme::FullVector, factor, 4, policy);
            let stats = run_app_with(&app, cfg);
            let norm = stats.traffic.total() as f64 / base.traffic.total() as f64 * 100.0;
            print!(" {norm:>8.1}");
            csv.push_str(&format!(
                "{},{},{},{:.4},{}\n",
                factor,
                name,
                stats.traffic.total(),
                norm / 100.0,
                stats.sparse.map_or(0, |s| s.replacements),
            ));
        }
        println!();
    }
    bench::write_results("fig14.csv", &csv);
}
