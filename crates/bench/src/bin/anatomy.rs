//! Execution-time anatomy: where simulated processor-time goes per
//! application and scheme — busy computation, memory stalls, or
//! synchronization stalls. Not a paper artifact, but it explains the
//! Figure 7–10 results: `Dir3NB`'s extra time is almost entirely memory
//! stall from pointer-eviction rereads.

use bench::{run_app, scheme_suite};
use scd_apps::suite;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let apps = suite(32, 0xD45B, scale);
    println!("Execution-time anatomy (fraction of total processor-time):\n");
    println!(
        "{:<12} {:<14} {:>8} {:>10} {:>10} {:>10}",
        "app", "scheme", "busy", "mem stall", "sync stall", "cycles"
    );
    let mut csv = String::from("app,scheme,busy,mem_stall,sync_stall,cycles\n");
    for app in &apps {
        for (name, scheme) in scheme_suite() {
            let stats = run_app(app, scheme);
            let (busy, mem, sync) = stats.stalls.fractions();
            println!(
                "{:<12} {:<14} {:>7.1}% {:>9.1}% {:>9.1}% {:>10}",
                app.name,
                name,
                busy * 100.0,
                mem * 100.0,
                sync * 100.0,
                stats.cycles,
            );
            csv.push_str(&format!(
                "{},{},{:.4},{:.4},{:.4},{}\n",
                app.name, name, busy, mem, sync, stats.cycles
            ));
        }
        println!();
    }
    bench::write_results("anatomy.csv", &csv);
}
