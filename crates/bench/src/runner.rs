//! Shared experiment plumbing: building machines, running apps, and
//! writing results.

use scd_apps::AppRun;
use scd_core::Scheme;
use scd_machine::{Machine, MachineConfig, RunStats};
use scd_trace::{Json, TraceConfig};

/// The paper's four evaluated schemes for 32 processors with a ~13%
/// directory-memory budget (§5): full vector plus the three-pointer
/// limited schemes.
pub fn scheme_suite() -> Vec<(&'static str, Scheme)> {
    vec![
        ("Full Vector", Scheme::FullVector),
        ("Coarse Vector", Scheme::dir_cv(3, 2)),
        ("Broadcast", Scheme::dir_b(3)),
        ("Non Broadcast", Scheme::dir_nb(3)),
    ]
}

/// Runs `app` on a machine configured with `scheme` (otherwise the paper's
/// 32-processor setup).
pub fn run_app(app: &AppRun, scheme: Scheme) -> RunStats {
    let cfg = MachineConfig::paper_32().with_scheme(scheme);
    run_app_with(app, cfg)
}

/// Runs `app` on an explicit machine configuration.
pub fn run_app_with(app: &AppRun, cfg: MachineConfig) -> RunStats {
    assert_eq!(
        app.programs.len(),
        cfg.processors(),
        "application generated for a different machine size"
    );
    Machine::new(cfg, app.boxed_programs()).run()
}

/// Runs `app` with traffic-attribution counters enabled (no event ring,
/// no metrics — just the byte/flit/link accounting), returning the stats
/// together with the `scd-attrib/v1` section for the bench document.
///
/// Attribution counters live outside [`RunStats`], so the stats returned
/// here are identical to what [`run_app_with`] produces for the same
/// configuration — bench points gain an attribution section without
/// perturbing any tracked metric.
pub fn run_app_attributed(app: &AppRun, cfg: MachineConfig) -> (RunStats, Option<Json>) {
    assert_eq!(
        app.programs.len(),
        cfg.processors(),
        "application generated for a different machine size"
    );
    let mut tc = TraceConfig::none();
    tc.attribution = true;
    let mut machine = Machine::new(cfg.with_trace(tc), app.boxed_programs());
    let stats = machine.run();
    let attrib = machine.attribution_json(stats.cycles);
    (stats, attrib)
}

/// Ratio of data-set size to total cache size used by the sparse-directory
/// experiments (§6.3 methodology). The paper's full-blown DWF problem has
/// ratio 64; our scaled problems use 8 so per-processor caches stay
/// non-degenerate — what matters is that the data set comfortably exceeds
/// the caches, forcing replacement activity.
pub const SPARSE_CACHE_RATIO: u64 = 8;

/// Builds the §6.3 scaled-cache machine for `app`: caches sized to
/// `data set / SPARSE_CACHE_RATIO`, and (for `size_factor > 0`) a sparse
/// directory with `size_factor x` the total cache blocks, `ways`-way
/// associative, using `policy`. `size_factor == 0` means non-sparse.
pub fn sparse_config(
    app: &AppRun,
    scheme: Scheme,
    size_factor: usize,
    ways: usize,
    policy: scd_core::Replacement,
) -> MachineConfig {
    let mut cfg = MachineConfig::paper_32().with_scheme(scheme);
    let dataset_blocks = app.shared_bytes / cfg.block_bytes;
    let total_cache = ((dataset_blocks / SPARSE_CACHE_RATIO) as usize)
        .max(cfg.clusters * 8); // at least 8 blocks per processor
    cfg = cfg.with_scaled_caches(total_cache);
    if size_factor > 0 {
        let per_home = (cfg.total_cache_blocks() * size_factor)
            .div_ceil(cfg.clusters)
            .div_ceil(ways)
            * ways;
        cfg = cfg.with_sparse(per_home.max(ways), ways, policy);
    }
    cfg
}

/// Lower-cases `s` and collapses every non-alphanumeric run to a single
/// `_`, producing the file-system-safe slugs used in `BENCH_*.json` names.
fn slug(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut gap = false;
    for ch in s.chars() {
        if ch.is_ascii_alphanumeric() {
            if gap && !out.is_empty() {
                out.push('_');
            }
            gap = false;
            out.push(ch.to_ascii_lowercase());
        } else {
            gap = true;
        }
    }
    out
}

/// The `BENCH_<app>_<scheme>.json` file name for one benchmark data point.
pub fn bench_json_name(app_name: &str, scheme_name: &str) -> String {
    format!("BENCH_{}_{}.json", slug(app_name), slug(scheme_name))
}

/// Writes one perf-trajectory data point as `BENCH_<app>_<scheme>.json` in
/// the current directory, using the `scd-run-stats/v1` schema (the same
/// document `scdsim --stats-json` emits). Successive PRs compare these
/// files (`scd-report` automates it) to track simulator behaviour over
/// time. `attribution` is the optional `scd-attrib/v1` section from
/// [`run_app_attributed`].
pub fn write_bench_json(
    app: &AppRun,
    scheme_name: &str,
    stats: &RunStats,
    attribution: Option<Json>,
) {
    let run = Json::obj()
        .with("app", Json::Str(app.name.into()))
        .with("scheme", Json::Str(scheme_name.into()))
        .with("shared_refs", Json::U64(app.shared_refs()))
        .with("shared_bytes", Json::U64(app.shared_bytes));
    let doc = stats.to_json_document(Some(run), None, attribution);
    let name = bench_json_name(app.name, scheme_name);
    std::fs::write(&name, format!("{doc}\n")).expect("write bench json");
    println!("[bench point written to {name}]");
}

/// Writes `content` to `results/<name>` (creating the directory), and
/// reports where it went.
pub fn write_results(name: &str, content: &str) {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write results file");
    println!("[results written to {}]", path.display());
}
