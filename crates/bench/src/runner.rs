//! Shared experiment plumbing: building machines, running apps, and
//! writing results.

use scd_apps::AppRun;
use scd_core::Scheme;
use scd_machine::{Machine, MachineConfig, RunStats};

/// The paper's four evaluated schemes for 32 processors with a ~13%
/// directory-memory budget (§5): full vector plus the three-pointer
/// limited schemes.
pub fn scheme_suite() -> Vec<(&'static str, Scheme)> {
    vec![
        ("Full Vector", Scheme::FullVector),
        ("Coarse Vector", Scheme::dir_cv(3, 2)),
        ("Broadcast", Scheme::dir_b(3)),
        ("Non Broadcast", Scheme::dir_nb(3)),
    ]
}

/// Runs `app` on a machine configured with `scheme` (otherwise the paper's
/// 32-processor setup).
pub fn run_app(app: &AppRun, scheme: Scheme) -> RunStats {
    let cfg = MachineConfig::paper_32().with_scheme(scheme);
    run_app_with(app, cfg)
}

/// Runs `app` on an explicit machine configuration.
pub fn run_app_with(app: &AppRun, cfg: MachineConfig) -> RunStats {
    assert_eq!(
        app.programs.len(),
        cfg.processors(),
        "application generated for a different machine size"
    );
    Machine::new(cfg, app.boxed_programs()).run()
}

/// Ratio of data-set size to total cache size used by the sparse-directory
/// experiments (§6.3 methodology). The paper's full-blown DWF problem has
/// ratio 64; our scaled problems use 8 so per-processor caches stay
/// non-degenerate — what matters is that the data set comfortably exceeds
/// the caches, forcing replacement activity.
pub const SPARSE_CACHE_RATIO: u64 = 8;

/// Builds the §6.3 scaled-cache machine for `app`: caches sized to
/// `data set / SPARSE_CACHE_RATIO`, and (for `size_factor > 0`) a sparse
/// directory with `size_factor x` the total cache blocks, `ways`-way
/// associative, using `policy`. `size_factor == 0` means non-sparse.
pub fn sparse_config(
    app: &AppRun,
    scheme: Scheme,
    size_factor: usize,
    ways: usize,
    policy: scd_core::Replacement,
) -> MachineConfig {
    let mut cfg = MachineConfig::paper_32().with_scheme(scheme);
    let dataset_blocks = app.shared_bytes / cfg.block_bytes;
    let total_cache = ((dataset_blocks / SPARSE_CACHE_RATIO) as usize)
        .max(cfg.clusters * 8); // at least 8 blocks per processor
    cfg = cfg.with_scaled_caches(total_cache);
    if size_factor > 0 {
        let per_home = (cfg.total_cache_blocks() * size_factor)
            .div_ceil(cfg.clusters)
            .div_ceil(ways)
            * ways;
        cfg = cfg.with_sparse(per_home.max(ways), ways, policy);
    }
    cfg
}

/// Writes `content` to `results/<name>` (creating the directory), and
/// reports where it went.
pub fn write_results(name: &str, content: &str) {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write results file");
    println!("[results written to {}]", path.display());
}
