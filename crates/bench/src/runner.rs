//! Shared experiment plumbing: building machines, running apps, and
//! writing results.

use scd_apps::AppRun;
use scd_core::Scheme;
use scd_machine::{Machine, MachineConfig, RunStats, ShardedMachine};
use scd_trace::{Json, TraceConfig};

/// The paper's four evaluated schemes for 32 processors with a ~13%
/// directory-memory budget (§5): full vector plus the three-pointer
/// limited schemes.
pub fn scheme_suite() -> Vec<(&'static str, Scheme)> {
    vec![
        ("Full Vector", Scheme::FullVector),
        ("Coarse Vector", Scheme::dir_cv(3, 2)),
        ("Broadcast", Scheme::dir_b(3)),
        ("Non Broadcast", Scheme::dir_nb(3)),
    ]
}

/// Runs `app` on a machine configured with `scheme` (otherwise the paper's
/// 32-processor setup).
pub fn run_app(app: &AppRun, scheme: Scheme) -> RunStats {
    let cfg = MachineConfig::paper_32().with_scheme(scheme);
    run_app_with(app, cfg)
}

/// Runs `app` on an explicit machine configuration.
pub fn run_app_with(app: &AppRun, cfg: MachineConfig) -> RunStats {
    assert_eq!(
        app.programs.len(),
        cfg.processors(),
        "application generated for a different machine size"
    );
    Machine::new(cfg, app.boxed_programs()).run()
}

/// Runs `app` with traffic-attribution counters enabled (no event ring,
/// no metrics — just the byte/flit/link accounting), returning the stats
/// together with the `scd-attrib/v1` section for the bench document.
///
/// Attribution counters live outside [`RunStats`], so the stats returned
/// here are identical to what [`run_app_with`] produces for the same
/// configuration — bench points gain an attribution section without
/// perturbing any tracked metric.
pub fn run_app_attributed(app: &AppRun, cfg: MachineConfig) -> (RunStats, Option<Json>) {
    let (stats, attrib, _) = run_app_attributed_traced(app, cfg);
    (stats, attrib)
}

/// [`run_app_attributed`] plus the machine's `trace` bookkeeping section
/// (`recorded` / `dropped_events`), which the sweep engine surfaces in
/// each per-run `scd-sweep/v1` document so truncated telemetry is never
/// silent.
pub fn run_app_attributed_traced(
    app: &AppRun,
    cfg: MachineConfig,
) -> (RunStats, Option<Json>, Option<Json>) {
    run_app_attributed_traced_sharded(app, cfg, 1)
        .expect("a 1-shard run accepts any configuration")
}

/// [`run_app_attributed_traced`] on a machine partitioned across `shards`
/// worker threads. Statistics, attribution, and trace bookkeeping are
/// byte-identical to the serial run for any shard count; `Err` reports a
/// configuration the conservative-window engine cannot shard (zero
/// lookahead, link contention, the patterns observatory).
pub fn run_app_attributed_traced_sharded(
    app: &AppRun,
    cfg: MachineConfig,
    shards: usize,
) -> Result<(RunStats, Option<Json>, Option<Json>), String> {
    assert_eq!(
        app.programs.len(),
        cfg.processors(),
        "application generated for a different machine size"
    );
    let mut tc = TraceConfig::none();
    tc.attribution = true;
    let mut machine = ShardedMachine::new(cfg.with_trace(tc), app.boxed_programs(), shards)?;
    let stats = machine.run();
    let attrib = machine.attribution_json(stats.cycles);
    let trace = machine.trace_json();
    Ok((stats, attrib, trace))
}

/// Ratio of data-set size to total cache size used by the sparse-directory
/// experiments (§6.3 methodology). The paper's full-blown DWF problem has
/// ratio 64; our scaled problems use 8 so per-processor caches stay
/// non-degenerate — what matters is that the data set comfortably exceeds
/// the caches, forcing replacement activity.
pub const SPARSE_CACHE_RATIO: u64 = 8;

/// Builds the §6.3 scaled-cache machine for `app`: caches sized to
/// `data set / SPARSE_CACHE_RATIO`, and (for `size_factor > 0`) a sparse
/// directory with `size_factor x` the total cache blocks, `ways`-way
/// associative, using `policy`. `size_factor == 0` means non-sparse.
pub fn sparse_config(
    app: &AppRun,
    scheme: Scheme,
    size_factor: usize,
    ways: usize,
    policy: scd_core::Replacement,
) -> MachineConfig {
    sparse_config_with(
        MachineConfig::paper_32().with_scheme(scheme),
        app,
        size_factor,
        ways,
        policy,
    )
}

/// [`sparse_config`] on an explicit base machine (scheme already set):
/// scales the caches to the §6.3 ratio and, for `size_factor > 0`, attaches
/// the sparse directory. Used by the sweep engine, whose grids may override
/// cluster counts.
pub fn sparse_config_with(
    mut cfg: MachineConfig,
    app: &AppRun,
    size_factor: usize,
    ways: usize,
    policy: scd_core::Replacement,
) -> MachineConfig {
    let dataset_blocks = app.shared_bytes / cfg.block_bytes;
    // At least 8 blocks per *processor*: with one processor per cluster
    // (the paper's runs) this equals the old `clusters * 8` floor, but on
    // DASH-shaped machines (4 processors per cluster) the cluster-based
    // floor under-sized the caches by 4x.
    let total_cache = ((dataset_blocks / SPARSE_CACHE_RATIO) as usize)
        .max(cfg.processors() * 8);
    cfg = cfg.with_scaled_caches(total_cache);
    if size_factor > 0 {
        let per_home = (cfg.total_cache_blocks() * size_factor)
            .div_ceil(cfg.clusters)
            .div_ceil(ways)
            * ways;
        cfg = cfg.with_sparse(per_home.max(ways), ways, policy);
    }
    cfg
}

/// Lower-cases `s` and collapses every non-alphanumeric run to a single
/// `_`, producing the file-system-safe slugs used in `BENCH_*.json` names
/// and sweep run identifiers. Leading/trailing punctuation is dropped
/// entirely (no leading or trailing `_`), and an all-punctuation or empty
/// input slugs to the empty string.
pub fn slug(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut gap = false;
    for ch in s.chars() {
        if ch.is_ascii_alphanumeric() {
            if gap && !out.is_empty() {
                out.push('_');
            }
            gap = false;
            out.push(ch.to_ascii_lowercase());
        } else {
            gap = true;
        }
    }
    out
}

/// The `BENCH_<app>_<scheme>.json` file name for one benchmark data point.
pub fn bench_json_name(app_name: &str, scheme_name: &str) -> String {
    format!("BENCH_{}_{}.json", slug(app_name), slug(scheme_name))
}

/// Writes one perf-trajectory data point as `BENCH_<app>_<scheme>.json` in
/// the current directory, using the `scd-run-stats/v1` schema (the same
/// document `scdsim --stats-json` emits). Successive PRs compare these
/// files (`scd-report` automates it) to track simulator behaviour over
/// time. `attribution` is the optional `scd-attrib/v1` section from
/// [`run_app_attributed`].
pub fn write_bench_json(
    app: &AppRun,
    scheme_name: &str,
    stats: &RunStats,
    attribution: Option<Json>,
) {
    write_bench_json_in(std::path::Path::new("."), app, scheme_name, stats, attribution);
}

/// [`write_bench_json`] into an explicit directory (created if missing) —
/// the sweep engine's `--bench-out` lands its per-run points this way.
pub fn write_bench_json_in(
    dir: &std::path::Path,
    app: &AppRun,
    scheme_name: &str,
    stats: &RunStats,
    attribution: Option<Json>,
) {
    let doc = bench_point_document(app, scheme_name, stats, attribution);
    std::fs::create_dir_all(dir).expect("create bench output dir");
    let path = dir.join(bench_json_name(app.name, scheme_name));
    std::fs::write(&path, format!("{doc}\n")).expect("write bench json");
    println!("[bench point written to {}]", path.display());
}

/// The `scd-run-stats/v1` document for one bench point, with the standard
/// `run` meta section (app, scheme, shared refs/bytes).
pub fn bench_point_document(
    app: &AppRun,
    scheme_name: &str,
    stats: &RunStats,
    attribution: Option<Json>,
) -> Json {
    let run = Json::obj()
        .with("app", Json::Str(app.name.into()))
        .with("scheme", Json::Str(scheme_name.into()))
        .with("shared_refs", Json::U64(app.shared_refs()))
        .with("shared_bytes", Json::U64(app.shared_bytes));
    stats.to_json_document(Some(run), None, attribution, None, None)
}

/// Writes `content` to `results/<name>` (creating the directory), and
/// reports where it went.
pub fn write_results(name: &str, content: &str) {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write results file");
    println!("[results written to {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_apps::{synth, SharingPattern, SynthParams};

    #[test]
    fn slug_lowercases_and_collapses_separators() {
        assert_eq!(slug("Dir4CV4 Sparse"), "dir4cv4_sparse");
        assert_eq!(slug("Full Vector"), "full_vector");
        assert_eq!(slug("a - b -- c"), "a_b_c", "separator runs collapse to one _");
    }

    #[test]
    fn slug_drops_leading_and_trailing_punctuation() {
        assert_eq!(slug("--LU--"), "lu");
        assert_eq!(slug("!x"), "x", "no leading underscore");
        assert_eq!(slug("x!"), "x", "no trailing underscore");
        assert_eq!(slug(" (Dir3 NB) "), "dir3_nb");
    }

    #[test]
    fn slug_degenerate_inputs() {
        assert_eq!(slug(""), "");
        assert_eq!(slug("---"), "", "all-punctuation slugs to empty");
        assert_eq!(slug("7"), "7");
    }

    #[test]
    fn bench_json_name_edge_cases() {
        assert_eq!(
            bench_json_name("MP3D", "Dir4CV4 Sparse"),
            "BENCH_mp3d_dir4cv4_sparse.json"
        );
        // An empty scheme name degrades to a trailing underscore before the
        // extension — ugly but stable and collision-free per app.
        assert_eq!(bench_json_name("lu", ""), "BENCH_lu_.json");
        assert_eq!(bench_json_name("l u", "--"), "BENCH_l_u_.json");
    }

    /// §6.3's floor is per *processor*; with several processors per cluster
    /// the old `clusters * 8` floor under-sized the scaled caches.
    #[test]
    fn sparse_config_floor_counts_processors_not_clusters() {
        // A tiny data set so the floor (not the data-set ratio) decides.
        let app = synth(
            &SynthParams {
                pattern: SharingPattern::Migratory,
                blocks: 8,
                rounds: 2,
            },
            8,
            1,
        );
        let mut base = MachineConfig::paper_32().with_scheme(Scheme::FullVector);
        base.clusters = 2;
        base.procs_per_cluster = 4;
        let cfg = sparse_config_with(base, &app, 0, 4, scd_core::Replacement::Random);
        assert_eq!(cfg.processors(), 8);
        assert!(
            cfg.total_cache_blocks() >= cfg.processors() * 8,
            "total cache {} below 8 blocks/processor",
            cfg.total_cache_blocks()
        );
    }

    /// With one processor per cluster (every committed baseline) the
    /// floor change is a no-op: `clusters * 8 == processors() * 8`, so the
    /// `BENCH_*_sparse.json` baselines are untouched by the fix.
    #[test]
    fn sparse_config_unchanged_for_one_proc_per_cluster() {
        let app = synth(
            &SynthParams {
                pattern: SharingPattern::Migratory,
                blocks: 8,
                rounds: 2,
            },
            32,
            1,
        );
        let cfg = sparse_config(&app, Scheme::dir_cv(4, 4), 2, 4, scd_core::Replacement::Random);
        let floor = {
            let base = MachineConfig::paper_32();
            base.clusters * 8
        };
        assert_eq!(cfg.total_cache_blocks(), floor);
    }
}
