//! Deterministic parallel sweep engine.
//!
//! The paper's evaluation is a grid — apps × directory schemes × sparse
//! configurations × seeds (§5–§6) — and every point is an independent,
//! fully deterministic simulation. This module fans that grid out over a
//! hand-rolled `std::thread` + channel job pool (the workspace builds
//! offline, so no rayon/crossbeam):
//!
//! * the **reference programs** are generated once per (app, seed) pair and
//!   shared immutably across workers (`AppRun` streams are `Arc`-backed, so
//!   handing one to a worker is pointer-cheap);
//! * each worker owns its `Machine` outright — no shared mutable state —
//!   so a run's statistics are bit-identical to a serial run of the same
//!   descriptor;
//! * results are merged **in descriptor order**, never completion order,
//!   so the aggregated `scd-sweep/v1` document is byte-identical for
//!   `--jobs 1` and `--jobs N` (modulo the explicitly non-deterministic
//!   wall-clock `timing` section, which can be omitted).
//!
//! `src/bin/scd-sweep.rs` is the CLI front end; `smoke`'s trajectory mode
//! and the CI perf gate run on this engine.

use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

use scd_apps::{dwf, locusroute, lu, mp3d, AppRun, DwfParams, LocusRouteParams, LuParams,
    Mp3dParams};
use scd_core::{Replacement, Scheme};
use scd_machine::{MachineConfig, ProtocolKind, RunStats};
use scd_trace::Json;

use crate::runner::{run_app_attributed_traced_sharded, slug, sparse_config_with};

// The whole point of the engine is moving configs and reference programs
// across worker threads; keep that property machine-checked.
const _: () = {
    const fn shareable<T: Send + Sync>() {}
    shareable::<MachineConfig>();
    shareable::<AppRun>();
    shareable::<SweepSpec>();
    shareable::<RunDescriptor>();
};

/// Generator keys accepted in sweep grids, in canonical order.
pub const APP_NAMES: [&str; 4] = ["lu", "dwf", "mp3d", "locusroute"];

/// Generates the reference program for one generator key, or `None` for an
/// unknown key.
pub fn generate_app(name: &str, procs: usize, seed: u64, scale: f64) -> Option<AppRun> {
    Some(match name {
        "lu" => lu(&LuParams::scaled(scale), procs, seed),
        "dwf" => dwf(&DwfParams::scaled(scale), procs, seed),
        "mp3d" => mp3d(&Mp3dParams::scaled(scale), procs, seed),
        "locusroute" => locusroute(&LocusRouteParams::scaled(scale), procs, seed),
        _ => return None,
    })
}

/// One sparse-directory axis value: the full (complete) directory, or a
/// §6.3 sparse directory described by size factor × associativity ×
/// replacement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SparseVariant {
    /// Complete directory (no sparse organization).
    Full,
    /// Sparse directory: `size_factor`× the total cache blocks, `ways`-way
    /// associative, using `policy`.
    Sparse {
        /// Directory size as a multiple of total cache blocks.
        size_factor: usize,
        /// Set associativity.
        ways: usize,
        /// Replacement policy.
        policy: Replacement,
    },
}

/// The canonical trajectory sparse point: size factor 2, 4-way, random
/// replacement (what `BENCH_*_dir4cv4_sparse.json` tracks).
pub const CANONICAL_SPARSE: SparseVariant = SparseVariant::Sparse {
    size_factor: 2,
    ways: 4,
    policy: Replacement::Random,
};

fn policy_spec(policy: Replacement) -> &'static str {
    match policy {
        Replacement::Lru => "lru",
        Replacement::Random => "rand",
        Replacement::Lra => "lra",
    }
}

impl SparseVariant {
    /// Parses `full` or `<size_factor>:<ways>:<lru|rand|lra>`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec == "full" {
            return Ok(SparseVariant::Full);
        }
        let parts: Vec<&str> = spec.split(':').collect();
        let [factor, ways, policy] = parts.as_slice() else {
            return Err(format!(
                "bad sparse spec `{spec}` (want `full` or `<factor>:<ways>:<lru|rand|lra>`)"
            ));
        };
        let size_factor: usize = factor
            .parse()
            .map_err(|_| format!("bad sparse size factor `{factor}`"))?;
        if size_factor == 0 {
            return Err("sparse size factor must be >= 1 (use `full` for no sparse)".into());
        }
        let ways: usize = ways.parse().map_err(|_| format!("bad sparse ways `{ways}`"))?;
        if ways == 0 {
            return Err("sparse ways must be >= 1".into());
        }
        let policy = match *policy {
            "lru" => Replacement::Lru,
            "rand" | "random" => Replacement::Random,
            "lra" => Replacement::Lra,
            other => return Err(format!("bad replacement policy `{other}`")),
        };
        Ok(SparseVariant::Sparse {
            size_factor,
            ways,
            policy,
        })
    }

    /// Round-trips to the spec syntax accepted by [`SparseVariant::parse`].
    pub fn spec(&self) -> String {
        match *self {
            SparseVariant::Full => "full".into(),
            SparseVariant::Sparse {
                size_factor,
                ways,
                policy,
            } => format!("{size_factor}:{ways}:{}", policy_spec(policy)),
        }
    }

    /// Human/file-name suffix appended to the scheme label. The canonical
    /// trajectory point keeps the short ` Sparse` suffix so its bench file
    /// names (`BENCH_*_dir4cv4_sparse.json`) stay stable; other variants
    /// spell their parameters out.
    pub fn label_suffix(&self) -> String {
        match *self {
            SparseVariant::Full => String::new(),
            v if v == CANONICAL_SPARSE => " Sparse".into(),
            SparseVariant::Sparse {
                size_factor,
                ways,
                policy,
            } => format!(" Sparse {size_factor}x {ways}w {}", policy_spec(policy)),
        }
    }
}

/// A sweep grid: the cross product of apps × schemes × sparse variants ×
/// seeds at one problem scale and machine size.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Generator keys (see [`APP_NAMES`]).
    pub apps: Vec<String>,
    /// Directory schemes.
    pub schemes: Vec<Scheme>,
    /// Sparse-directory variants ([`SparseVariant::Full`] = complete).
    pub sparse: Vec<SparseVariant>,
    /// Workload seeds.
    pub seeds: Vec<u64>,
    /// Coherence protocol backends. `[Dash]` (the default everywhere)
    /// reproduces the legacy single-protocol grid byte-for-byte; adding
    /// `Tardis`/`Dls` multiplies the grid so one sweep compares the
    /// protocol families on identical reference streams.
    pub protocols: Vec<ProtocolKind>,
    /// Problem scale ∈ (0, 1].
    pub scale: f64,
    /// Cluster count (one processor per cluster, as in the paper's runs).
    pub clusters: usize,
    /// Shards (worker threads) *inside* each machine — orthogonal to
    /// `--jobs`, which parallelizes *across* grid points. Results are
    /// byte-identical for any value, so this is pure execution policy and
    /// never appears in the deterministic document sections.
    pub shards: usize,
}

impl SweepSpec {
    /// The perf-trajectory grid: all four apps under `Dir4CV4`, full and
    /// canonical sparse, the standard workload seed, 32 clusters.
    pub fn trajectory(scale: f64) -> Self {
        SweepSpec {
            apps: APP_NAMES.iter().map(|s| s.to_string()).collect(),
            schemes: vec![Scheme::dir_cv(4, 4)],
            sparse: vec![SparseVariant::Full, CANONICAL_SPARSE],
            seeds: vec![0xD45B],
            protocols: vec![ProtocolKind::Dash],
            scale,
            clusters: 32,
            shards: 1,
        }
    }

    /// The descriptor list in canonical (deterministic) order: apps outer,
    /// then protocols, then schemes, then sparse variants, then seeds.
    pub fn descriptors(&self) -> Vec<RunDescriptor> {
        let mut descs = Vec::new();
        for (a, app) in self.apps.iter().enumerate() {
            for &protocol in &self.protocols {
                for scheme in &self.schemes {
                    for sparse in &self.sparse {
                        for (s, &seed) in self.seeds.iter().enumerate() {
                            let scheme_label =
                                format!("{}{}", scheme.name(self.clusters), sparse.label_suffix());
                            // Dash ids keep the legacy three-segment shape;
                            // the other protocols gain their own segment so
                            // grid points stay unambiguous.
                            let id = if protocol == ProtocolKind::Dash {
                                format!("{app}/{}/s{seed}", slug(&scheme_label))
                            } else {
                                format!(
                                    "{app}/{}/{}/s{seed}",
                                    protocol.name(),
                                    slug(&scheme_label)
                                )
                            };
                            descs.push(RunDescriptor {
                                index: descs.len(),
                                app_idx: a * self.seeds.len() + s,
                                app: app.clone(),
                                scheme: *scheme,
                                sparse: *sparse,
                                seed,
                                protocol,
                                scheme_label,
                                id,
                            });
                        }
                    }
                }
            }
        }
        descs
    }

    /// Generates the shared reference-program table: one entry per
    /// (app, seed) pair, indexed by [`RunDescriptor::app_idx`]. Programs
    /// are generated **once** here and shared immutably by every worker.
    ///
    /// # Panics
    /// On unknown generator keys — validate CLI input with
    /// [`generate_app`] first.
    pub fn generate_apps(&self) -> Vec<AppRun> {
        let mut table = Vec::with_capacity(self.apps.len() * self.seeds.len());
        for app in &self.apps {
            for &seed in &self.seeds {
                table.push(
                    generate_app(app, self.clusters, seed, self.scale)
                        .unwrap_or_else(|| panic!("unknown app `{app}`")),
                );
            }
        }
        table
    }
}

/// One point of the grid: everything a worker needs to build and run the
/// machine, plus a stable identifier for reports.
#[derive(Clone, Debug)]
pub struct RunDescriptor {
    /// Position in the canonical descriptor order (merge key).
    pub index: usize,
    /// Index into the [`SweepSpec::generate_apps`] table.
    pub app_idx: usize,
    /// Generator key (`lu`, `dwf`, ...).
    pub app: String,
    /// Directory scheme.
    pub scheme: Scheme,
    /// Sparse-directory variant.
    pub sparse: SparseVariant,
    /// Workload seed.
    pub seed: u64,
    /// Coherence protocol backend.
    pub protocol: ProtocolKind,
    /// Display label, e.g. `Dir4CV4 Sparse` (drives bench file names).
    pub scheme_label: String,
    /// Stable run id, e.g. `lu/dir4cv4_sparse/s54363`.
    pub id: String,
}

/// The machine configuration for one descriptor (pure function of the
/// descriptor, the app and the grid — workers call it independently).
pub fn build_config(desc: &RunDescriptor, app: &AppRun, spec: &SweepSpec) -> MachineConfig {
    let mut base = MachineConfig::paper_32()
        .with_scheme(desc.scheme)
        .with_protocol(desc.protocol);
    base.clusters = spec.clusters;
    match desc.sparse {
        SparseVariant::Full => base,
        SparseVariant::Sparse {
            size_factor,
            ways,
            policy,
        } => sparse_config_with(base, app, size_factor, ways, policy),
    }
}

/// One finished grid point.
pub struct SweepRun {
    /// The descriptor this run executed.
    pub desc: RunDescriptor,
    /// Simulation results (bit-identical to a serial run).
    pub stats: RunStats,
    /// The `scd-attrib/v1` section (traffic attribution is always on for
    /// sweep points, as in the trajectory baselines).
    pub attribution: Option<Json>,
    /// The machine's trace bookkeeping (`recorded` / `dropped_events`),
    /// surfaced per run so telemetry truncation is never silent.
    pub trace: Option<Json>,
    /// Wall-clock seconds this point took on its worker.
    pub wall_seconds: f64,
}

/// A finished sweep: every grid point in descriptor order, plus timing.
pub struct SweepOutcome {
    /// Runs, merged in descriptor order regardless of completion order.
    pub runs: Vec<SweepRun>,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Wall-clock seconds for the whole sweep (including app generation).
    pub wall_seconds: f64,
    /// The shared reference-program table (indexed by `app_idx`).
    pub apps: Vec<AppRun>,
}

impl SweepOutcome {
    /// Sum of per-run wall-clock seconds — what a serial sweep would have
    /// cost; `serial_seconds / wall_seconds` is the measured speedup.
    pub fn serial_seconds(&self) -> f64 {
        self.runs.iter().map(|r| r.wall_seconds).sum()
    }
}

fn execute(desc: RunDescriptor, apps: &[AppRun], spec: &SweepSpec) -> SweepRun {
    let app = &apps[desc.app_idx];
    let cfg = build_config(&desc, app, spec);
    let t0 = Instant::now();
    let (stats, attribution, trace) =
        run_app_attributed_traced_sharded(app, cfg, spec.shards.max(1))
            .unwrap_or_else(|e| panic!("cannot shard sweep point {}: {e}", desc.id));
    SweepRun {
        desc,
        stats,
        attribution,
        trace,
        wall_seconds: t0.elapsed().as_secs_f64(),
    }
}

/// One completed grid point, reported live from the merge loop while the
/// sweep is still running. `completed` counts arrivals (1-based), so with
/// multiple workers the `index`/`id` sequence follows completion order —
/// non-deterministic, which is why progress lives beside the (always
/// deterministic) document, never inside it.
#[derive(Clone, Debug)]
pub struct SweepProgress {
    /// Descriptor index of the run that just finished.
    pub index: usize,
    /// Its human-readable id (`app/scheme[/sparse]/seed`).
    pub id: String,
    /// Final simulated cycle of the run.
    pub cycles: u64,
    /// Wall-clock seconds the run took on its worker.
    pub run_seconds: f64,
    /// Runs finished so far (this one included).
    pub completed: usize,
    /// Total runs in the grid.
    pub total: usize,
    /// Wall-clock seconds since the sweep started.
    pub elapsed: f64,
    /// Naive remaining-time estimate: `elapsed / completed` per
    /// outstanding run.
    pub eta: f64,
}

impl SweepProgress {
    /// The streamed `sweep_run` record (JSONL, shared transport with the
    /// machine's trace stream; see `scd_trace::sink`).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("type", Json::Str("sweep_run".into()))
            .with("index", Json::U64(self.index as u64))
            .with("id", Json::Str(self.id.clone()))
            .with("cycles", Json::U64(self.cycles))
            .with("run_seconds", Json::F64(self.run_seconds))
            .with("completed", Json::U64(self.completed as u64))
            .with("total", Json::U64(self.total as u64))
            .with("elapsed", Json::F64(self.elapsed))
            .with("eta", Json::F64(self.eta))
    }

    /// One-line progress rendering for a terminal.
    pub fn render(&self) -> String {
        format!(
            "{:>3}/{} {:<44} {:>7.1}s elapsed, eta {:>6.1}s",
            self.completed, self.total, self.id, self.elapsed, self.eta
        )
    }
}

/// The streamed `sweep_begin` record: grid size and worker count.
pub fn sweep_begin_record(spec: &SweepSpec, jobs: usize) -> Json {
    Json::obj()
        .with("type", Json::Str("sweep_begin".into()))
        .with("total", Json::U64(spec.descriptors().len() as u64))
        .with("jobs", Json::U64(jobs as u64))
        .with(
            "apps",
            Json::Arr(
                spec.apps
                    .iter()
                    .map(|a| Json::Str(a.clone()))
                    .collect(),
            ),
        )
}

/// The streamed `sweep_end` record: aggregate wall-clock accounting.
pub fn sweep_end_record(outcome: &SweepOutcome) -> Json {
    Json::obj()
        .with("type", Json::Str("sweep_end".into()))
        .with("runs", Json::U64(outcome.runs.len() as u64))
        .with("jobs", Json::U64(outcome.jobs as u64))
        .with("wall_seconds", Json::F64(outcome.wall_seconds))
        .with("serial_seconds", Json::F64(outcome.serial_seconds()))
}

/// Runs the grid on `jobs` worker threads (clamped to the grid size;
/// `<= 1` runs inline on the caller's thread).
///
/// Determinism: each worker constructs its own `Machine` from the shared,
/// immutable spec/app table, so per-run statistics cannot depend on
/// scheduling; the merge below is by descriptor index, so the output order
/// cannot either.
pub fn run_sweep(spec: &SweepSpec, jobs: usize) -> SweepOutcome {
    run_sweep_with(spec, jobs, &mut |_| {})
}

/// [`run_sweep`] with a progress callback, invoked once per completed
/// run — always from the caller's thread (the merge loop), never from a
/// worker, so the callback needs no synchronization and arrives in
/// completion order.
pub fn run_sweep_with(
    spec: &SweepSpec,
    jobs: usize,
    on_run: &mut dyn FnMut(SweepProgress),
) -> SweepOutcome {
    let t0 = Instant::now();
    let apps = spec.generate_apps();
    let descs = spec.descriptors();
    let n = descs.len();
    let workers = jobs.max(1).min(n.max(1));
    let mut slots: Vec<Option<SweepRun>> = (0..n).map(|_| None).collect();
    let mut completed = 0usize;
    let progress = |run: &SweepRun, completed: usize| {
        let elapsed = t0.elapsed().as_secs_f64();
        let eta = elapsed / completed as f64 * (n - completed) as f64;
        SweepProgress {
            index: run.desc.index,
            id: run.desc.id.clone(),
            cycles: run.stats.cycles,
            run_seconds: run.wall_seconds,
            completed,
            total: n,
            elapsed,
            eta,
        }
    };

    if workers <= 1 {
        for desc in descs {
            let run = execute(desc, &apps, spec);
            completed += 1;
            on_run(progress(&run, completed));
            let index = run.desc.index;
            slots[index] = Some(run);
        }
    } else {
        // Job pool: descriptors are fed through a channel drained by all
        // workers (receiver shared behind a mutex — the textbook
        // work-queue shape without external crates); finished runs come
        // back on a second channel and are merged by descriptor index.
        let (job_tx, job_rx) = mpsc::channel::<RunDescriptor>();
        for desc in descs {
            job_tx.send(desc).expect("queue sweep job");
        }
        drop(job_tx);
        let job_rx = Mutex::new(job_rx);
        let (res_tx, res_rx) = mpsc::channel::<SweepRun>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let res_tx = res_tx.clone();
                let (job_rx, apps, spec) = (&job_rx, &apps, spec);
                scope.spawn(move || loop {
                    // Take the next job while holding the lock, then run
                    // it with the lock released.
                    let desc = match job_rx.lock().expect("job queue poisoned").try_recv() {
                        Ok(desc) => desc,
                        Err(mpsc::TryRecvError::Empty | mpsc::TryRecvError::Disconnected) => {
                            break;
                        }
                    };
                    if res_tx.send(execute(desc, apps, spec)).is_err() {
                        break;
                    }
                });
            }
            drop(res_tx);
            // The merge loop is the only consumer, so progress callbacks
            // fire on the caller's thread, in completion order.
            for run in res_rx {
                completed += 1;
                on_run(progress(&run, completed));
                let index = run.desc.index;
                slots[index] = Some(run);
            }
        });
    }

    SweepOutcome {
        runs: slots
            .into_iter()
            .map(|slot| slot.expect("worker dropped a sweep job"))
            .collect(),
        jobs: workers,
        wall_seconds: t0.elapsed().as_secs_f64(),
        apps,
    }
}

/// Builds the aggregated `scd-sweep/v1` document.
///
/// Everything except the `timing` section is a pure function of the grid,
/// so two sweeps of the same spec produce byte-identical text whatever
/// `--jobs` was. `include_timing` adds the wall-clock section (total,
/// serial-equivalent, speedup, per-run seconds) — inherently
/// non-deterministic, so determinism checks pass `false` (the CLI flag is
/// `--no-timing`).
pub fn sweep_document(outcome: &SweepOutcome, spec: &SweepSpec, include_timing: bool) -> Json {
    // A pure-DASH grid (every legacy sweep) keeps the document
    // byte-identical to the pre-protocol schema: the `protocols` grid key
    // and per-run `protocol` meta appear only once the grid crosses
    // protocol families.
    let multi_protocol = spec.protocols != [ProtocolKind::Dash];
    let mut grid = Json::obj()
        .with(
            "apps",
            Json::Arr(spec.apps.iter().map(|a| Json::Str(a.clone())).collect()),
        )
        .with(
            "schemes",
            Json::Arr(
                spec.schemes
                    .iter()
                    .map(|s| Json::Str(s.name(spec.clusters)))
                    .collect(),
            ),
        )
        .with(
            "sparse",
            Json::Arr(spec.sparse.iter().map(|v| Json::Str(v.spec())).collect()),
        )
        .with(
            "seeds",
            Json::Arr(spec.seeds.iter().map(|&s| Json::U64(s)).collect()),
        )
        .with("scale", Json::F64(spec.scale))
        .with("clusters", Json::U64(spec.clusters as u64))
        .with("runs", Json::U64(outcome.runs.len() as u64));
    if multi_protocol {
        grid = grid.with(
            "protocols",
            Json::Arr(
                spec.protocols
                    .iter()
                    .map(|p| Json::Str(p.name().into()))
                    .collect(),
            ),
        );
    }

    let runs = outcome
        .runs
        .iter()
        .map(|run| {
            let app = &outcome.apps[run.desc.app_idx];
            let mut meta = Json::obj()
                .with("id", Json::Str(run.desc.id.clone()))
                .with("app", Json::Str(app.name.into()))
                .with("scheme", Json::Str(run.desc.scheme_label.clone()))
                .with("sparse", Json::Str(run.desc.sparse.spec()));
            if multi_protocol {
                meta = meta.with("protocol", Json::Str(run.desc.protocol.name().into()));
            }
            let meta = meta
                .with("seed", Json::U64(run.desc.seed))
                .with("shared_refs", Json::U64(app.shared_refs()))
                .with("shared_bytes", Json::U64(app.shared_bytes));
            run.stats
                .to_json_document(Some(meta), None, run.attribution.clone(), run.trace.clone(), None)
        })
        .collect();

    let timing = if include_timing {
        // Host-side throughput: simulated work (shared references issued,
        // simulator events processed) per second of worker wall-clock.
        // These live in the timing section — not in the per-run stats
        // documents — precisely because they are host-dependent; the rest
        // of the document stays a pure function of the grid.
        let rate = |count: u64, secs: f64| {
            Json::F64(if secs > 0.0 { count as f64 / secs } else { 0.0 })
        };
        let per_run = outcome
            .runs
            .iter()
            .map(|run| {
                let refs = outcome.apps[run.desc.app_idx].shared_refs();
                let events = run.stats.events_delivered;
                Json::obj()
                    .with("id", Json::Str(run.desc.id.clone()))
                    .with("seconds", Json::F64(run.wall_seconds))
                    .with("refs_per_sec", rate(refs, run.wall_seconds))
                    .with("events_per_sec", rate(events, run.wall_seconds))
            })
            .collect();
        let serial = outcome.serial_seconds();
        let total_refs: u64 = outcome
            .runs
            .iter()
            .map(|run| outcome.apps[run.desc.app_idx].shared_refs())
            .sum();
        let total_events: u64 = outcome.runs.iter().map(|run| run.stats.events_delivered).sum();
        Json::obj()
            .with("jobs", Json::U64(outcome.jobs as u64))
            .with("shards", Json::U64(spec.shards.max(1) as u64))
            .with("wall_seconds", Json::F64(outcome.wall_seconds))
            .with("serial_seconds", Json::F64(serial))
            .with(
                "speedup",
                Json::F64(if outcome.wall_seconds > 0.0 {
                    serial / outcome.wall_seconds
                } else {
                    1.0
                }),
            )
            .with("refs_per_sec", rate(total_refs, serial))
            .with("events_per_sec", rate(total_events, serial))
            .with("runs", Json::Arr(per_run))
    } else {
        Json::Null
    };

    Json::obj()
        .with("schema", Json::Str(scd_trace::SWEEP_SCHEMA.into()))
        .with("grid", grid)
        .with("runs", Json::Arr(runs))
        .with("timing", timing)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_spec() -> SweepSpec {
        SweepSpec {
            apps: vec!["lu".into(), "mp3d".into()],
            schemes: vec![Scheme::dir_cv(2, 2), Scheme::dir_nb(2)],
            sparse: vec![
                SparseVariant::Full,
                SparseVariant::Sparse {
                    size_factor: 2,
                    ways: 2,
                    policy: Replacement::Lru,
                },
            ],
            seeds: vec![7],
            protocols: vec![ProtocolKind::Dash],
            scale: 0.02,
            clusters: 4,
            shards: 1,
        }
    }

    #[test]
    fn sparse_variant_spec_round_trips() {
        for spec in ["full", "2:4:rand", "1:8:lru", "4:2:lra"] {
            let v = SparseVariant::parse(spec).unwrap();
            assert_eq!(v.spec(), spec);
            assert_eq!(SparseVariant::parse(&v.spec()).unwrap(), v);
        }
        assert!(SparseVariant::parse("0:4:rand").is_err(), "factor 0");
        assert!(SparseVariant::parse("2:0:rand").is_err(), "ways 0");
        assert!(SparseVariant::parse("2:4:fifo").is_err(), "bad policy");
        assert!(SparseVariant::parse("2:4").is_err(), "missing field");
    }

    #[test]
    fn canonical_sparse_keeps_trajectory_file_names() {
        let label = format!(
            "{}{}",
            Scheme::dir_cv(4, 4).name(32),
            CANONICAL_SPARSE.label_suffix()
        );
        assert_eq!(
            crate::runner::bench_json_name("mp3d", &label),
            "BENCH_mp3d_dir4cv4_sparse.json"
        );
        // Non-canonical variants must not collide with the canonical name.
        let other = SparseVariant::Sparse {
            size_factor: 4,
            ways: 8,
            policy: Replacement::Lru,
        };
        assert_eq!(other.label_suffix(), " Sparse 4x 8w lru");
    }

    #[test]
    fn descriptor_order_is_canonical_and_complete() {
        let spec = micro_spec();
        let descs = spec.descriptors();
        assert_eq!(
            descs.len(),
            spec.apps.len() * spec.schemes.len() * spec.sparse.len() * spec.seeds.len()
        );
        for (i, d) in descs.iter().enumerate() {
            assert_eq!(d.index, i);
        }
        // Apps-outer ordering: the first half is all-LU.
        assert!(descs[..4].iter().all(|d| d.app == "lu"));
        assert!(descs[4..].iter().all(|d| d.app == "mp3d"));
        assert_eq!(descs[0].id, "lu/dir2cv2/s7");
        assert_eq!(descs[1].id, "lu/dir2cv2_sparse_2x_2w_lru/s7");
    }

    /// Multi-protocol grids multiply the descriptor list per protocol,
    /// give non-DASH points their own id segment, and stamp the grid and
    /// per-run meta with the protocol — while a pure-DASH grid emits the
    /// exact legacy document (no `protocols`/`protocol` keys at all).
    #[test]
    fn protocol_axis_multiplies_the_grid_and_stamps_the_document() {
        let mut spec = micro_spec();
        spec.apps = vec!["lu".into()];
        spec.schemes = vec![Scheme::dir_cv(2, 2)];
        spec.sparse = vec![SparseVariant::Full];
        let legacy = sweep_document(&run_sweep(&spec, 1), &spec, false);
        assert!(
            legacy.get("grid").unwrap().get("protocols").is_none(),
            "single-protocol grids must keep the legacy schema"
        );
        let legacy_meta = legacy.get("runs").and_then(Json::as_arr).unwrap()[0]
            .get("run")
            .unwrap();
        assert!(legacy_meta.get("protocol").is_none());

        spec.protocols = vec![ProtocolKind::Dash, ProtocolKind::Tardis, ProtocolKind::Dls];
        let descs = spec.descriptors();
        assert_eq!(descs.len(), 3);
        assert_eq!(descs[0].id, "lu/dir2cv2/s7");
        assert_eq!(descs[1].id, "lu/tardis/dir2cv2/s7");
        assert_eq!(descs[2].id, "lu/dls/dir2cv2/s7");
        let outcome = run_sweep(&spec, 1);
        let doc = sweep_document(&outcome, &spec, false);
        let grid_protocols = doc.get("grid").unwrap().get("protocols").unwrap();
        assert_eq!(
            grid_protocols.as_arr().unwrap().len(),
            3,
            "grid must list the protocol axis"
        );
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        for (run, expect) in runs.iter().zip(["dash", "tardis", "dls"]) {
            assert_eq!(
                run.get("run").unwrap().get("protocol").and_then(Json::as_str),
                Some(expect)
            );
        }
        // All three ran the same reference stream: identical shared-ref
        // totals, protocol-specific traffic.
        let refs: Vec<u64> = outcome
            .runs
            .iter()
            .map(|r| r.stats.shared_reads + r.stats.shared_writes)
            .collect();
        assert_eq!(refs[0], refs[1]);
        assert_eq!(refs[0], refs[2]);
        assert!(outcome.runs[1].stats.tardis.is_some(), "tardis counters");
        assert!(outcome.runs[2].stats.dls.is_some(), "dls counters");
    }

    /// The engine's core promise: the aggregated document (timing aside)
    /// is byte-identical however many workers ran the grid.
    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        let spec = micro_spec();
        let serial = run_sweep(&spec, 1);
        let parallel = run_sweep(&spec, 3);
        assert_eq!(serial.jobs, 1);
        assert!(parallel.jobs > 1);
        let a = sweep_document(&serial, &spec, false).to_string();
        let b = sweep_document(&parallel, &spec, false).to_string();
        assert_eq!(a, b);
    }

    /// `--shards` is execution policy: partitioning each machine across
    /// worker threads leaves the deterministic document byte-identical,
    /// and composes with `--jobs`.
    #[test]
    fn sharded_machines_leave_the_sweep_document_byte_identical() {
        let spec = micro_spec();
        let baseline = sweep_document(&run_sweep(&spec, 1), &spec, false).to_string();
        let mut sharded = spec.clone();
        sharded.shards = 2;
        let outcome = run_sweep(&sharded, 2);
        assert_eq!(
            sweep_document(&outcome, &sharded, false).to_string(),
            baseline
        );
    }

    /// Progress callbacks arrive once per run with a monotone `completed`
    /// count, cover every descriptor index exactly once, and leave the
    /// deterministic document untouched.
    #[test]
    fn progress_callbacks_cover_the_grid_without_perturbing_the_document() {
        let spec = micro_spec();
        let baseline = sweep_document(&run_sweep(&spec, 1), &spec, false).to_string();
        for jobs in [1usize, 3] {
            let mut events: Vec<SweepProgress> = Vec::new();
            let outcome = run_sweep_with(&spec, jobs, &mut |p| events.push(p));
            let n = outcome.runs.len();
            assert_eq!(events.len(), n, "one callback per run (jobs={jobs})");
            let mut indices: Vec<usize> = events.iter().map(|p| p.index).collect();
            indices.sort_unstable();
            assert_eq!(indices, (0..n).collect::<Vec<_>>(), "jobs={jobs}");
            for (i, p) in events.iter().enumerate() {
                assert_eq!(p.completed, i + 1, "completion count is 1..=n");
                assert_eq!(p.total, n);
                assert_eq!(p.id, outcome.runs[p.index].desc.id);
                assert_eq!(p.cycles, outcome.runs[p.index].stats.cycles);
                assert!(p.elapsed >= 0.0 && p.eta >= 0.0);
                let j = p.to_json();
                assert_eq!(j.get("type").and_then(Json::as_str), Some("sweep_run"));
                assert_eq!(
                    j.get("completed").and_then(Json::as_u64),
                    Some((i + 1) as u64)
                );
                assert!(p.render().contains(&p.id));
            }
            // The last callback always reports a zero remaining estimate.
            assert_eq!(events.last().unwrap().eta, 0.0);
            assert_eq!(
                sweep_document(&outcome, &spec, false).to_string(),
                baseline,
                "progress observation must not perturb the document (jobs={jobs})"
            );
        }
    }

    #[test]
    fn sweep_stream_records_carry_grid_shape() {
        let spec = micro_spec();
        let begin = sweep_begin_record(&spec, 2);
        assert_eq!(begin.get("type").and_then(Json::as_str), Some("sweep_begin"));
        assert_eq!(
            begin.get("total").and_then(Json::as_u64),
            Some(spec.descriptors().len() as u64)
        );
        assert_eq!(begin.get("jobs").and_then(Json::as_u64), Some(2));
        let outcome = run_sweep(&spec, 2);
        let end = sweep_end_record(&outcome);
        assert_eq!(end.get("type").and_then(Json::as_str), Some("sweep_end"));
        assert_eq!(
            end.get("runs").and_then(Json::as_u64),
            Some(outcome.runs.len() as u64)
        );
        assert!(end.get("wall_seconds").and_then(Json::as_f64).unwrap() >= 0.0);
    }

    #[test]
    fn timing_section_reports_speedup_inputs() {
        let spec = micro_spec();
        let outcome = run_sweep(&spec, 2);
        let doc = sweep_document(&outcome, &spec, true);
        let timing = doc.get("timing").unwrap();
        assert_eq!(timing.get("jobs").and_then(Json::as_u64), Some(2));
        assert!(timing.get("wall_seconds").and_then(Json::as_f64).unwrap() >= 0.0);
        assert_eq!(
            timing.get("runs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(outcome.runs.len())
        );
        // Throughput rates: present in aggregate and per run, and positive
        // (every grid point issues shared references and pops events).
        assert!(timing.get("refs_per_sec").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(timing.get("events_per_sec").and_then(Json::as_f64).unwrap() > 0.0);
        for run in timing.get("runs").and_then(Json::as_arr).unwrap() {
            assert!(run.get("refs_per_sec").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(run.get("events_per_sec").and_then(Json::as_f64).unwrap() > 0.0);
        }
        // And the deterministic variant nulls the whole section out.
        let bare = sweep_document(&outcome, &spec, false);
        assert_eq!(bare.get("timing"), Some(&Json::Null));
    }
}
