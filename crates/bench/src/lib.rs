//! # bench — experiment harness regenerating every table and figure
//!
//! One binary per artifact (see DESIGN.md §3 for the index):
//!
//! | binary | artifact |
//! |---|---|
//! | `fig2` | Figure 2a/2b — invalidations vs. sharers per scheme |
//! | `table1` | Table 1 — machine configurations and directory overhead |
//! | `table2` | Table 2 — application characteristics |
//! | `fig3_6` | Figures 3–6 — LocusRoute invalidation distributions |
//! | `fig7_10` | Figures 7–10 — exec time + traffic per scheme per app |
//! | `fig11_12` | Figures 11/12 — sparse directory size-factor sweeps |
//! | `fig13` | Figure 13 — sparse associativity sweep (LU) |
//! | `fig14` | Figure 14 — sparse replacement-policy sweep (LU) |
//! | `ablation_locks` | §7 queue-lock grant-to-region behaviour |
//! | `ablation_pending` | home pending-queue depth (NAK-replacement design) |
//! | `ablation_region` | coarse-vector region-size sensitivity |
//!
//! Each binary prints the paper-style table/chart to stdout and writes CSV
//! under `results/`. Criterion benches in `benches/` time the hot paths.

pub mod runner;
pub mod sweep;

pub use runner::{
    bench_json_name, bench_point_document, run_app, run_app_attributed, run_app_attributed_traced,
    run_app_with,
    scheme_suite, slug, sparse_config, sparse_config_with, write_bench_json,
    write_bench_json_in, write_results, SPARSE_CACHE_RATIO,
};
pub use sweep::{
    build_config, generate_app, run_sweep, run_sweep_with, sweep_begin_record, sweep_document,
    sweep_end_record, RunDescriptor, SparseVariant, SweepOutcome, SweepProgress, SweepRun,
    SweepSpec, APP_NAMES, CANONICAL_SPARSE,
};
