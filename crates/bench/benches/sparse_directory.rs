//! Sparse-directory throughput: lookup/allocate streams with varying
//! associativity and replacement policy — the per-transaction cost a home
//! node pays for the §4.2 organization.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scd_core::{Replacement, Scheme, SparseDirectory};
use scd_sim::SimRng;

fn bench_allocate_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse/allocate_stream_4k");
    for policy in [Replacement::Lru, Replacement::Random, Replacement::Lra] {
        for ways in [1usize, 4] {
            let id = format!("{policy:?}/assoc{ways}");
            g.bench_with_input(BenchmarkId::from_parameter(id), &(policy, ways), |b, &(p, w)| {
                // Key stream with locality over 4x the directory's capacity.
                let mut rng = SimRng::new(42);
                let keys: Vec<u64> = (0..4096).map(|_| rng.below(1024)).collect();
                b.iter(|| {
                    let mut sd = SparseDirectory::new(Scheme::FullVector, 32, 256, w, p, 7);
                    for (t, &k) in keys.iter().enumerate() {
                        match sd.allocate(k, t as u64) {
                            scd_core::sparse::Allocation::Hit(e)
                            | scd_core::sparse::Allocation::Inserted(e) => {
                                e.add_sharer((k % 32) as u16);
                            }
                            scd_core::sparse::Allocation::Replaced { entry, .. } => {
                                entry.add_sharer((k % 32) as u16);
                            }
                        }
                    }
                    black_box(sd.stats())
                })
            });
        }
    }
    g.finish();
}

fn bench_lookup_hit(c: &mut Criterion) {
    c.bench_function("sparse/lookup_hit", |b| {
        let mut sd =
            SparseDirectory::new(Scheme::FullVector, 32, 256, 4, Replacement::Lru, 7);
        for k in 0..256u64 {
            if let scd_core::sparse::Allocation::Inserted(e) = sd.allocate(k, k) {
                e.add_sharer(1);
            }
        }
        let mut t = 1000u64;
        b.iter(|| {
            t += 1;
            black_box(sd.lookup(black_box(t % 256), t).is_some())
        })
    });
}

criterion_group!(benches, bench_allocate_stream, bench_lookup_hit);
criterion_main!(benches);
