//! Guard for the observability overhead contract: with tracing disabled,
//! a full machine run must cost within 2% of a configuration that never
//! mentions tracing at all (`cfg.trace = None`). The streaming pipeline
//! rides on the same contract: a machine with no sink attached (the
//! default — `StreamState::inert`) adds one boolean test per hook site
//! and must stay under the same guard.
//!
//! All configurations take the inert path — an `Option` unwrap at
//! construction and one boolean test per hook site — so the honest
//! expectation is ~0% overhead. The guard compares min-of-N wall times
//! with the variants interleaved (so clock drift and frequency
//! scaling hit both equally) and fails loudly if the contract is broken.

use criterion::{black_box, criterion_group, Criterion};
use scd_apps::{lu, AppRun, LuParams};
use scd_machine::{Machine, MachineConfig};
use scd_trace::TraceConfig;
use std::time::Instant;

fn test_app() -> AppRun {
    lu(
        &LuParams {
            n: 24,
            update_cost: 4,
        },
        32,
        1,
    )
}

fn run_once(app: &AppRun, trace: Option<TraceConfig>) -> u64 {
    let mut cfg = MachineConfig::paper_32();
    if let Some(t) = trace {
        cfg = cfg.with_trace(t);
    }
    Machine::new(cfg, app.boxed_programs()).run().cycles
}

/// The streaming-disabled path: a machine that never had a sink attached.
/// Goes through `try_run` (the streaming hook sites live in its event
/// loop) after asserting the stream really is inert.
fn run_once_unstreamed(app: &AppRun) -> u64 {
    let mut machine = Machine::new(MachineConfig::paper_32(), app.boxed_programs());
    assert!(!machine.stream_active(), "no sink was ever attached");
    machine.try_run().expect("run must quiesce").cycles
}

fn bench_disabled_path(c: &mut Criterion) {
    let app = test_app();
    let mut g = c.benchmark_group("machine/trace_overhead");
    g.bench_function("no-trace-field", |b| {
        b.iter(|| black_box(run_once(&app, None)))
    });
    g.bench_function("trace-config-none", |b| {
        b.iter(|| black_box(run_once(&app, Some(TraceConfig::none()))))
    });
    g.bench_function("streaming-unattached", |b| {
        b.iter(|| black_box(run_once_unstreamed(&app)))
    });
    g.finish();
}

/// The < 2% contract, asserted. Min-of-N is robust to one-sided noise
/// (interrupts and scheduling only ever make a run slower), which is what
/// makes a tight ratio assertion viable on shared CI machines.
fn overhead_guard() {
    // Each round is ~5 ms per variant; 31 interleaved rounds spread the
    // samples over enough wall time that every variant's min gets a shot
    // at a quiet slice of a loaded machine.
    const ROUNDS: usize = 31;
    let app = test_app();
    // Warm both paths (page faults, lazy allocations) before timing.
    run_once(&app, None);
    run_once(&app, Some(TraceConfig::none()));
    run_once_unstreamed(&app);
    let mut baseline = u128::MAX;
    let mut disabled = u128::MAX;
    let mut unstreamed = u128::MAX;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        black_box(run_once(&app, None));
        baseline = baseline.min(t.elapsed().as_nanos());
        let t = Instant::now();
        black_box(run_once(&app, Some(TraceConfig::none())));
        disabled = disabled.min(t.elapsed().as_nanos());
        let t = Instant::now();
        black_box(run_once_unstreamed(&app));
        unstreamed = unstreamed.min(t.elapsed().as_nanos());
    }
    let ratio = disabled as f64 / baseline as f64;
    let stream_ratio = unstreamed as f64 / baseline as f64;
    println!(
        "trace_overhead guard: min {baseline} ns (no field) vs {disabled} ns \
         (TraceConfig::none) vs {unstreamed} ns (streaming unattached), \
         ratios {ratio:.4} / {stream_ratio:.4}"
    );
    assert!(
        ratio < 1.02,
        "disabled-path tracing overhead {:.2}% breaks the < 2% contract",
        (ratio - 1.0) * 100.0
    );
    assert!(
        stream_ratio < 1.02,
        "disabled-streaming overhead {:.2}% breaks the < 2% contract",
        (stream_ratio - 1.0) * 100.0
    );
}

criterion_group!(benches, bench_disabled_path);

// A custom `main` instead of `criterion_main!`: the guard's assertion must
// run after the reported benchmarks.
fn main() {
    benches();
    overhead_guard();
}
