//! Mesh interconnect microbenchmarks: distance/routing arithmetic and the
//! per-message accounting of `Network::send` (called once per protocol
//! message in the simulator).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scd_noc::{LatencyModel, Mesh, Network};
use scd_sim::{EventQueue, SimRng};

fn bench_mesh(c: &mut Criterion) {
    let mesh = Mesh::near_square(256);
    c.bench_function("mesh/distance_all_pairs_256", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for a in 0..mesh.nodes() {
                for d in 0..mesh.nodes() {
                    acc += mesh.distance(a, d);
                }
            }
            black_box(acc)
        })
    });
    c.bench_function("mesh/route_diameter_256", |b| {
        // `route` is lazy now: sum the walked nodes so the whole
        // dimension-ordered traversal is actually executed.
        b.iter(|| {
            black_box(
                mesh.route(black_box(0), black_box(mesh.nodes() - 1))
                    .sum::<usize>(),
            )
        })
    });
}

fn bench_network_send(c: &mut Criterion) {
    c.bench_function("network/send_10k", |b| {
        let mut rng = SimRng::new(3);
        let pairs: Vec<(usize, usize)> = (0..10_000)
            .map(|_| (rng.index(32), rng.index(32)))
            .collect();
        b.iter(|| {
            let mut net = Network::new(
                32,
                LatencyModel::Mesh {
                    fixed: 13,
                    per_hop: 1,
                },
            );
            let mut acc = 0u64;
            for (i, &(s, d)) in pairs.iter().enumerate() {
                acc += net.send(i as u64, s, d);
            }
            black_box(acc)
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_pop_10k", |b| {
        let mut rng = SimRng::new(9);
        let delays: Vec<u64> = (0..10_000).map(|_| rng.below(500)).collect();
        b.iter(|| {
            let mut q = EventQueue::new();
            for (i, &d) in delays.iter().enumerate() {
                q.schedule(d, i);
            }
            let mut acc = 0u64;
            while let Some((t, _)) = q.pop() {
                acc ^= t;
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_mesh, bench_network_send, bench_event_queue);
criterion_main!(benches);
