//! End-to-end simulator throughput: full DASH machine runs of a small LU
//! problem per directory scheme, plus a sparse-directory configuration.
//! This is the cost of one data point in Figures 7–14.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scd_apps::{lu, LuParams};
use scd_core::{Replacement, Scheme};
use scd_machine::{Machine, MachineConfig};

fn bench_machine(c: &mut Criterion) {
    let app = lu(
        &LuParams {
            n: 24,
            update_cost: 4,
        },
        32,
        1,
    );
    let mut g = c.benchmark_group("machine/lu24_32procs");
    g.sample_size(10);
    for (name, scheme) in [
        ("Dir32", Scheme::FullVector),
        ("Dir3CV2", Scheme::dir_cv(3, 2)),
        ("Dir3B", Scheme::dir_b(3)),
        ("Dir3NB", Scheme::dir_nb(3)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, &s| {
            b.iter(|| {
                let cfg = MachineConfig::paper_32().with_scheme(s);
                let stats = Machine::new(cfg, app.boxed_programs()).run();
                black_box(stats.cycles)
            })
        });
    }
    g.bench_function("Dir32-sparse-f1", |b| {
        b.iter(|| {
            let cfg = MachineConfig::paper_32()
                .with_scaled_caches(512)
                .with_sparse(16, 4, Replacement::Random);
            let stats = Machine::new(cfg, app.boxed_programs()).run();
            black_box(stats.cycles)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
