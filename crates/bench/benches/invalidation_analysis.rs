//! Figure-2 Monte-Carlo throughput: events per second of the invalidation
//! analysis, per scheme (this is what bounds how smooth the published
//! curves can be).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scd_core::analysis::average_invalidations;
use scd_core::Scheme;

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2/average_invalidations_1k_events");
    for (name, scheme) in [
        ("Dir32", Scheme::dir_n()),
        ("Dir3B", Scheme::dir_b(3)),
        ("Dir3X", Scheme::dir_x(3)),
        ("Dir3CV2", Scheme::dir_cv(3, 2)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, &s| {
            b.iter(|| black_box(average_invalidations(s, 32, black_box(12), 1_000, 1)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
