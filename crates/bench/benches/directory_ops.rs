//! Hot-path microbenchmarks for directory entries: sharer recording,
//! invalidation-target computation, and the write-reset, per scheme. These
//! operations run once per directory transaction in the simulator (and per
//! memory transaction in hardware), so they are the innermost loop of every
//! experiment.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scd_core::{DirEntry, NodeSet, Scheme};

const P: usize = 64;

fn schemes() -> Vec<(&'static str, Scheme)> {
    vec![
        ("Dir64", Scheme::FullVector),
        ("Dir3B", Scheme::dir_b(3)),
        ("Dir3NB", Scheme::dir_nb(3)),
        ("Dir3X", Scheme::dir_x(3)),
        ("Dir3CV2", Scheme::dir_cv(3, 2)),
        ("Dir8CV4", Scheme::dir_cv(8, 4)),
    ]
}

fn bench_add_sharer(c: &mut Criterion) {
    let mut g = c.benchmark_group("entry/add_sharer_x16");
    for (name, scheme) in schemes() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, &s| {
            b.iter(|| {
                let mut e = DirEntry::new(s, P);
                for n in 0..16u16 {
                    black_box(e.add_sharer(black_box(n * 3 % P as u16)));
                }
                e
            })
        });
    }
    g.finish();
}

fn bench_invalidation_targets(c: &mut Criterion) {
    let mut g = c.benchmark_group("entry/invalidation_targets");
    for (name, scheme) in schemes() {
        // Pre-overflowed entry: the expensive representation.
        let mut e = DirEntry::new(scheme, P);
        for n in [1u16, 9, 17, 25, 33, 41, 49, 57] {
            e.add_sharer(n);
        }
        g.bench_with_input(BenchmarkId::from_parameter(name), &e, |b, e| {
            b.iter(|| black_box(e.invalidation_targets(black_box(5))))
        });
    }
    g.finish();
}

fn bench_write_reset(c: &mut Criterion) {
    let mut g = c.benchmark_group("entry/make_dirty_after_overflow");
    for (name, scheme) in schemes() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, &s| {
            b.iter(|| {
                let mut e = DirEntry::new(s, P);
                for n in 0..8u16 {
                    e.add_sharer(n * 7 % P as u16);
                }
                e.make_dirty(black_box(13));
                e
            })
        });
    }
    g.finish();
}

fn bench_nodeset(c: &mut Criterion) {
    let mut g = c.benchmark_group("nodeset");
    g.bench_function("insert_iter_1024", |b| {
        b.iter(|| {
            let mut s = NodeSet::new(1024);
            for n in (0..1024u16).step_by(3) {
                s.insert(n);
            }
            black_box(s.iter().count())
        })
    });
    g.bench_function("union_difference_1024", |b| {
        let a = NodeSet::from_iter(1024, (0..1024).step_by(2).map(|n| n as u16));
        let d = NodeSet::from_iter(1024, (0..1024).step_by(3).map(|n| n as u16));
        b.iter(|| {
            let mut x = a.clone();
            x.union_with(&d);
            x.difference_with(black_box(&d));
            x
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_add_sharer,
    bench_invalidation_targets,
    bench_write_reset,
    bench_nodeset
);
criterion_main!(benches);
