//! Hot-path microbenchmarks for the structures every simulated cycle
//! leans on: the timing-wheel event queue, the message arena, and
//! word-level `NodeSet` fanout — plus the ≥2x contract the wheel makes
//! against the binary heap it replaced.
//!
//! The queue benchmark models the simulator's steady state, not a bulk
//! load: a bounded population of in-flight events where each pop
//! schedules a successor a short delay ahead (network latencies and bus
//! timings are all well under a window). That churn is exactly the
//! pattern the wheel turns into O(1) bucket pushes and pops, while a
//! binary heap pays O(log n) comparisons with cache-hostile sift paths
//! on every operation.

use criterion::{black_box, criterion_group, Criterion};
use scd_core::NodeSet;
use scd_protocol::{Msg, MsgArena, MsgKind};
use scd_sim::{EventQueue, SimRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Events processed per queue-churn run.
const CHURN_EVENTS: usize = 1_000_000;
/// In-flight events maintained during the churn.
const CHURN_POPULATION: usize = 512;

/// Pre-generated delay table, sim-realistic: mostly short hops with an
/// occasional far-future timer, fixed seed so every variant replays the
/// same schedule.
fn delays() -> Vec<u64> {
    let mut rng = SimRng::new(17);
    (0..CHURN_EVENTS)
        .map(|_| match rng.below(100) {
            0..=79 => rng.below(64),           // bus/dir timings
            80..=97 => 64 + rng.below(448),    // cross-mesh latencies
            _ => 4_000 + rng.below(60_000),    // watchdogs, far timers
        })
        .collect()
}

/// Runs the churn on the timing-wheel queue; returns a checksum so the
/// heap model below can be verified against it.
fn churn_wheel(delays: &[u64]) -> u64 {
    let mut q = EventQueue::new();
    for (i, &d) in delays.iter().take(CHURN_POPULATION).enumerate() {
        q.schedule(d, i as u32);
    }
    let mut next = CHURN_POPULATION;
    let mut acc = 0u64;
    while let Some((t, ev)) = q.pop() {
        acc = acc.wrapping_mul(31).wrapping_add(t ^ u64::from(ev));
        if next < delays.len() {
            q.schedule(delays[next], next as u32);
            next += 1;
        }
    }
    acc
}

/// The exact structure the wheel replaced: a `BinaryHeap` of
/// `Reverse<(time, seq, event)>` with a monotone clock.
struct HeapQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    now: u64,
    seq: u64,
}

impl HeapQueue {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
        }
    }

    fn schedule(&mut self, delay: u64, ev: u32) {
        self.heap.push(Reverse((self.now + delay, self.seq, ev)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let Reverse((t, _, ev)) = self.heap.pop()?;
        self.now = t;
        Some((t, ev))
    }
}

fn churn_heap(delays: &[u64]) -> u64 {
    let mut q = HeapQueue::new();
    for (i, &d) in delays.iter().take(CHURN_POPULATION).enumerate() {
        q.schedule(d, i as u32);
    }
    let mut next = CHURN_POPULATION;
    let mut acc = 0u64;
    while let Some((t, ev)) = q.pop() {
        acc = acc.wrapping_mul(31).wrapping_add(t ^ u64::from(ev));
        if next < delays.len() {
            q.schedule(delays[next], next as u32);
            next += 1;
        }
    }
    acc
}

fn bench_event_queue(c: &mut Criterion) {
    let delays = delays();
    assert_eq!(
        churn_wheel(&delays),
        churn_heap(&delays),
        "wheel and heap must deliver the same order before timing them"
    );
    let mut g = c.benchmark_group("sim_hot_path/queue_churn_1m");
    g.bench_function("timing_wheel", |b| b.iter(|| black_box(churn_wheel(&delays))));
    g.bench_function("binary_heap", |b| b.iter(|| black_box(churn_heap(&delays))));
    g.finish();
}

fn sample_msg(i: u64) -> Msg {
    Msg {
        src: (i % 31) as usize,
        dst: (i % 29) as usize,
        kind: MsgKind::ReadReq { block: i },
    }
}

fn bench_arena(c: &mut Criterion) {
    const OPS: u64 = 1_000_000;
    const LIVE: usize = 256;
    let mut g = c.benchmark_group("sim_hot_path/arena_churn_1m");
    // Slab with free-list reuse: steady-state allocs touch one recycled
    // slot and never call the global allocator.
    g.bench_function("msg_arena", |b| {
        b.iter(|| {
            let mut arena = MsgArena::with_capacity(LIVE);
            let mut live = Vec::with_capacity(LIVE);
            let mut acc = 0u64;
            for i in 0..OPS {
                live.push(arena.alloc(sample_msg(i)));
                if live.len() == LIVE {
                    for r in live.drain(..) {
                        let m = arena.take(r).unwrap();
                        acc = acc.wrapping_add(m.kind.block().unwrap_or(0));
                    }
                }
            }
            black_box(acc)
        })
    });
    // What `Ev::Deliver(Msg)`-by-value effectively did per message once
    // boxed: one heap allocation and free per in-flight payload.
    g.bench_function("boxed", |b| {
        b.iter(|| {
            let mut live: Vec<Box<Msg>> = Vec::with_capacity(LIVE);
            let mut acc = 0u64;
            for i in 0..OPS {
                live.push(Box::new(sample_msg(i)));
                if live.len() == LIVE {
                    for m in live.drain(..) {
                        acc = acc.wrapping_add(m.kind.block().unwrap_or(0));
                    }
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_node_set_fanout(c: &mut Criterion) {
    // A 256-cluster coarse-vector sharer superset with every third node a
    // member — the wide-fanout shape §6.1's invalidation distributions
    // come from.
    let mut set = NodeSet::new(256);
    for n in (0..256u16).step_by(3) {
        set.insert(n);
    }
    let mut g = c.benchmark_group("sim_hot_path/node_set_fanout");
    g.bench_function("word_iteration", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                set.for_each_member(|n| acc = acc.wrapping_add(u64::from(n)));
            }
            black_box(acc)
        })
    });
    g.bench_function("contains_scan", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                for n in 0..256u16 {
                    if set.contains(n) {
                        acc = acc.wrapping_add(u64::from(n));
                    }
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("rank_select", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..10_000 {
                let members = set.len();
                for k in 0..members {
                    acc = acc.wrapping_add(set.select(k).unwrap() as usize);
                }
                acc = acc.wrapping_add(set.rank(200));
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// The replacement's contract, asserted: the wheel must churn 1M
/// sim-realistic events at least 2x faster than the binary heap it
/// replaced. Min-of-N on interleaved runs — one-sided noise (interrupts,
/// frequency scaling) only ever slows a run down, so the minimum is a
/// stable estimator even on shared machines.
fn queue_speedup_guard() {
    const ROUNDS: usize = 5;
    let delays = delays();
    // Warm both paths before timing.
    black_box(churn_wheel(&delays));
    black_box(churn_heap(&delays));
    let mut wheel = u128::MAX;
    let mut heap = u128::MAX;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        black_box(churn_wheel(&delays));
        wheel = wheel.min(t.elapsed().as_nanos());
        let t = Instant::now();
        black_box(churn_heap(&delays));
        heap = heap.min(t.elapsed().as_nanos());
    }
    let speedup = heap as f64 / wheel as f64;
    println!(
        "queue_speedup guard: min {wheel} ns (wheel) vs {heap} ns (heap), \
         speedup {speedup:.2}x over {CHURN_EVENTS} events"
    );
    assert!(
        speedup >= 2.0,
        "timing wheel is only {speedup:.2}x the binary heap; the hot-path \
         contract requires >= 2x at 1M events"
    );
}

criterion_group!(benches, bench_event_queue, bench_arena, bench_node_set_fanout);

// A custom `main` instead of `criterion_main!`: the speedup guard must
// run after the reported benchmarks (same shape as trace_overhead).
fn main() {
    benches();
    queue_speedup_guard();
}
