//! Property-based tests for the event queue and RNG.

use proptest::prelude::*;
use scd_sim::{EventQueue, SimRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The reference model: exactly the `BinaryHeap<Reverse<(time, seq)>>`
/// structure the timing wheel replaced. Kept deliberately naive — its
/// correctness is obvious, so agreement transfers confidence to the wheel.
struct HeapModel {
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
    now: u64,
    seq: u64,
}

impl HeapModel {
    fn new() -> Self {
        HeapModel {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
        }
    }

    fn schedule(&mut self, delay: u64, event: usize) {
        let time = self
            .now
            .checked_add(delay)
            .expect("model delays never overflow in these tests");
        self.schedule_at(time, event);
    }

    fn schedule_at(&mut self, time: u64, event: usize) {
        assert!(time >= self.now);
        self.heap.push(Reverse((time, self.seq, event)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, usize)> {
        let Reverse((time, _, event)) = self.heap.pop()?;
        self.now = time;
        Some((time, event))
    }

    fn pending(&self) -> usize {
        self.heap.len()
    }

    fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }
}

/// The `checked_add` overflow diagnosis from PR 4 must survive the wheel
/// rewrite: a delay that would wrap the clock panics with the overflow
/// message, not with "scheduled in the past" or a silent wrap.
#[test]
fn overflow_panic_message_survives_the_wheel() {
    let err = std::panic::catch_unwind(|| {
        let mut q = EventQueue::new();
        q.schedule_at(7, 0u8);
        q.pop();
        q.schedule(u64::MAX, 1u8);
    })
    .expect_err("wrapping delay must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
    assert!(
        msg.contains("overflows the cycle clock"),
        "wrong diagnosis: {msg}"
    );
}

proptest! {
    #[test]
    fn pops_are_time_sorted_and_fifo_within_ties(
        times in prop::collection::vec(0u64..1000, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i);
        }
        let mut last: Option<(u64, usize)> = None;
        let mut count = 0;
        while let Some((t, id)) = q.pop() {
            count += 1;
            prop_assert_eq!(t, times[id], "event delivered at its scheduled time");
            if let Some((lt, lid)) = last {
                prop_assert!(t >= lt, "time order violated");
                if t == lt {
                    prop_assert!(id > lid, "FIFO tie-break violated");
                }
            }
            last = Some((t, id));
        }
        prop_assert_eq!(count, times.len());
        prop_assert_eq!(q.delivered(), times.len() as u64);
    }

    #[test]
    fn interleaved_schedule_and_pop_never_time_travels(
        script in prop::collection::vec((0u64..50, any::<bool>()), 1..200)
    ) {
        let mut q = EventQueue::new();
        let mut popped_at = Vec::new();
        for (delay, do_pop) in script {
            q.schedule(delay, ());
            if do_pop {
                if let Some((t, ())) = q.pop() {
                    popped_at.push(t);
                }
            }
        }
        while let Some((t, ())) = q.pop() {
            popped_at.push(t);
        }
        for w in popped_at.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn rng_below_is_always_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    /// The timing wheel must be observationally identical to the naive
    /// comparison-heap it replaced: same `(time, FIFO)` pop order under
    /// arbitrary schedule/pop interleavings. Delays are drawn to straddle
    /// every interesting regime — zero (same-cycle ties), within the
    /// near-future ring, exactly at and around the ring-size boundary
    /// (wheel wrap), and far-future values that exercise the overflow
    /// cascade.
    #[test]
    fn wheel_matches_binary_heap_model(
        script in prop::collection::vec(
            (
                prop_oneof![
                    Just(0u64),
                    0u64..8,
                    1000u64..1100,      // straddles the 1024-slot boundary
                    4000u64..100_000,   // overflow level, multiple windows out
                ],
                0usize..3, // pops attempted after this schedule
            ),
            1..200,
        )
    ) {
        let mut wheel = EventQueue::new();
        let mut model = HeapModel::new();
        for (id, &(delay, pops)) in script.iter().enumerate() {
            wheel.schedule(delay, id);
            model.schedule(delay, id);
            for _ in 0..pops {
                prop_assert_eq!(wheel.pop(), model.pop());
                prop_assert_eq!(wheel.now(), model.now);
                prop_assert_eq!(wheel.pending(), model.pending());
                prop_assert_eq!(wheel.peek_time(), model.peek_time());
            }
        }
        loop {
            let (w, m) = (wheel.pop(), model.pop());
            prop_assert_eq!(w, m);
            if w.is_none() {
                break;
            }
        }
        prop_assert_eq!(wheel.delivered(), script.len() as u64);
    }

    /// Same-cycle bursts at a wheel-wrap boundary: many events for the
    /// same few cycles right around a multiple of the ring size must pop
    /// in global schedule order within each cycle.
    #[test]
    fn wheel_fifo_ties_at_wrap_boundary(
        offsets in prop::collection::vec(1022u64..1027, 1..120)
    ) {
        let mut wheel = EventQueue::new();
        let mut model = HeapModel::new();
        for (id, &t) in offsets.iter().enumerate() {
            wheel.schedule_at(t, id);
            model.schedule_at(t, id);
        }
        for _ in 0..offsets.len() {
            prop_assert_eq!(wheel.pop(), model.pop());
        }
        prop_assert_eq!(wheel.pop(), None);
    }

    #[test]
    fn rng_streams_reproduce(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), mut v in prop::collection::vec(0u32..100, 0..50)) {
        let mut r = SimRng::new(seed);
        let mut orig = v.clone();
        r.shuffle(&mut v);
        orig.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(orig, v);
    }
}
