//! Property-based tests for the event queue and RNG.

use proptest::prelude::*;
use scd_sim::{EventQueue, SimRng};

proptest! {
    #[test]
    fn pops_are_time_sorted_and_fifo_within_ties(
        times in prop::collection::vec(0u64..1000, 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i);
        }
        let mut last: Option<(u64, usize)> = None;
        let mut count = 0;
        while let Some((t, id)) = q.pop() {
            count += 1;
            prop_assert_eq!(t, times[id], "event delivered at its scheduled time");
            if let Some((lt, lid)) = last {
                prop_assert!(t >= lt, "time order violated");
                if t == lt {
                    prop_assert!(id > lid, "FIFO tie-break violated");
                }
            }
            last = Some((t, id));
        }
        prop_assert_eq!(count, times.len());
        prop_assert_eq!(q.delivered(), times.len() as u64);
    }

    #[test]
    fn interleaved_schedule_and_pop_never_time_travels(
        script in prop::collection::vec((0u64..50, any::<bool>()), 1..200)
    ) {
        let mut q = EventQueue::new();
        let mut popped_at = Vec::new();
        for (delay, do_pop) in script {
            q.schedule(delay, ());
            if do_pop {
                if let Some((t, ())) = q.pop() {
                    popped_at.push(t);
                }
            }
        }
        while let Some((t, ())) = q.pop() {
            popped_at.push(t);
        }
        for w in popped_at.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn rng_below_is_always_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    #[test]
    fn rng_streams_reproduce(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), mut v in prop::collection::vec(0u32..100, 0..50)) {
        let mut r = SimRng::new(seed);
        let mut orig = v.clone();
        r.shuffle(&mut v);
        orig.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(orig, v);
    }
}
