//! # scd-sim — discrete-event simulation engine
//!
//! A minimal, deterministic event-driven core in the style of the simulator
//! the paper built for the DASH architecture. Components schedule events at
//! future cycle times; the engine delivers them in time order, breaking ties
//! by scheduling order (FIFO), which keeps every run bit-reproducible.

#![warn(missing_docs)]

pub mod queue;
pub mod ring;
pub mod rng;

pub use queue::{Cycle, EventQueue, Stamp};
pub use ring::RingLog;
pub use rng::SimRng;
