//! Time-ordered event queue with deterministic same-cycle tie-breaking.
//!
//! Implemented as a **hierarchical timing wheel** rather than a comparison
//! heap: the near future lives in a power-of-two ring of buckets indexed by
//! `cycle & WHEEL_MASK`, and everything beyond the current window sits in a
//! far-future overflow level that is cascaded into the ring when the wheel
//! catches up. `schedule`/`pop` are O(1) amortized (the heap paid O(log n)
//! comparisons per operation), which matters because every simulated
//! message, processor step and replay goes through this queue.
//!
//! # Delivery order
//!
//! Events are delivered in `(time, stamp)` order, where the [`Stamp`] is a
//! `(lane, seq)` pair:
//!
//! * [`EventQueue::schedule`]/[`EventQueue::schedule_at`] assign the
//!   sentinel lane `u32::MAX` and a global schedule counter, which makes
//!   same-cycle delivery FIFO in schedule order — the classic heap
//!   tie-break, and the behaviour every pre-existing caller sees.
//! * [`EventQueue::schedule_at_stamped`] lets the caller supply the stamp.
//!   A sharded simulation uses per-lane (per-cluster) monotone counters so
//!   the same-cycle order is a pure function of each lane's local history —
//!   independent of the global interleaving in which the schedules were
//!   issued, and therefore identical whether the machine runs on one
//!   thread or many.
//!
//! Structurally: the ring window is always `WHEEL_SLOTS` cycles and aligned
//! to a multiple of `WHEEL_SLOTS`, so within one window a bucket holds
//! events of exactly **one** cycle value — scanning buckets upward from
//! `now`'s slot enumerates pending times in increasing order. Within a
//! bucket, events are kept sorted by stamp (insertion binary-searches the
//! position; the append fast path covers FIFO callers), so popping from the
//! front yields the bucket minimum.

use std::collections::VecDeque;

/// Simulation time, in processor cycles.
pub type Cycle = u64;

/// Deterministic same-cycle delivery rank: events scheduled for the same
/// cycle are delivered in ascending `(lane, seq)` order.
///
/// Callers that don't care use the plain `schedule` APIs, which stamp
/// events with the sentinel lane `u32::MAX` and a global counter (FIFO).
/// Callers that need an interleaving-independent order (the sharded
/// machine) stamp each event from a per-lane monotone counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Stamp {
    /// The emitting lane (a cluster index in the machine; `u32::MAX` for
    /// plain FIFO schedules).
    pub lane: u32,
    /// Monotone sequence number within the lane.
    pub seq: u64,
}

impl Stamp {
    /// The sentinel stamp used by the plain `schedule` APIs: sorts after
    /// every lane-stamped event of the same cycle, FIFO among itself.
    fn fifo(seq: u64) -> Self {
        Stamp {
            lane: u32::MAX,
            seq,
        }
    }
}

/// log2 of the near-future ring size.
const WHEEL_BITS: u32 = 10;
/// Near-future ring size: the wheel covers `[wheel_base, wheel_base + 1024)`.
const WHEEL_SLOTS: usize = 1 << WHEEL_BITS;
/// Slot index mask (`cycle & WHEEL_MASK` is the bucket of `cycle`).
const WHEEL_MASK: u64 = (WHEEL_SLOTS as u64) - 1;
/// Words in the bucket-occupancy bitmap.
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;

#[derive(Clone)]
struct Scheduled<E> {
    time: Cycle,
    /// Same-cycle delivery rank (see [`Stamp`]).
    stamp: Stamp,
    event: E,
}

/// A deterministic discrete-event queue.
///
/// Events scheduled for the same cycle are delivered in the order they were
/// scheduled, so simulations are reproducible regardless of queue internals.
///
/// ```
/// use scd_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(10, "late");
/// q.schedule(5, "early");
/// q.schedule(5, "early-second");
/// assert_eq!(q.pop(), Some((5, "early")));
/// assert_eq!(q.pop(), Some((5, "early-second")));
/// assert_eq!(q.now(), 5);
/// assert_eq!(q.pop(), Some((10, "late")));
/// ```
#[derive(Clone)]
pub struct EventQueue<E> {
    /// Near-future ring; bucket `i` holds the events of the unique cycle
    /// `t` in the current window with `t & WHEEL_MASK == i`.
    slots: Box<[VecDeque<Scheduled<E>>]>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WHEEL_WORDS],
    /// Events at or beyond `wheel_base + WHEEL_SLOTS`, in schedule order.
    overflow: Vec<Scheduled<E>>,
    /// Minimum time in `overflow` (`u64::MAX` when empty).
    overflow_min: Cycle,
    /// Start of the ring's window; always a multiple of `WHEEL_SLOTS`.
    wheel_base: Cycle,
    /// Events currently in the ring (as opposed to the overflow level).
    in_wheel: usize,
    now: Cycle,
    seq: u64,
    delivered: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at cycle 0.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: [0; WHEEL_WORDS],
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            wheel_base: 0,
            in_wheel: 0,
            now: 0,
            seq: 0,
            delivered: 0,
        }
    }

    /// Current simulation time: the delivery time of the last popped event.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.in_wheel + self.overflow.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Whether `time` falls inside the ring's current window. Written as a
    /// subtraction so the window that ends at `u64::MAX` needs no special
    /// case.
    fn in_window(&self, time: Cycle) -> bool {
        time >= self.wheel_base && time - self.wheel_base <= WHEEL_MASK
    }

    fn bucket_push(slots: &mut [VecDeque<Scheduled<E>>], occupied: &mut [u64; WHEEL_WORDS], s: Scheduled<E>) {
        let slot = (s.time & WHEEL_MASK) as usize;
        let bucket = &mut slots[slot];
        // One time value per bucket within a window — a cheap always-on
        // check (this is the invariant that makes the bucket the same-cycle
        // ready set). Was debug-only; promoted after the debug-only-check
        // class of bugs this module has already paid for.
        assert!(
            bucket.front().is_none_or(|prev| prev.time == s.time),
            "bucket holds mixed cycles ({} vs {})",
            bucket.front().map(|p| p.time).unwrap_or(0),
            s.time
        );
        // Keep the bucket sorted by stamp. FIFO callers always append
        // (their stamps are globally monotone), so the common case is O(1);
        // lane-stamped insertions binary-search their position.
        if bucket.back().is_none_or(|prev| prev.stamp <= s.stamp) {
            bucket.push_back(s);
        } else {
            let pos = bucket.partition_point(|e| e.stamp <= s.stamp);
            bucket.insert(pos, s);
        }
        occupied[slot / 64] |= 1 << (slot % 64);
    }

    /// Schedules `event` to fire `delay` cycles from now.
    ///
    /// # Panics
    /// If `now + delay` overflows the cycle clock. The unchecked add used
    /// to wrap in release builds (e.g. a runaway exponential backoff), and
    /// the wrapped time then tripped [`EventQueue::schedule_at`]'s
    /// "scheduled in the past" panic — a misleading diagnosis for what is
    /// really a delay-overflow bug at the call site.
    pub fn schedule(&mut self, delay: Cycle, event: E) {
        let time = self.now.checked_add(delay).unwrap_or_else(|| {
            panic!(
                "event delay overflows the cycle clock (now {} + delay {delay})",
                self.now
            )
        });
        self.schedule_at(time, event);
    }

    /// Schedules `event` at absolute cycle `time`.
    ///
    /// # Panics
    /// If `time` is in the past — causality violations are always bugs.
    pub fn schedule_at(&mut self, time: Cycle, event: E) {
        let stamp = Stamp::fifo(self.seq);
        self.seq += 1;
        self.schedule_at_stamped(time, stamp, event);
    }

    /// Schedules `event` at absolute cycle `time` with an explicit
    /// same-cycle delivery [`Stamp`]. Events of one cycle are delivered in
    /// ascending stamp order regardless of the order they were scheduled.
    ///
    /// # Panics
    /// If `time` is in the past — causality violations are always bugs.
    pub fn schedule_at_stamped(&mut self, time: Cycle, stamp: Stamp, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past ({time} < {})",
            self.now
        );
        let s = Scheduled { time, stamp, event };
        if self.in_window(time) {
            Self::bucket_push(&mut self.slots, &mut self.occupied, s);
            self.in_wheel += 1;
        } else {
            self.overflow_min = self.overflow_min.min(time);
            self.overflow.push(s);
        }
    }

    /// First occupied bucket at or after `start` in wrapped slot order.
    /// Only called while the ring holds at least one event.
    fn next_occupied(&self, start: usize) -> usize {
        // Always-on: if `in_wheel` accounting drifted, the scan below would
        // spin forever on an all-zero bitmap.
        assert!(self.in_wheel > 0, "in_wheel accounting out of sync");
        let mut word = start / 64;
        let masked = self.occupied[word] & (!0u64 << (start % 64));
        if masked != 0 {
            return word * 64 + masked.trailing_zeros() as usize;
        }
        loop {
            word = (word + 1) % WHEEL_WORDS;
            if self.occupied[word] != 0 {
                return word * 64 + self.occupied[word].trailing_zeros() as usize;
            }
        }
    }

    /// Advances the window to the one containing the earliest overflow
    /// event and cascades every overflow event that now fits into the ring.
    /// Only called when the ring is empty and the overflow level is not.
    /// Sorted bucket insertion makes the cascade order-independent: buckets
    /// end up stamp-sorted whatever order the overflow level held.
    fn cascade(&mut self) {
        assert_eq!(self.in_wheel, 0, "cascade with a non-empty ring");
        assert!(!self.overflow.is_empty(), "cascade with an empty overflow");
        let base = self.overflow_min & !WHEEL_MASK;
        assert!(base > self.wheel_base, "cascade must advance the window");
        self.wheel_base = base;
        self.overflow_min = u64::MAX;
        let pending = std::mem::take(&mut self.overflow);
        for s in pending {
            if self.in_window(s.time) {
                Self::bucket_push(&mut self.slots, &mut self.occupied, s);
                self.in_wheel += 1;
            } else {
                self.overflow_min = self.overflow_min.min(s.time);
                self.overflow.push(s);
            }
        }
        // Was debug-only; a cascade that strands the minimum in overflow
        // would silently reorder deliveries.
        assert!(self.in_wheel > 0, "cascade must land the minimum");
    }

    /// Delivers the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.in_wheel == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            self.cascade();
        }
        let start = (self.now.max(self.wheel_base) & WHEEL_MASK) as usize;
        let slot = self.next_occupied(start);
        let bucket = &mut self.slots[slot];
        let s = bucket.pop_front().expect("occupancy bit set on empty bucket");
        if bucket.is_empty() {
            self.occupied[slot / 64] &= !(1 << (slot % 64));
        }
        self.in_wheel -= 1;
        // Always-on: delivering into the past would silently corrupt the
        // clock for every later event.
        assert!(s.time >= self.now, "delivery would move the clock backwards");
        self.now = s.time;
        self.delivered += 1;
        Some((s.time, s.event))
    }

    /// Bucket index of the earliest pending event, cascading the overflow
    /// level into the ring first if necessary. `None` when empty.
    fn front_slot(&mut self) -> Option<usize> {
        if self.in_wheel == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            self.cascade();
        }
        let start = (self.now.max(self.wheel_base) & WHEEL_MASK) as usize;
        Some(self.next_occupied(start))
    }

    /// The **ready set**: every event scheduled for the earliest pending
    /// cycle, in delivery (stamp) order, without consuming any of them.
    ///
    /// Because a ring bucket holds events of exactly one cycle value (see
    /// module docs), the ready set is simply the earliest occupied bucket;
    /// this cascades the far-future level first when the ring is empty.
    /// Exploration tooling uses this to enumerate the same-cycle delivery
    /// choices a run could make.
    pub fn ready_set(&mut self) -> Option<(Cycle, Vec<&E>)> {
        let slot = self.front_slot()?;
        let bucket = &self.slots[slot];
        let time = bucket.front().expect("occupancy bit set on empty bucket").time;
        Some((time, bucket.iter().map(|s| &s.event).collect()))
    }

    /// Delivers the `idx`-th event of the ready set (delivery order within
    /// the earliest cycle), advancing the clock to its time. `pop_ready(0)` is
    /// exactly [`EventQueue::pop`]; larger indices let an explorer branch
    /// over alternative same-cycle delivery orders. Returns `None` if the
    /// queue is empty or `idx` is out of range.
    pub fn pop_ready(&mut self, idx: usize) -> Option<(Cycle, E)> {
        let slot = self.front_slot()?;
        let bucket = &mut self.slots[slot];
        let s = bucket.remove(idx)?;
        if bucket.is_empty() {
            self.occupied[slot / 64] &= !(1 << (slot % 64));
        }
        self.in_wheel -= 1;
        assert!(s.time >= self.now, "delivery would move the clock backwards");
        self.now = s.time;
        self.delivered += 1;
        Some((s.time, s.event))
    }

    /// Visits every pending event in delivery order (time-sorted, stamp
    /// order within a cycle) as `(time, &event)`. Intended for state
    /// inspection and canonical fingerprinting; O(n log n), so keep it off
    /// hot paths.
    pub fn for_each_pending(&self, mut f: impl FnMut(Cycle, &E)) {
        let mut all: Vec<&Scheduled<E>> = self
            .slots
            .iter()
            .flat_map(|b| b.iter())
            .chain(self.overflow.iter())
            .collect();
        all.sort_by_key(|s| (s.time, s.stamp));
        for s in all {
            f(s.time, &s.event);
        }
    }

    /// Delivery time of the next event without consuming it.
    pub fn peek_time(&self) -> Option<Cycle> {
        if self.in_wheel == 0 {
            return (!self.overflow.is_empty()).then_some(self.overflow_min);
        }
        let start = (self.now.max(self.wheel_base) & WHEEL_MASK) as usize;
        let slot = self.next_occupied(start);
        self.slots[slot].front().map(|s| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, 'c');
        q.schedule_at(10, 'a');
        q.schedule_at(20, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop(), Some((20, 'b')));
        assert_eq!(q.pop(), Some((30, 'c')));
        assert_eq!(q.pop(), None);
        assert_eq!(q.delivered(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.pop();
        assert_eq!(q.now(), 5);
        q.schedule(0, 2); // same-cycle scheduling is allowed
        assert_eq!(q.pop(), Some((5, 2)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(10, 1);
        q.pop();
        q.schedule_at(3, 2);
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule_at(100, 'x');
        q.pop();
        q.schedule(50, 'y');
        assert_eq!(q.pop(), Some((150, 'y')));
    }

    /// A huge relative delay must be diagnosed as an overflow, not as the
    /// wrapped clock's "scheduled in the past" (release builds previously
    /// wrapped `now + delay` silently).
    #[test]
    #[should_panic(expected = "overflows the cycle clock")]
    fn overflowing_delay_panics_with_overflow_message() {
        let mut q = EventQueue::new();
        q.schedule_at(100, 1);
        q.pop(); // now == 100, so u64::MAX wraps if added unchecked
        q.schedule(u64::MAX, 2);
    }

    #[test]
    fn pending_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, 0);
        q.schedule(2, 1);
        assert_eq!(q.pending(), 2);
        assert_eq!(q.peek_time(), Some(1));
        q.pop();
        assert!(!q.is_empty());
    }

    /// Events straddling a window boundary (multiples of the wheel size)
    /// still come out in time order.
    #[test]
    fn wheel_wrap_boundary_is_seamless() {
        let mut q = EventQueue::new();
        let w = WHEEL_SLOTS as u64;
        for &t in &[w + 1, w - 1, w, 2 * w + 3, 1] {
            q.schedule_at(t, t);
        }
        let mut last = 0;
        let mut n = 0;
        while let Some((t, e)) = q.pop() {
            assert_eq!(t, e);
            assert!(t >= last);
            last = t;
            n += 1;
        }
        assert_eq!(n, 5);
    }

    /// Overflow events cascade into the ring ahead of any later schedule
    /// for the same cycle, preserving FIFO by global schedule order.
    #[test]
    fn cascade_preserves_fifo_against_direct_schedules() {
        let mut q = EventQueue::new();
        let far = 5 * WHEEL_SLOTS as u64 + 17;
        q.schedule_at(far, "overflowed-first");
        q.schedule_at(1, "near");
        assert_eq!(q.pop(), Some((1, "near")));
        // Still in the first window: `far` is overflow, this pop cascades.
        q.schedule_at(far, "scheduled-later");
        assert_eq!(q.pop(), Some((far, "overflowed-first")));
        assert_eq!(q.pop(), Some((far, "scheduled-later")));
    }

    /// Far-future events (many windows ahead) are reached directly, not by
    /// stepping the wheel through empty windows.
    #[test]
    fn sparse_far_future_events_are_reached() {
        let mut q = EventQueue::new();
        q.schedule_at(10_000_000, 'z');
        q.schedule_at(u64::MAX, 'w');
        assert_eq!(q.peek_time(), Some(10_000_000));
        assert_eq!(q.pop(), Some((10_000_000, 'z')));
        assert_eq!(q.pop(), Some((u64::MAX, 'w')));
        assert_eq!(q.pop(), None);
    }

    /// The ready set is the full same-cycle FIFO bucket, and `pop_ready`
    /// can deliver it in any order while later cycles stay untouched.
    #[test]
    fn ready_set_exposes_same_cycle_choices() {
        let mut q = EventQueue::new();
        q.schedule_at(5, 'a');
        q.schedule_at(5, 'b');
        q.schedule_at(5, 'c');
        q.schedule_at(9, 'z');
        let (t, ready) = q.ready_set().unwrap();
        assert_eq!(t, 5);
        assert_eq!(ready, vec![&'a', &'b', &'c']);
        assert_eq!(q.pop_ready(1), Some((5, 'b')));
        assert_eq!(q.pop_ready(1), Some((5, 'c')));
        assert_eq!(q.pop_ready(0), Some((5, 'a')));
        let (t, ready) = q.ready_set().unwrap();
        assert_eq!((t, ready), (9, vec![&'z']));
        assert_eq!(q.pop_ready(3), None); // out of range leaves the queue intact
        assert_eq!(q.pop(), Some((9, 'z')));
        assert_eq!(q.ready_set(), None::<(u64, Vec<&char>)>);
    }

    /// `ready_set` cascades the far-future level, and a cloned queue
    /// replays identically to the original.
    #[test]
    fn ready_set_cascades_and_clone_replays() {
        let mut q = EventQueue::new();
        let far = 3 * WHEEL_SLOTS as u64 + 11;
        q.schedule_at(far, 1u32);
        q.schedule_at(far, 2u32);
        let mut dup = q.clone();
        let (t, ready) = q.ready_set().unwrap();
        assert_eq!((t, ready.len()), (far, 2));
        assert_eq!(q.pop_ready(1), Some((far, 2)));
        assert_eq!(dup.pop(), Some((far, 1)));
        assert_eq!(dup.pop(), Some((far, 2)));
        assert_eq!(q.pop(), Some((far, 1)));
    }

    /// `for_each_pending` visits events in delivery order across the ring
    /// and the overflow level.
    #[test]
    fn pending_iteration_is_delivery_ordered() {
        let mut q = EventQueue::new();
        let far = 2 * WHEEL_SLOTS as u64;
        q.schedule_at(far, 30);
        q.schedule_at(4, 10);
        q.schedule_at(4, 11);
        q.schedule_at(9, 20);
        let mut seen = Vec::new();
        q.for_each_pending(|t, &e| seen.push((t, e)));
        assert_eq!(seen, vec![(4, 10), (4, 11), (9, 20), (far, 30)]);
    }

    fn st(lane: u32, seq: u64) -> Stamp {
        Stamp { lane, seq }
    }

    /// Lane-stamped events of one cycle come out in stamp order regardless
    /// of the order they were scheduled — the property the sharded machine
    /// relies on for interleaving-independent delivery.
    #[test]
    fn stamped_events_sort_within_a_cycle() {
        let mut q = EventQueue::new();
        q.schedule_at_stamped(5, st(2, 0), "c2");
        q.schedule_at_stamped(5, st(0, 1), "a1");
        q.schedule_at_stamped(5, st(1, 0), "b0");
        q.schedule_at_stamped(5, st(0, 0), "a0");
        q.schedule_at_stamped(3, st(9, 9), "early");
        assert_eq!(q.pop(), Some((3, "early")));
        assert_eq!(q.pop(), Some((5, "a0")));
        assert_eq!(q.pop(), Some((5, "a1")));
        assert_eq!(q.pop(), Some((5, "b0")));
        assert_eq!(q.pop(), Some((5, "c2")));
    }

    /// Plain schedules use the sentinel lane, so they sort after every
    /// lane-stamped event of the same cycle and stay FIFO among themselves.
    #[test]
    fn plain_schedules_sort_after_stamped_and_stay_fifo() {
        let mut q = EventQueue::new();
        q.schedule_at(7, "plain-first");
        q.schedule_at_stamped(7, st(3, 100), "stamped");
        q.schedule_at(7, "plain-second");
        assert_eq!(q.pop(), Some((7, "stamped")));
        assert_eq!(q.pop(), Some((7, "plain-first")));
        assert_eq!(q.pop(), Some((7, "plain-second")));
    }

    /// Stamp order survives the overflow cascade: far-future events land in
    /// their bucket sorted even though the overflow level held them in
    /// schedule order.
    #[test]
    fn cascade_restores_stamp_order() {
        let mut q = EventQueue::new();
        let far = 4 * WHEEL_SLOTS as u64 + 9;
        q.schedule_at_stamped(far, st(5, 0), 50u32);
        q.schedule_at_stamped(far, st(1, 1), 11);
        q.schedule_at_stamped(far, st(1, 0), 10);
        assert_eq!(q.pop(), Some((far, 10)));
        assert_eq!(q.pop(), Some((far, 11)));
        assert_eq!(q.pop(), Some((far, 50)));
    }

    /// `for_each_pending` and `ready_set` both present stamp order.
    #[test]
    fn pending_and_ready_views_use_stamp_order() {
        let mut q = EventQueue::new();
        q.schedule_at_stamped(4, st(1, 0), 'b');
        q.schedule_at_stamped(4, st(0, 7), 'a');
        q.schedule_at_stamped(8, st(0, 8), 'z');
        let mut seen = Vec::new();
        q.for_each_pending(|t, &e| seen.push((t, e)));
        assert_eq!(seen, vec![(4, 'a'), (4, 'b'), (8, 'z')]);
        let (t, ready) = q.ready_set().unwrap();
        assert_eq!(t, 4);
        assert_eq!(ready, vec![&'a', &'b']);
    }

    /// Interleaved schedule/pop churn with mixed near/far delays matches a
    /// simple sorted-model expectation (time order, FIFO ties).
    #[test]
    fn churn_keeps_time_and_fifo_order() {
        let mut q = EventQueue::new();
        let mut id = 0u64;
        let mut popped: Vec<(u64, u64)> = Vec::new();
        let delays = [0u64, 1, 7, 1023, 1024, 1025, 4096, 70_000];
        for round in 0..500u64 {
            for (i, &d) in delays.iter().enumerate() {
                if !(round + i as u64).is_multiple_of(3) {
                    q.schedule(d, id);
                    id += 1;
                }
            }
            if let Some((t, e)) = q.pop() {
                popped.push((t, e));
            }
        }
        while let Some((t, e)) = q.pop() {
            popped.push((t, e));
        }
        assert_eq!(popped.len() as u64, id);
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated: {w:?}");
        }
        // FIFO among same-time events: ids strictly increase within a tie.
        for w in popped.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO tie-break violated: {w:?}");
            }
        }
    }
}
