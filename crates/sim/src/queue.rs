//! Time-ordered event queue with FIFO tie-breaking.
//!
//! Implemented as a **hierarchical timing wheel** rather than a comparison
//! heap: the near future lives in a power-of-two ring of buckets indexed by
//! `cycle & WHEEL_MASK`, and everything beyond the current window sits in a
//! far-future overflow level that is cascaded into the ring when the wheel
//! catches up. `schedule`/`pop` are O(1) amortized (the heap paid O(log n)
//! comparisons per operation), which matters because every simulated
//! message, processor step and replay goes through this queue.
//!
//! # Why delivery order is bit-identical to the old heap
//!
//! The heap ordered events by `(time, seq)` where `seq` was a global
//! schedule counter — time order with FIFO tie-breaking. The wheel
//! reproduces that order *structurally*:
//!
//! * The ring window is always `WHEEL_SLOTS` cycles and aligned to a
//!   multiple of `WHEEL_SLOTS`, so within one window a bucket holds events
//!   of exactly **one** cycle value — scanning buckets upward from `now`'s
//!   slot enumerates pending times in increasing order.
//! * Within a bucket, events are only ever **appended**: direct schedules
//!   arrive in increasing `seq` by construction, and an overflow cascade
//!   happens only when the ring is completely empty, moving events in
//!   their original (seq-sorted, because the overflow level is itself
//!   append-only) order before any later — hence larger-`seq` — schedule
//!   can target the same bucket. Popping from the front is therefore FIFO
//!   per cycle, exactly the heap's tie-break.

use std::collections::VecDeque;

/// Simulation time, in processor cycles.
pub type Cycle = u64;

/// log2 of the near-future ring size.
const WHEEL_BITS: u32 = 10;
/// Near-future ring size: the wheel covers `[wheel_base, wheel_base + 1024)`.
const WHEEL_SLOTS: usize = 1 << WHEEL_BITS;
/// Slot index mask (`cycle & WHEEL_MASK` is the bucket of `cycle`).
const WHEEL_MASK: u64 = (WHEEL_SLOTS as u64) - 1;
/// Words in the bucket-occupancy bitmap.
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;

#[derive(Clone)]
struct Scheduled<E> {
    time: Cycle,
    /// Global schedule order, kept for debug-time FIFO verification (the
    /// delivery order itself is structural; see module docs).
    seq: u64,
    event: E,
}

/// A deterministic discrete-event queue.
///
/// Events scheduled for the same cycle are delivered in the order they were
/// scheduled, so simulations are reproducible regardless of queue internals.
///
/// ```
/// use scd_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(10, "late");
/// q.schedule(5, "early");
/// q.schedule(5, "early-second");
/// assert_eq!(q.pop(), Some((5, "early")));
/// assert_eq!(q.pop(), Some((5, "early-second")));
/// assert_eq!(q.now(), 5);
/// assert_eq!(q.pop(), Some((10, "late")));
/// ```
#[derive(Clone)]
pub struct EventQueue<E> {
    /// Near-future ring; bucket `i` holds the events of the unique cycle
    /// `t` in the current window with `t & WHEEL_MASK == i`.
    slots: Box<[VecDeque<Scheduled<E>>]>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WHEEL_WORDS],
    /// Events at or beyond `wheel_base + WHEEL_SLOTS`, in schedule order.
    overflow: Vec<Scheduled<E>>,
    /// Minimum time in `overflow` (`u64::MAX` when empty).
    overflow_min: Cycle,
    /// Start of the ring's window; always a multiple of `WHEEL_SLOTS`.
    wheel_base: Cycle,
    /// Events currently in the ring (as opposed to the overflow level).
    in_wheel: usize,
    now: Cycle,
    seq: u64,
    delivered: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at cycle 0.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: [0; WHEEL_WORDS],
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            wheel_base: 0,
            in_wheel: 0,
            now: 0,
            seq: 0,
            delivered: 0,
        }
    }

    /// Current simulation time: the delivery time of the last popped event.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.in_wheel + self.overflow.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Whether `time` falls inside the ring's current window. Written as a
    /// subtraction so the window that ends at `u64::MAX` needs no special
    /// case.
    fn in_window(&self, time: Cycle) -> bool {
        time >= self.wheel_base && time - self.wheel_base <= WHEEL_MASK
    }

    fn bucket_push(slots: &mut [VecDeque<Scheduled<E>>], occupied: &mut [u64; WHEEL_WORDS], s: Scheduled<E>) {
        let slot = (s.time & WHEEL_MASK) as usize;
        debug_assert!(
            slots[slot].back().is_none_or(|prev| {
                prev.time == s.time && prev.seq < s.seq
            }),
            "bucket append out of (time, seq) order"
        );
        slots[slot].push_back(s);
        occupied[slot / 64] |= 1 << (slot % 64);
    }

    /// Schedules `event` to fire `delay` cycles from now.
    ///
    /// # Panics
    /// If `now + delay` overflows the cycle clock. The unchecked add used
    /// to wrap in release builds (e.g. a runaway exponential backoff), and
    /// the wrapped time then tripped [`EventQueue::schedule_at`]'s
    /// "scheduled in the past" panic — a misleading diagnosis for what is
    /// really a delay-overflow bug at the call site.
    pub fn schedule(&mut self, delay: Cycle, event: E) {
        let time = self.now.checked_add(delay).unwrap_or_else(|| {
            panic!(
                "event delay overflows the cycle clock (now {} + delay {delay})",
                self.now
            )
        });
        self.schedule_at(time, event);
    }

    /// Schedules `event` at absolute cycle `time`.
    ///
    /// # Panics
    /// If `time` is in the past — causality violations are always bugs.
    pub fn schedule_at(&mut self, time: Cycle, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past ({time} < {})",
            self.now
        );
        let s = Scheduled {
            time,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        if self.in_window(time) {
            Self::bucket_push(&mut self.slots, &mut self.occupied, s);
            self.in_wheel += 1;
        } else {
            self.overflow_min = self.overflow_min.min(time);
            self.overflow.push(s);
        }
    }

    /// First occupied bucket at or after `start` in wrapped slot order.
    /// Only called while the ring holds at least one event.
    fn next_occupied(&self, start: usize) -> usize {
        debug_assert!(self.in_wheel > 0);
        let mut word = start / 64;
        let masked = self.occupied[word] & (!0u64 << (start % 64));
        if masked != 0 {
            return word * 64 + masked.trailing_zeros() as usize;
        }
        loop {
            word = (word + 1) % WHEEL_WORDS;
            if self.occupied[word] != 0 {
                return word * 64 + self.occupied[word].trailing_zeros() as usize;
            }
        }
    }

    /// Advances the window to the one containing the earliest overflow
    /// event and cascades every overflow event that now fits into the ring.
    /// Only called when the ring is empty and the overflow level is not —
    /// which is what makes cascaded bucket appends precede any later
    /// (larger-seq) direct schedule of the same cycle.
    fn cascade(&mut self) {
        debug_assert_eq!(self.in_wheel, 0);
        debug_assert!(!self.overflow.is_empty());
        let base = self.overflow_min & !WHEEL_MASK;
        debug_assert!(base > self.wheel_base);
        self.wheel_base = base;
        self.overflow_min = u64::MAX;
        // `overflow` is in schedule order; moving a subsequence into the
        // (empty) buckets and keeping the rest both preserve that order.
        let pending = std::mem::take(&mut self.overflow);
        for s in pending {
            if self.in_window(s.time) {
                Self::bucket_push(&mut self.slots, &mut self.occupied, s);
                self.in_wheel += 1;
            } else {
                self.overflow_min = self.overflow_min.min(s.time);
                self.overflow.push(s);
            }
        }
        debug_assert!(self.in_wheel > 0, "cascade must land the minimum");
    }

    /// Delivers the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.in_wheel == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            self.cascade();
        }
        let start = (self.now.max(self.wheel_base) & WHEEL_MASK) as usize;
        let slot = self.next_occupied(start);
        let bucket = &mut self.slots[slot];
        let s = bucket.pop_front().expect("occupancy bit set on empty bucket");
        if bucket.is_empty() {
            self.occupied[slot / 64] &= !(1 << (slot % 64));
        }
        self.in_wheel -= 1;
        debug_assert!(s.time >= self.now);
        self.now = s.time;
        self.delivered += 1;
        Some((s.time, s.event))
    }

    /// Bucket index of the earliest pending event, cascading the overflow
    /// level into the ring first if necessary. `None` when empty.
    fn front_slot(&mut self) -> Option<usize> {
        if self.in_wheel == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            self.cascade();
        }
        let start = (self.now.max(self.wheel_base) & WHEEL_MASK) as usize;
        Some(self.next_occupied(start))
    }

    /// The **ready set**: every event scheduled for the earliest pending
    /// cycle, in FIFO (schedule) order, without consuming any of them.
    ///
    /// Because a ring bucket holds events of exactly one cycle value (see
    /// module docs), the ready set is simply the earliest occupied bucket;
    /// this cascades the far-future level first when the ring is empty.
    /// Exploration tooling uses this to enumerate the same-cycle delivery
    /// choices a run could make.
    pub fn ready_set(&mut self) -> Option<(Cycle, Vec<&E>)> {
        let slot = self.front_slot()?;
        let bucket = &self.slots[slot];
        let time = bucket.front().expect("occupancy bit set on empty bucket").time;
        Some((time, bucket.iter().map(|s| &s.event).collect()))
    }

    /// Delivers the `idx`-th event of the ready set (FIFO order within the
    /// earliest cycle), advancing the clock to its time. `pop_ready(0)` is
    /// exactly [`EventQueue::pop`]; larger indices let an explorer branch
    /// over alternative same-cycle delivery orders. Returns `None` if the
    /// queue is empty or `idx` is out of range.
    pub fn pop_ready(&mut self, idx: usize) -> Option<(Cycle, E)> {
        let slot = self.front_slot()?;
        let bucket = &mut self.slots[slot];
        let s = bucket.remove(idx)?;
        if bucket.is_empty() {
            self.occupied[slot / 64] &= !(1 << (slot % 64));
        }
        self.in_wheel -= 1;
        debug_assert!(s.time >= self.now);
        self.now = s.time;
        self.delivered += 1;
        Some((s.time, s.event))
    }

    /// Visits every pending event in delivery order (time-sorted, FIFO
    /// within a cycle) as `(time, &event)`. Intended for state inspection
    /// and canonical fingerprinting; O(n log n), so keep it off hot paths.
    pub fn for_each_pending(&self, mut f: impl FnMut(Cycle, &E)) {
        let mut all: Vec<&Scheduled<E>> = self
            .slots
            .iter()
            .flat_map(|b| b.iter())
            .chain(self.overflow.iter())
            .collect();
        all.sort_by_key(|s| (s.time, s.seq));
        for s in all {
            f(s.time, &s.event);
        }
    }

    /// Delivery time of the next event without consuming it.
    pub fn peek_time(&self) -> Option<Cycle> {
        if self.in_wheel == 0 {
            return (!self.overflow.is_empty()).then_some(self.overflow_min);
        }
        let start = (self.now.max(self.wheel_base) & WHEEL_MASK) as usize;
        let slot = self.next_occupied(start);
        self.slots[slot].front().map(|s| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, 'c');
        q.schedule_at(10, 'a');
        q.schedule_at(20, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop(), Some((20, 'b')));
        assert_eq!(q.pop(), Some((30, 'c')));
        assert_eq!(q.pop(), None);
        assert_eq!(q.delivered(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.pop();
        assert_eq!(q.now(), 5);
        q.schedule(0, 2); // same-cycle scheduling is allowed
        assert_eq!(q.pop(), Some((5, 2)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(10, 1);
        q.pop();
        q.schedule_at(3, 2);
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule_at(100, 'x');
        q.pop();
        q.schedule(50, 'y');
        assert_eq!(q.pop(), Some((150, 'y')));
    }

    /// A huge relative delay must be diagnosed as an overflow, not as the
    /// wrapped clock's "scheduled in the past" (release builds previously
    /// wrapped `now + delay` silently).
    #[test]
    #[should_panic(expected = "overflows the cycle clock")]
    fn overflowing_delay_panics_with_overflow_message() {
        let mut q = EventQueue::new();
        q.schedule_at(100, 1);
        q.pop(); // now == 100, so u64::MAX wraps if added unchecked
        q.schedule(u64::MAX, 2);
    }

    #[test]
    fn pending_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, 0);
        q.schedule(2, 1);
        assert_eq!(q.pending(), 2);
        assert_eq!(q.peek_time(), Some(1));
        q.pop();
        assert!(!q.is_empty());
    }

    /// Events straddling a window boundary (multiples of the wheel size)
    /// still come out in time order.
    #[test]
    fn wheel_wrap_boundary_is_seamless() {
        let mut q = EventQueue::new();
        let w = WHEEL_SLOTS as u64;
        for &t in &[w + 1, w - 1, w, 2 * w + 3, 1] {
            q.schedule_at(t, t);
        }
        let mut last = 0;
        let mut n = 0;
        while let Some((t, e)) = q.pop() {
            assert_eq!(t, e);
            assert!(t >= last);
            last = t;
            n += 1;
        }
        assert_eq!(n, 5);
    }

    /// Overflow events cascade into the ring ahead of any later schedule
    /// for the same cycle, preserving FIFO by global schedule order.
    #[test]
    fn cascade_preserves_fifo_against_direct_schedules() {
        let mut q = EventQueue::new();
        let far = 5 * WHEEL_SLOTS as u64 + 17;
        q.schedule_at(far, "overflowed-first");
        q.schedule_at(1, "near");
        assert_eq!(q.pop(), Some((1, "near")));
        // Still in the first window: `far` is overflow, this pop cascades.
        q.schedule_at(far, "scheduled-later");
        assert_eq!(q.pop(), Some((far, "overflowed-first")));
        assert_eq!(q.pop(), Some((far, "scheduled-later")));
    }

    /// Far-future events (many windows ahead) are reached directly, not by
    /// stepping the wheel through empty windows.
    #[test]
    fn sparse_far_future_events_are_reached() {
        let mut q = EventQueue::new();
        q.schedule_at(10_000_000, 'z');
        q.schedule_at(u64::MAX, 'w');
        assert_eq!(q.peek_time(), Some(10_000_000));
        assert_eq!(q.pop(), Some((10_000_000, 'z')));
        assert_eq!(q.pop(), Some((u64::MAX, 'w')));
        assert_eq!(q.pop(), None);
    }

    /// The ready set is the full same-cycle FIFO bucket, and `pop_ready`
    /// can deliver it in any order while later cycles stay untouched.
    #[test]
    fn ready_set_exposes_same_cycle_choices() {
        let mut q = EventQueue::new();
        q.schedule_at(5, 'a');
        q.schedule_at(5, 'b');
        q.schedule_at(5, 'c');
        q.schedule_at(9, 'z');
        let (t, ready) = q.ready_set().unwrap();
        assert_eq!(t, 5);
        assert_eq!(ready, vec![&'a', &'b', &'c']);
        assert_eq!(q.pop_ready(1), Some((5, 'b')));
        assert_eq!(q.pop_ready(1), Some((5, 'c')));
        assert_eq!(q.pop_ready(0), Some((5, 'a')));
        let (t, ready) = q.ready_set().unwrap();
        assert_eq!((t, ready), (9, vec![&'z']));
        assert_eq!(q.pop_ready(3), None); // out of range leaves the queue intact
        assert_eq!(q.pop(), Some((9, 'z')));
        assert_eq!(q.ready_set(), None::<(u64, Vec<&char>)>);
    }

    /// `ready_set` cascades the far-future level, and a cloned queue
    /// replays identically to the original.
    #[test]
    fn ready_set_cascades_and_clone_replays() {
        let mut q = EventQueue::new();
        let far = 3 * WHEEL_SLOTS as u64 + 11;
        q.schedule_at(far, 1u32);
        q.schedule_at(far, 2u32);
        let mut dup = q.clone();
        let (t, ready) = q.ready_set().unwrap();
        assert_eq!((t, ready.len()), (far, 2));
        assert_eq!(q.pop_ready(1), Some((far, 2)));
        assert_eq!(dup.pop(), Some((far, 1)));
        assert_eq!(dup.pop(), Some((far, 2)));
        assert_eq!(q.pop(), Some((far, 1)));
    }

    /// `for_each_pending` visits events in delivery order across the ring
    /// and the overflow level.
    #[test]
    fn pending_iteration_is_delivery_ordered() {
        let mut q = EventQueue::new();
        let far = 2 * WHEEL_SLOTS as u64;
        q.schedule_at(far, 30);
        q.schedule_at(4, 10);
        q.schedule_at(4, 11);
        q.schedule_at(9, 20);
        let mut seen = Vec::new();
        q.for_each_pending(|t, &e| seen.push((t, e)));
        assert_eq!(seen, vec![(4, 10), (4, 11), (9, 20), (far, 30)]);
    }

    /// Interleaved schedule/pop churn with mixed near/far delays matches a
    /// simple sorted-model expectation (time order, FIFO ties).
    #[test]
    fn churn_keeps_time_and_fifo_order() {
        let mut q = EventQueue::new();
        let mut id = 0u64;
        let mut popped: Vec<(u64, u64)> = Vec::new();
        let delays = [0u64, 1, 7, 1023, 1024, 1025, 4096, 70_000];
        for round in 0..500u64 {
            for (i, &d) in delays.iter().enumerate() {
                if !(round + i as u64).is_multiple_of(3) {
                    q.schedule(d, id);
                    id += 1;
                }
            }
            if let Some((t, e)) = q.pop() {
                popped.push((t, e));
            }
        }
        while let Some((t, e)) = q.pop() {
            popped.push((t, e));
        }
        assert_eq!(popped.len() as u64, id);
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated: {w:?}");
        }
        // FIFO among same-time events: ids strictly increase within a tie.
        for w in popped.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO tie-break violated: {w:?}");
            }
        }
    }
}
