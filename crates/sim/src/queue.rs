//! Time-ordered event queue with FIFO tie-breaking.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time, in processor cycles.
pub type Cycle = u64;

#[derive(PartialEq, Eq)]
struct Scheduled<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue.
///
/// Events scheduled for the same cycle are delivered in the order they were
/// scheduled, so simulations are reproducible regardless of heap internals.
///
/// ```
/// use scd_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(10, "late");
/// q.schedule(5, "early");
/// q.schedule(5, "early-second");
/// assert_eq!(q.pop(), Some((5, "early")));
/// assert_eq!(q.pop(), Some((5, "early-second")));
/// assert_eq!(q.now(), 5);
/// assert_eq!(q.pop(), Some((10, "late")));
/// ```
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    now: Cycle,
    seq: u64,
    delivered: u64,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue at cycle 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
            delivered: 0,
        }
    }

    /// Current simulation time: the delivery time of the last popped event.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire `delay` cycles from now.
    ///
    /// # Panics
    /// If `now + delay` overflows the cycle clock. The unchecked add used
    /// to wrap in release builds (e.g. a runaway exponential backoff), and
    /// the wrapped time then tripped [`EventQueue::schedule_at`]'s
    /// "scheduled in the past" panic — a misleading diagnosis for what is
    /// really a delay-overflow bug at the call site.
    pub fn schedule(&mut self, delay: Cycle, event: E) {
        let time = self.now.checked_add(delay).unwrap_or_else(|| {
            panic!(
                "event delay overflows the cycle clock (now {} + delay {delay})",
                self.now
            )
        });
        self.schedule_at(time, event);
    }

    /// Schedules `event` at absolute cycle `time`.
    ///
    /// # Panics
    /// If `time` is in the past — causality violations are always bugs.
    pub fn schedule_at(&mut self, time: Cycle, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past ({time} < {})",
            self.now
        );
        self.heap.push(Reverse(Scheduled {
            time,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Delivers the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let Reverse(s) = self.heap.pop()?;
        debug_assert!(s.time >= self.now);
        self.now = s.time;
        self.delivered += 1;
        Some((s.time, s.event))
    }

    /// Delivery time of the next event without consuming it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(s)| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, 'c');
        q.schedule_at(10, 'a');
        q.schedule_at(20, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop(), Some((20, 'b')));
        assert_eq!(q.pop(), Some((30, 'c')));
        assert_eq!(q.pop(), None);
        assert_eq!(q.delivered(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.pop();
        assert_eq!(q.now(), 5);
        q.schedule(0, 2); // same-cycle scheduling is allowed
        assert_eq!(q.pop(), Some((5, 2)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(10, 1);
        q.pop();
        q.schedule_at(3, 2);
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule_at(100, 'x');
        q.pop();
        q.schedule(50, 'y');
        assert_eq!(q.pop(), Some((150, 'y')));
    }

    /// A huge relative delay must be diagnosed as an overflow, not as the
    /// wrapped clock's "scheduled in the past" (release builds previously
    /// wrapped `now + delay` silently).
    #[test]
    #[should_panic(expected = "overflows the cycle clock")]
    fn overflowing_delay_panics_with_overflow_message() {
        let mut q = EventQueue::new();
        q.schedule_at(100, 1);
        q.pop(); // now == 100, so u64::MAX wraps if added unchecked
        q.schedule(u64::MAX, 2);
    }

    #[test]
    fn pending_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, 0);
        q.schedule(2, 1);
        assert_eq!(q.pending(), 2);
        assert_eq!(q.peek_time(), Some(1));
        q.pop();
        assert!(!q.is_empty());
    }
}
