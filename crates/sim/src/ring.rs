//! A fixed-capacity ring buffer of recent items.
//!
//! The machine keeps the last N simulator events in one of these so a
//! failed run (deadlock, livelock, invariant violation) can include the
//! event tail in its post-mortem. Pushing is O(1) and never allocates
//! after the buffer fills; the history is recovered oldest-first.

/// A bounded log that keeps only the most recent `capacity` items.
#[derive(Clone, Debug)]
pub struct RingLog<T> {
    buf: Vec<T>,
    capacity: usize,
    /// Index the next push writes to (wraps once `buf` is full).
    head: usize,
}

impl<T> RingLog<T> {
    /// A log keeping the last `capacity` items. Capacity 0 disables the
    /// log entirely: pushes are no-ops and iteration is empty.
    pub fn new(capacity: usize) -> Self {
        RingLog {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
        }
    }

    /// The maximum number of items retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no items have been recorded (or capacity is 0).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records an item, evicting the oldest once full.
    pub fn push(&mut self, item: T) {
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(item);
        } else {
            self.buf[self.head] = item;
        }
        self.head = (self.head + 1) % self.capacity;
    }

    /// Iterates the retained items oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let split = if self.buf.len() < self.capacity {
            0
        } else {
            self.head
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut log = RingLog::new(3);
        for i in 0..2 {
            log.push(i);
        }
        assert_eq!(log.iter().copied().collect::<Vec<_>>(), vec![0, 1]);
        for i in 2..7 {
            log.push(i);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.iter().copied().collect::<Vec<_>>(), vec![4, 5, 6]);
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut log = RingLog::new(0);
        log.push(1);
        log.push(2);
        assert!(log.is_empty());
        assert_eq!(log.iter().count(), 0);
    }

    #[test]
    fn exact_boundary() {
        let mut log = RingLog::new(2);
        log.push("a");
        log.push("b");
        assert_eq!(log.iter().copied().collect::<Vec<_>>(), vec!["a", "b"]);
        log.push("c");
        assert_eq!(log.iter().copied().collect::<Vec<_>>(), vec!["b", "c"]);
    }
}
