//! A small deterministic RNG for simulator-internal choices.
//!
//! The simulator must be bit-reproducible per seed. Components that need
//! randomness (victim selection, workload nondeterminism) each own a
//! [`SimRng`] seeded from the run seed plus a component-specific salt, so
//! adding a consumer never perturbs another's stream.
//!
//! The generator is xorshift64\* — tiny, fast, and ample quality for
//! workload shuffling (this is not a cryptographic or Monte-Carlo-grade
//! application; the Figure 2 analysis in `scd-core` uses `rand::StdRng`).

/// Deterministic xorshift64* generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from `seed` (0 is remapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        SimRng {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// Derives an independent stream for a sub-component.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(
            self.next_u64()
                .wrapping_add(salt.wrapping_mul(0xA24B_AED4_963E_E407)),
        )
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// If `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Rejection sampling to avoid modulo bias (matters for workload
        // fairness when bound is large).
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(1234);
        let mut b = SimRng::new(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = SimRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(99);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::new(7);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.index(10)] += 1;
        }
        for &c in &counts {
            let expect = n as f64 / 10.0;
            assert!(
                (c as f64 - expect).abs() < expect * 0.1,
                "bucket count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn unit_in_range_and_chance_sane() {
        let mut r = SimRng::new(5);
        let mut hits = 0;
        for _ in 0..100_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            if r.chance(0.25) {
                hits += 1;
            }
        }
        assert!((hits as f64 - 25_000.0).abs() < 1_500.0, "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn forked_streams_are_independent_of_later_forks() {
        let mut root1 = SimRng::new(42);
        let mut a1 = root1.fork(1);
        let mut root2 = SimRng::new(42);
        let mut a2 = root2.fork(1);
        let _b2 = root2.fork(2); // extra fork must not disturb a2's stream
        for _ in 0..16 {
            assert_eq!(a1.next_u64(), a2.next_u64());
        }
    }
}
