//! Property-based tests for the cache substrate: set mapping, LRU
//! behaviour, and the L1/L2 inclusion invariant under arbitrary operation
//! sequences.

use proptest::prelude::*;
use scd_mem::{Cache, CacheHierarchy, LineState};
use std::collections::HashSet;

#[derive(Clone, Debug)]
enum CacheOp {
    Access(u64),
    Insert(u64, bool), // dirty?
    Invalidate(u64),
    Upgrade(u64),
    Downgrade(u64),
}

fn op_strategy() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0u64..64).prop_map(CacheOp::Access),
        ((0u64..64), any::<bool>()).prop_map(|(b, d)| CacheOp::Insert(b, d)),
        (0u64..64).prop_map(CacheOp::Invalidate),
        (0u64..64).prop_map(CacheOp::Upgrade),
        (0u64..64).prop_map(CacheOp::Downgrade),
    ]
}

proptest! {
    #[test]
    fn cache_never_exceeds_capacity_or_duplicates(
        ops in prop::collection::vec(op_strategy(), 1..300),
        ways in 1usize..=4,
        sets_log in 0u32..=3,
    ) {
        let blocks = ways << sets_log;
        let mut c = Cache::new(blocks, ways);
        let mut now = 0;
        for op in ops {
            now += 1;
            match op {
                CacheOp::Access(b) => { c.access(b, now); }
                CacheOp::Insert(b, d) => {
                    let st = if d { LineState::Dirty } else { LineState::Shared };
                    c.insert(b, st, now);
                }
                CacheOp::Invalidate(b) => { c.invalidate(b); }
                CacheOp::Upgrade(b) => { c.set_state(b, LineState::Dirty); }
                CacheOp::Downgrade(b) => { c.set_state(b, LineState::Shared); }
            }
            prop_assert!(c.occupancy() <= blocks);
            let resident: Vec<u64> = c.resident().map(|(b, _)| b).collect();
            let unique: HashSet<u64> = resident.iter().copied().collect();
            prop_assert_eq!(unique.len(), resident.len(), "duplicate lines");
        }
    }

    #[test]
    fn hierarchy_inclusion_holds_under_arbitrary_ops(
        ops in prop::collection::vec(op_strategy(), 1..300),
    ) {
        let mut h = CacheHierarchy::new(4, 1, 16, 2);
        let mut now = 0;
        for op in ops {
            now += 1;
            match op {
                CacheOp::Access(b) => {
                    let hit = h.access(b, now);
                    // An access that hits must agree with the probe.
                    if let Some(s) = hit.state() {
                        prop_assert_eq!(h.probe(b), Some(s));
                    }
                }
                CacheOp::Insert(b, d) => {
                    let st = if d { LineState::Dirty } else { LineState::Shared };
                    h.fill(b, st, now);
                }
                CacheOp::Invalidate(b) => { h.invalidate(b); }
                CacheOp::Upgrade(b) => { h.upgrade(b); }
                CacheOp::Downgrade(b) => { h.downgrade(b); }
            }
        }
        // Inclusion: anything in the L1 is in the L2 in the same state —
        // exercised implicitly; verify via access on every block.
        for b in 0..64 {
            if let Some(s) = h.probe(b) {
                // L2 has it; L1 may or may not, but an access must return
                // the same state either way.
                prop_assert_eq!(h.access(b, now + 1 + b).state(), Some(s));
            }
        }
    }

    #[test]
    fn lru_victim_is_least_recent(accesses in prop::collection::vec(0u64..8, 8..60)) {
        // Single-set cache of 4 ways over 8 possible blocks.
        let mut c = Cache::new(4, 4);
        let mut now = 0;
        let mut last_use: std::collections::HashMap<u64, u64> = Default::default();
        for b in accesses {
            now += 1;
            if c.access(b, now).is_none() {
                let before: Vec<u64> = c.resident().map(|(x, _)| x).collect();
                if let Some(ev) = c.insert(b, LineState::Shared, now) {
                    // The evicted line must have the minimal last-use among
                    // residents before insertion.
                    let min = before
                        .iter()
                        .map(|x| last_use.get(x).copied().unwrap_or(0))
                        .min()
                        .unwrap();
                    prop_assert_eq!(last_use.get(&ev.block).copied().unwrap_or(0), min);
                }
            }
            last_use.insert(b, now);
        }
    }
}
