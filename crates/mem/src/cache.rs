//! A single set-associative cache with LRU replacement.

use crate::Block;

/// Coherence state of a cached line.
///
/// DASH's inter-cluster protocol distinguishes clean-shared copies from a
/// single dirty (exclusive, modified) copy, so the cache model uses the same
/// three states (an MSI view of MESI; exclusive-clean is folded into
/// `Shared`, which only costs an ownership request on the first write — the
/// protocol crate accounts for it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LineState {
    /// Present, clean; other caches may also hold copies.
    Shared,
    /// Present, modified; this is the only valid copy in the machine.
    Dirty,
}

/// A line displaced by [`Cache::insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// The displaced block.
    pub block: Block,
    /// Its state at eviction: `Dirty` means the caller must write it back.
    pub state: LineState,
}

/// Hit/miss/eviction counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the block.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines displaced to make room (any state).
    pub evictions: u64,
    /// Dirty lines displaced (require writeback).
    pub dirty_evictions: u64,
    /// Lines removed by external invalidation.
    pub invalidations: u64,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    block: Block,
    state: LineState,
    valid: bool,
    last_use: u64,
}

/// A set-associative, LRU-replaced cache keyed by block number.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: usize,
    ways: usize,
    lines: Vec<Line>,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache holding `blocks` lines with the given associativity.
    ///
    /// # Panics
    /// If `blocks` is not a positive multiple of `ways`.
    pub fn new(blocks: usize, ways: usize) -> Self {
        assert!(ways >= 1);
        assert!(
            blocks >= ways && blocks.is_multiple_of(ways),
            "capacity {blocks} must be a positive multiple of associativity {ways}"
        );
        Cache {
            sets: blocks / ways,
            ways,
            lines: vec![
                Line {
                    block: 0,
                    state: LineState::Shared,
                    valid: false,
                    last_use: 0,
                };
                blocks
            ],
            stats: CacheStats::default(),
        }
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.lines.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_range(&self, block: Block) -> std::ops::Range<usize> {
        let set = (block % self.sets as u64) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// Looks `block` up, updating LRU and hit/miss counters.
    pub fn access(&mut self, block: Block, now: u64) -> Option<LineState> {
        for idx in self.set_range(block) {
            let line = &mut self.lines[idx];
            if line.valid && line.block == block {
                line.last_use = now;
                self.stats.hits += 1;
                return Some(line.state);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// State of `block` without touching LRU or statistics.
    pub fn probe(&self, block: Block) -> Option<LineState> {
        self.set_range(block)
            .map(|i| &self.lines[i])
            .find(|l| l.valid && l.block == block)
            .map(|l| l.state)
    }

    /// Inserts (or updates) `block` with `state`; returns the displaced line
    /// if an eviction was needed.
    pub fn insert(&mut self, block: Block, state: LineState, now: u64) -> Option<Evicted> {
        let range = self.set_range(block);
        // Update in place if present.
        if let Some(idx) = range
            .clone()
            .find(|&i| self.lines[i].valid && self.lines[i].block == block)
        {
            self.lines[idx].state = state;
            self.lines[idx].last_use = now;
            return None;
        }
        // Empty way?
        if let Some(idx) = range.clone().find(|&i| !self.lines[i].valid) {
            self.lines[idx] = Line {
                block,
                state,
                valid: true,
                last_use: now,
            };
            return None;
        }
        // Evict LRU.
        let victim = range
            .min_by_key(|&i| self.lines[i].last_use)
            .expect("non-zero associativity");
        let evicted = Evicted {
            block: self.lines[victim].block,
            state: self.lines[victim].state,
        };
        self.stats.evictions += 1;
        if evicted.state == LineState::Dirty {
            self.stats.dirty_evictions += 1;
        }
        self.lines[victim] = Line {
            block,
            state,
            valid: true,
            last_use: now,
        };
        Some(evicted)
    }

    /// Changes the state of a resident block; returns `false` if absent.
    pub fn set_state(&mut self, block: Block, state: LineState) -> bool {
        for idx in self.set_range(block) {
            let line = &mut self.lines[idx];
            if line.valid && line.block == block {
                line.state = state;
                return true;
            }
        }
        false
    }

    /// Removes `block`; returns its state if it was present.
    pub fn invalidate(&mut self, block: Block) -> Option<LineState> {
        for idx in self.set_range(block) {
            let line = &mut self.lines[idx];
            if line.valid && line.block == block {
                line.valid = false;
                self.stats.invalidations += 1;
                return Some(line.state);
            }
        }
        None
    }

    /// Number of valid lines (for occupancy assertions in tests).
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Iterates over all resident blocks and their states.
    pub fn resident(&self) -> impl Iterator<Item = (Block, LineState)> + '_ {
        self.lines
            .iter()
            .filter(|l| l.valid)
            .map(|l| (l.block, l.state))
    }

    /// Hashes the cache's protocol-visible state into `h` for
    /// model-checking state digests. Slot position and (block, state) are
    /// hashed directly; absolute `last_use` times are reduced to their rank
    /// within the set — LRU victim selection only ever compares them inside
    /// one set, so recency *order* is the behaviorally relevant part.
    /// Hit/miss counters are excluded.
    pub fn fingerprint<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        for set in 0..self.sets {
            let range = set * self.ways..(set + 1) * self.ways;
            let uses: Vec<u64> = self.lines[range.clone()]
                .iter()
                .filter(|l| l.valid)
                .map(|l| l.last_use)
                .collect();
            for (way, line) in self.lines[range].iter().enumerate() {
                if !line.valid {
                    (way, false).hash(h);
                    continue;
                }
                (way, true, line.block, line.state).hash(h);
                uses.iter().filter(|&&x| x < line.last_use).count().hash(h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(8, 2);
        assert_eq!(c.access(5, 0), None);
        assert_eq!(c.insert(5, LineState::Shared, 1), None);
        assert_eq!(c.access(5, 2), Some(LineState::Shared));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_coldest_way() {
        // 1 set x 2 ways: blocks 0 and 4... use sets=1: capacity 2 ways 2.
        let mut c = Cache::new(2, 2);
        assert!(c.insert(10, LineState::Shared, 0).is_none());
        assert!(c.insert(20, LineState::Shared, 1).is_none());
        c.access(10, 5); // 20 is now LRU
        let ev = c.insert(30, LineState::Shared, 6).expect("full set evicts");
        assert_eq!(ev.block, 20);
        assert_eq!(c.probe(10), Some(LineState::Shared));
        assert_eq!(c.probe(20), None);
    }

    #[test]
    fn dirty_eviction_is_flagged() {
        let mut c = Cache::new(1, 1);
        c.insert(1, LineState::Dirty, 0);
        let ev = c.insert(2, LineState::Shared, 1).unwrap();
        assert_eq!(
            ev,
            Evicted {
                block: 1,
                state: LineState::Dirty
            }
        );
        assert_eq!(c.stats().dirty_evictions, 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn insert_existing_updates_state_without_eviction() {
        let mut c = Cache::new(2, 2);
        c.insert(7, LineState::Shared, 0);
        assert!(c.insert(7, LineState::Dirty, 1).is_none());
        assert_eq!(c.probe(7), Some(LineState::Dirty));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn set_state_and_invalidate() {
        let mut c = Cache::new(4, 2);
        c.insert(9, LineState::Dirty, 0);
        assert!(c.set_state(9, LineState::Shared));
        assert_eq!(c.probe(9), Some(LineState::Shared));
        assert_eq!(c.invalidate(9), Some(LineState::Shared));
        assert_eq!(c.invalidate(9), None);
        assert!(!c.set_state(9, LineState::Dirty));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn conflict_misses_respect_set_mapping() {
        // 4 sets x 1 way: blocks 0,4,8 conflict; 1 does not.
        let mut c = Cache::new(4, 1);
        c.insert(0, LineState::Shared, 0);
        c.insert(1, LineState::Shared, 1);
        let ev = c.insert(4, LineState::Shared, 2).unwrap();
        assert_eq!(ev.block, 0);
        assert_eq!(c.probe(1), Some(LineState::Shared), "other set untouched");
    }

    #[test]
    fn resident_enumeration() {
        let mut c = Cache::new(4, 4);
        c.insert(1, LineState::Shared, 0);
        c.insert(2, LineState::Dirty, 1);
        let mut got: Vec<_> = c.resident().collect();
        got.sort();
        assert_eq!(
            got,
            vec![(1, LineState::Shared), (2, LineState::Dirty)]
        );
    }

    #[test]
    #[should_panic(expected = "multiple of associativity")]
    fn bad_geometry_panics() {
        Cache::new(6, 4);
    }
}
