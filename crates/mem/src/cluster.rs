//! Per-cluster cache group with snoop queries.
//!
//! Within a DASH cluster, processors keep their caches coherent over a
//! snoopy bus (Papamarcos & Patel's Illinois protocol in the prototype).
//! The simulator models the bus as instantaneous-snoop/accounted-latency:
//! the machine layer charges bus occupancy, while this type answers the
//! state questions a snoop would ("does a peer hold it dirty?", "who
//! shares it?") and applies the resulting state changes.

use crate::cache::{Evicted, LineState};
use crate::hierarchy::{CacheHierarchy, HitLevel};
use crate::Block;

/// The caches of one cluster's processors.
#[derive(Clone, Debug)]
pub struct ClusterCaches {
    procs: Vec<CacheHierarchy>,
}

impl ClusterCaches {
    /// A cluster with `n` identical hierarchies built by `make`.
    pub fn new(n: usize, make: impl Fn() -> CacheHierarchy) -> Self {
        assert!(n >= 1, "a cluster has at least one processor");
        ClusterCaches {
            procs: (0..n).map(|_| make()).collect(),
        }
    }

    /// Number of processors in the cluster.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Always false (clusters are non-empty); provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Access to one processor's hierarchy.
    pub fn proc(&self, p: usize) -> &CacheHierarchy {
        &self.procs[p]
    }

    /// Mutable access to one processor's hierarchy.
    pub fn proc_mut(&mut self, p: usize) -> &mut CacheHierarchy {
        &mut self.procs[p]
    }

    /// Performs processor `p`'s lookup of `block`.
    pub fn access(&mut self, p: usize, block: Block, now: u64) -> HitLevel {
        self.procs[p].access(block, now)
    }

    /// The local processor holding `block` dirty, if any (at most one
    /// machine-wide, enforced by the protocol).
    pub fn dirty_holder(&self, block: Block) -> Option<usize> {
        self.procs
            .iter()
            .position(|h| h.probe(block) == Some(LineState::Dirty))
    }

    /// Local processors holding `block` in any state.
    pub fn holders(&self, block: Block) -> Vec<usize> {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, h)| h.probe(block).is_some())
            .map(|(p, _)| p)
            .collect()
    }

    /// True if any local cache holds `block`.
    pub fn holds(&self, block: Block) -> bool {
        self.procs.iter().any(|h| h.probe(block).is_some())
    }

    /// True if any local cache holds `block` dirty.
    pub fn holds_dirty(&self, block: Block) -> bool {
        self.dirty_holder(block).is_some()
    }

    /// Fills `block` into processor `p`'s caches.
    pub fn fill(&mut self, p: usize, block: Block, state: LineState, now: u64) -> Option<Evicted> {
        self.procs[p].fill(block, state, now)
    }

    /// Write upgrade in processor `p`'s caches.
    pub fn upgrade(&mut self, p: usize, block: Block) -> bool {
        self.procs[p].upgrade(block)
    }

    /// Bus snoop on a local write: invalidate every copy except processor
    /// `p`'s. Returns how many peers lost a copy.
    pub fn invalidate_others(&mut self, p: usize, block: Block) -> usize {
        let mut n = 0;
        for (q, h) in self.procs.iter_mut().enumerate() {
            if q != p && h.invalidate(block).is_some() {
                n += 1;
            }
        }
        n
    }

    /// Invalidates every local copy (inter-cluster invalidation arriving at
    /// the cluster). Returns whether any removed copy was dirty.
    pub fn invalidate_all(&mut self, block: Block) -> bool {
        let mut was_dirty = false;
        for h in &mut self.procs {
            if h.invalidate(block) == Some(LineState::Dirty) {
                was_dirty = true;
            }
        }
        was_dirty
    }

    /// Downgrades a local dirty copy to shared (remote read of a dirty
    /// block). Returns whether a dirty copy existed.
    pub fn downgrade_all(&mut self, block: Block) -> bool {
        let mut had = false;
        for h in &mut self.procs {
            had |= h.downgrade(block);
        }
        had
    }

    /// Aggregated L2 miss count across the cluster (for reporting).
    pub fn total_l2_misses(&self) -> u64 {
        self.procs.iter().map(|h| h.l2_stats().misses).sum()
    }

    /// All blocks resident anywhere in the cluster, with the *highest* state
    /// (dirty beats shared) — the cluster-level view the directory tracks.
    pub fn cluster_resident(&self) -> std::collections::HashMap<Block, LineState> {
        let mut out = std::collections::HashMap::new();
        for h in &self.procs {
            for (b, s) in h.resident() {
                let e = out.entry(b).or_insert(s);
                if s == LineState::Dirty {
                    *e = LineState::Dirty;
                }
            }
        }
        out
    }

    /// Hashes every processor's hierarchy into `h`, in processor order,
    /// for model-checking state digests.
    pub fn fingerprint<H: std::hash::Hasher>(&self, h: &mut H) {
        for hier in &self.procs {
            hier.fingerprint(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> ClusterCaches {
        ClusterCaches::new(n, || CacheHierarchy::new(2, 1, 8, 2))
    }

    #[test]
    fn snoop_finds_dirty_peer() {
        let mut c = cluster(4);
        c.fill(2, 7, LineState::Dirty, 0);
        assert_eq!(c.dirty_holder(7), Some(2));
        assert!(c.holds_dirty(7));
        assert!(!c.holds_dirty(8));
    }

    #[test]
    fn holders_lists_every_copy() {
        let mut c = cluster(3);
        c.fill(0, 5, LineState::Shared, 0);
        c.fill(2, 5, LineState::Shared, 0);
        assert_eq!(c.holders(5), vec![0, 2]);
        assert!(c.holds(5));
    }

    #[test]
    fn local_write_invalidates_peers() {
        let mut c = cluster(3);
        for p in 0..3 {
            c.fill(p, 9, LineState::Shared, 0);
        }
        assert_eq!(c.invalidate_others(1, 9), 2);
        assert_eq!(c.holders(9), vec![1]);
    }

    #[test]
    fn invalidate_all_reports_dirtiness() {
        let mut c = cluster(2);
        c.fill(0, 3, LineState::Dirty, 0);
        assert!(c.invalidate_all(3));
        assert!(!c.holds(3));
        c.fill(1, 4, LineState::Shared, 1);
        assert!(!c.invalidate_all(4));
    }

    #[test]
    fn downgrade_all() {
        let mut c = cluster(2);
        c.fill(1, 6, LineState::Dirty, 0);
        assert!(c.downgrade_all(6));
        assert_eq!(c.proc(1).probe(6), Some(LineState::Shared));
        assert!(!c.downgrade_all(6));
    }

    #[test]
    fn cluster_resident_takes_highest_state() {
        let mut c = cluster(2);
        c.fill(0, 11, LineState::Shared, 0);
        c.fill(1, 12, LineState::Dirty, 0);
        let r = c.cluster_resident();
        assert_eq!(r.get(&11), Some(&LineState::Shared));
        assert_eq!(r.get(&12), Some(&LineState::Dirty));
    }
}
