//! Two-level inclusive cache hierarchy (DASH: 64 KB L1, 256 KB L2).
//!
//! The L2 (secondary) cache is the coherence point: snoops, invalidations
//! and directory state all operate on it. The L1 (primary) cache is a strict
//! subset of the L2 (inclusion), mirrors its coherence state, and exists to
//! model the latency difference between first-level and second-level hits.
//!
//! Because the simulator tracks state rather than data, state changes are
//! applied to both levels at once; an L1 capacity eviction is therefore
//! always silent (the L2 already holds the line in the same state).

use crate::cache::{Cache, CacheStats, Evicted, LineState};
use crate::Block;

/// Which level satisfied an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitLevel {
    /// Primary-cache hit.
    L1(LineState),
    /// Secondary-cache hit (line promoted into L1).
    L2(LineState),
    /// Miss in both levels.
    Miss,
}

impl HitLevel {
    /// The line state, if any level hit.
    pub fn state(&self) -> Option<LineState> {
        match *self {
            HitLevel::L1(s) | HitLevel::L2(s) => Some(s),
            HitLevel::Miss => None,
        }
    }
}

/// An inclusive L1/L2 pair.
#[derive(Clone, Debug)]
pub struct CacheHierarchy {
    l1: Cache,
    l2: Cache,
}

impl CacheHierarchy {
    /// Creates a hierarchy with the given capacities (in blocks) and
    /// associativities.
    ///
    /// # Panics
    /// If the L1 is larger than the L2 (inclusion would be impossible).
    pub fn new(l1_blocks: usize, l1_ways: usize, l2_blocks: usize, l2_ways: usize) -> Self {
        assert!(
            l1_blocks <= l2_blocks,
            "inclusive hierarchy requires L1 ({l1_blocks}) <= L2 ({l2_blocks})"
        );
        CacheHierarchy {
            l1: Cache::new(l1_blocks, l1_ways),
            l2: Cache::new(l2_blocks, l2_ways),
        }
    }

    /// DASH-prototype geometry for a given block size: 64 KB direct-mapped
    /// L1, 256 KB 4-way L2.
    pub fn dash_prototype(block_bytes: usize) -> Self {
        Self::new(
            (64 << 10) / block_bytes,
            1,
            (256 << 10) / block_bytes,
            4,
        )
    }

    /// Looks up `block`, filling the L1 on an L2 hit.
    pub fn access(&mut self, block: Block, now: u64) -> HitLevel {
        if let Some(s) = self.l1.access(block, now) {
            debug_assert_eq!(self.l2.probe(block), Some(s), "inclusion violated");
            return HitLevel::L1(s);
        }
        if let Some(s) = self.l2.access(block, now) {
            // Promote into L1; the displaced L1 line is silent (inclusion).
            let _ = self.l1.insert(block, s, now);
            return HitLevel::L2(s);
        }
        HitLevel::Miss
    }

    /// Coherence-point (L2) state without side effects.
    pub fn probe(&self, block: Block) -> Option<LineState> {
        self.l2.probe(block)
    }

    /// Installs `block` in both levels; returns the L2 victim (the caller
    /// must write it back if dirty).
    pub fn fill(&mut self, block: Block, state: LineState, now: u64) -> Option<Evicted> {
        let evicted = self.l2.insert(block, state, now);
        if let Some(ev) = evicted {
            // Inclusion: the departing L2 line may not linger in the L1.
            self.l1.invalidate(ev.block);
        }
        let _ = self.l1.insert(block, state, now);
        evicted
    }

    /// Marks a resident block dirty in both levels (write upgrade).
    ///
    /// Returns `false` if the block is not resident.
    pub fn upgrade(&mut self, block: Block) -> bool {
        let ok = self.l2.set_state(block, LineState::Dirty);
        if ok {
            self.l1.set_state(block, LineState::Dirty);
        }
        ok
    }

    /// Removes `block` from both levels; returns its (L2) state if present.
    pub fn invalidate(&mut self, block: Block) -> Option<LineState> {
        self.l1.invalidate(block);
        self.l2.invalidate(block)
    }

    /// Downgrades a dirty block to shared (sharing writeback). Returns
    /// whether the block was present and dirty.
    pub fn downgrade(&mut self, block: Block) -> bool {
        if self.l2.probe(block) == Some(LineState::Dirty) {
            self.l2.set_state(block, LineState::Shared);
            self.l1.set_state(block, LineState::Shared);
            true
        } else {
            false
        }
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Hashes both levels' protocol-visible state into `h` for
    /// model-checking state digests (see [`Cache::fingerprint`]).
    pub fn fingerprint<H: std::hash::Hasher>(&self, h: &mut H) {
        self.l1.fingerprint(h);
        self.l2.fingerprint(h);
    }

    /// All blocks resident at the coherence point (L2).
    pub fn resident(&self) -> impl Iterator<Item = (Block, LineState)> + '_ {
        self.l2.resident()
    }

    /// L2 capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.l2.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheHierarchy {
        CacheHierarchy::new(2, 1, 8, 2)
    }

    #[test]
    fn miss_fill_hit_sequence() {
        let mut h = small();
        assert_eq!(h.access(3, 0), HitLevel::Miss);
        assert!(h.fill(3, LineState::Shared, 1).is_none());
        assert_eq!(h.access(3, 2), HitLevel::L1(LineState::Shared));
    }

    #[test]
    fn l2_hit_promotes_to_l1() {
        let mut h = small();
        h.fill(0, LineState::Shared, 0);
        h.fill(2, LineState::Shared, 1); // L1 has 2 sets; 0 and 2 conflict
        // Block 0 fell out of the (tiny) L1 but stays in L2.
        assert_eq!(h.access(0, 2), HitLevel::L2(LineState::Shared));
        // Now promoted.
        assert_eq!(h.access(0, 3), HitLevel::L1(LineState::Shared));
    }

    #[test]
    fn l2_eviction_enforces_inclusion() {
        let mut h = CacheHierarchy::new(2, 2, 2, 2);
        h.fill(1, LineState::Shared, 0);
        h.fill(2, LineState::Shared, 1);
        let ev = h.fill(3, LineState::Shared, 2).expect("L2 full");
        assert_eq!(ev.block, 1);
        // Evicted block must be gone from L1 too.
        assert_eq!(h.access(1, 3), HitLevel::Miss);
    }

    #[test]
    fn dirty_eviction_propagates_for_writeback() {
        let mut h = CacheHierarchy::new(1, 1, 1, 1);
        h.fill(1, LineState::Dirty, 0);
        let ev = h.fill(2, LineState::Shared, 1).unwrap();
        assert_eq!(ev.state, LineState::Dirty);
    }

    #[test]
    fn upgrade_and_downgrade() {
        let mut h = small();
        h.fill(5, LineState::Shared, 0);
        assert!(h.upgrade(5));
        assert_eq!(h.probe(5), Some(LineState::Dirty));
        assert_eq!(h.access(5, 1), HitLevel::L1(LineState::Dirty));
        assert!(h.downgrade(5));
        assert_eq!(h.probe(5), Some(LineState::Shared));
        assert!(!h.downgrade(5), "already clean");
        assert!(!h.upgrade(99), "absent blocks cannot upgrade");
    }

    #[test]
    fn invalidate_clears_both_levels() {
        let mut h = small();
        h.fill(4, LineState::Dirty, 0);
        assert_eq!(h.invalidate(4), Some(LineState::Dirty));
        assert_eq!(h.access(4, 1), HitLevel::Miss);
        assert_eq!(h.invalidate(4), None);
    }

    #[test]
    fn dash_prototype_geometry() {
        let h = CacheHierarchy::dash_prototype(16);
        assert_eq!(h.capacity(), (256 << 10) / 16);
    }

    #[test]
    #[should_panic(expected = "inclusive hierarchy")]
    fn oversized_l1_panics() {
        CacheHierarchy::new(16, 1, 8, 1);
    }
}
