//! # scd-mem — processor cache substrate
//!
//! Set-associative caches, a two-level (L1/L2) inclusive hierarchy matching
//! the DASH prototype's 64 KB primary / 256 KB secondary configuration, and
//! per-cluster cache groups with the snoop queries the intra-cluster
//! bus-based protocol needs.
//!
//! The caches track *coherence state*, not data values: the paper's metrics
//! (traffic, invalidation distributions, execution time) depend only on hit/
//! miss/ownership behaviour. A separate value-checker in the integration
//! tests validates protocol-level coherence invariants instead.

#![warn(missing_docs)]

pub mod cache;
pub mod cluster;
pub mod hierarchy;

pub use cache::{Cache, CacheStats, Evicted, LineState};
pub use cluster::ClusterCaches;
pub use hierarchy::{CacheHierarchy, HitLevel};

/// A memory block number (byte address divided by the block size).
pub type Block = u64;
