//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to the crates.io registry, so the
//! workspace vendors the *subset* of the `rand` 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! integer ranges, and [`seq::SliceRandom::shuffle`]. The generator is
//! xorshift64\* seeded through splitmix64 — deterministic per seed and ample
//! quality for the Monte-Carlo invalidation analysis (`scd-core::analysis`),
//! which only needs uniform home/writer/sharer draws.
//!
//! Numerical streams differ from upstream `rand`; everything in-tree treats
//! the RNG as an opaque uniform source, so only determinism per seed
//! matters, not the exact sequence.

#![warn(missing_docs)]

/// Low-level uniform 64-bit source.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Convenience sampling methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value from `range` (half-open or inclusive integer ranges).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_one(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift64\* generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Splitmix64 scrambles low-entropy seeds (0, small integers)
            // into a full-width nonzero state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            StdRng {
                state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{below, RngCore};

    /// Shuffling, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3u16..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(5usize..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0, "bucket {c}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..40).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn f64_range() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }
}
