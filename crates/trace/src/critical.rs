//! Critical-path analysis over a [`SpanTree`]: where did each
//! transaction's latency actually go?
//!
//! Every phase of a completed transaction is split into **service** time
//! — cycles during which at least one of the phase's messages was on the
//! wire (the union of message flight intervals, clamped to the phase) —
//! and **queueing** time, the remainder: cycles spent parked in a home
//! serializer queue, waiting out a NACK backoff, or occupying an MSHR
//! with nothing in flight. Because phases tile a transaction exactly
//! (`SpanTree::check`), the per-phase splits sum back to the end-to-end
//! latency with no residue:
//!
//! ```text
//! for every phase:        queueing + service == duration
//! for every transaction:  Σ queueing + Σ service == latency
//! ```
//!
//! The **blocking edge** of a phase is the single message whose clamped
//! flight overlapped the phase longest — the edge a latency optimization
//! would have to shorten first.

use crate::json::Json;
use crate::span::{PhaseSpan, SpanTree, TxnSpan};

/// The message that dominated one phase's service time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockingEdge {
    /// Message kind label (e.g. `read_req`).
    pub msg: &'static str,
    /// Source cluster.
    pub src: u32,
    /// Destination cluster.
    pub dst: u32,
    /// Cycles of the phase this message's flight covered.
    pub overlap: u64,
}

/// One phase's latency split.
#[derive(Clone, Debug)]
pub struct PhaseCost {
    /// Phase label (`issue`, `home_lookup`, `fanout`, `reply`).
    pub phase: &'static str,
    /// Phase start cycle (inclusive).
    pub start: u64,
    /// Phase end cycle (exclusive).
    pub end: u64,
    /// Cycles with at least one attached message in flight.
    pub service: u64,
    /// Cycles with nothing in flight: `duration − service`.
    pub queueing: u64,
    /// The longest-overlapping message, if any flew during the phase.
    pub blocking: Option<BlockingEdge>,
}

impl PhaseCost {
    /// Phase duration in cycles (`queueing + service`, by construction).
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }
}

/// One completed transaction's critical-path breakdown.
#[derive(Clone, Debug)]
pub struct TxnCost {
    /// Transaction id.
    pub txn: u64,
    /// Requester cluster.
    pub cluster: u32,
    /// Block address.
    pub block: u64,
    /// Whether this was a write/ownership transaction.
    pub write: bool,
    /// End-to-end latency in cycles.
    pub latency: u64,
    /// NACK-driven reissues absorbed along the way.
    pub retries: u32,
    /// Total cycles queued across all phases.
    pub queueing: u64,
    /// Total cycles in service across all phases.
    pub service: u64,
    /// Per-phase splits, in phase order.
    pub phases: Vec<PhaseCost>,
}

/// Aggregate critical-path report for a traced run.
#[derive(Clone, Debug, Default)]
pub struct CriticalReport {
    /// Every completed transaction's breakdown, slowest first (ties
    /// broken by transaction id for determinism).
    pub txns: Vec<TxnCost>,
    /// Incomplete transactions skipped by the analysis.
    pub skipped: usize,
}

/// Cycles of `[send, deliver)` that fall inside `[start, end)`.
fn clamped_overlap(send: u64, deliver: u64, start: u64, end: u64) -> u64 {
    let lo = send.max(start);
    let hi = deliver.min(end);
    hi.saturating_sub(lo)
}

/// Splits one phase into queueing vs service against its attached
/// messages (union of clamped flight intervals).
fn phase_cost(p: &PhaseSpan) -> PhaseCost {
    // Collect clamped flight intervals. Messages without a recorded
    // delivery contribute nothing (their flight never demonstrably
    // overlapped the phase).
    let mut ivals: Vec<(u64, u64)> = p
        .msgs
        .iter()
        .filter_map(|m| {
            let deliver = m.deliver?;
            let lo = m.send.max(p.start);
            let hi = deliver.min(p.end);
            (hi > lo).then_some((lo, hi))
        })
        .collect();
    ivals.sort_unstable();
    let mut service = 0u64;
    let mut cursor = p.start;
    for (lo, hi) in ivals {
        let lo = lo.max(cursor);
        if hi > lo {
            service += hi - lo;
            cursor = hi;
        }
    }
    let blocking = p
        .msgs
        .iter()
        .filter_map(|m| {
            let deliver = m.deliver?;
            let overlap = clamped_overlap(m.send, deliver, p.start, p.end);
            (overlap > 0).then_some(BlockingEdge {
                msg: m.msg,
                src: m.src,
                dst: m.dst,
                overlap,
            })
        })
        // Max by overlap; on ties the earliest-iterated (earliest-sent,
        // since spans attach messages in send order) edge wins.
        .fold(None::<BlockingEdge>, |best, e| match best {
            Some(b) if b.overlap >= e.overlap => Some(b),
            _ => Some(e),
        });
    PhaseCost {
        phase: p.phase,
        start: p.start,
        end: p.end,
        service,
        queueing: p.duration() - service,
        blocking,
    }
}

fn txn_cost(t: &TxnSpan) -> TxnCost {
    let phases: Vec<PhaseCost> = t.phases.iter().map(phase_cost).collect();
    TxnCost {
        txn: t.txn,
        cluster: t.cluster,
        block: t.block,
        write: t.write,
        latency: t.latency(),
        retries: t.retries,
        queueing: phases.iter().map(|p| p.queueing).sum(),
        service: phases.iter().map(|p| p.service).sum(),
        phases,
    }
}

/// Analyzes every *completed* transaction of `tree`, slowest first.
pub fn analyze(tree: &SpanTree) -> CriticalReport {
    let mut txns: Vec<TxnCost> = tree
        .txns
        .iter()
        .filter(|t| t.end.is_some())
        .map(txn_cost)
        .collect();
    let skipped = tree.txns.len() - txns.len();
    txns.sort_by(|a, b| b.latency.cmp(&a.latency).then(a.txn.cmp(&b.txn)));
    CriticalReport { txns, skipped }
}

impl CriticalReport {
    /// The `k` slowest transactions.
    pub fn top(&self, k: usize) -> &[TxnCost] {
        &self.txns[..k.min(self.txns.len())]
    }

    /// Run-wide cycles queued across all analyzed transactions.
    pub fn total_queueing(&self) -> u64 {
        self.txns.iter().map(|t| t.queueing).sum()
    }

    /// Run-wide cycles in service across all analyzed transactions.
    pub fn total_service(&self) -> u64 {
        self.txns.iter().map(|t| t.service).sum()
    }

    /// Human-readable top-`k` table with per-phase splits and blocking
    /// edges.
    pub fn render(&self, k: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let (q, s) = (self.total_queueing(), self.total_service());
        let total = (q + s).max(1);
        let _ = writeln!(
            out,
            "critical path: {} txns analyzed ({} incomplete skipped), \
             queueing {q} cy ({:.1}%) vs service {s} cy ({:.1}%)",
            self.txns.len(),
            self.skipped,
            q as f64 * 100.0 / total as f64,
            s as f64 * 100.0 / total as f64,
        );
        for t in self.top(k) {
            let _ = writeln!(
                out,
                "  txn {:>5} {} block {:#x} cluster {}: latency {} cy \
                 (queue {} / service {}, {} retries)",
                t.txn,
                if t.write { "write" } else { "read " },
                t.block,
                t.cluster,
                t.latency,
                t.queueing,
                t.service,
                t.retries,
            );
            for p in &t.phases {
                let edge = match &p.blocking {
                    Some(e) => format!(
                        " — blocked on {} {}→{} ({} cy)",
                        e.msg, e.src, e.dst, e.overlap
                    ),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "    {:<12} [{:>8}, {:>8}) queue {:>6} service {:>6}{edge}",
                    p.phase, p.start, p.end, p.queueing, p.service,
                );
            }
        }
        out
    }

    /// Machine-readable top-`k` report (stable schema: add fields, never
    /// rename).
    pub fn to_json(&self, k: usize) -> Json {
        Json::obj()
            .with("schema", Json::Str(crate::schema::CRITICAL_SCHEMA.into()))
            .with("analyzed", Json::U64(self.txns.len() as u64))
            .with("skipped", Json::U64(self.skipped as u64))
            .with("total_queueing", Json::U64(self.total_queueing()))
            .with("total_service", Json::U64(self.total_service()))
            .with(
                "top",
                Json::Arr(
                    self.top(k)
                        .iter()
                        .map(|t| {
                            Json::obj()
                                .with("txn", Json::U64(t.txn))
                                .with("cluster", Json::U64(t.cluster as u64))
                                .with("block", Json::U64(t.block))
                                .with("write", Json::Bool(t.write))
                                .with("latency", Json::U64(t.latency))
                                .with("retries", Json::U64(t.retries as u64))
                                .with("queueing", Json::U64(t.queueing))
                                .with("service", Json::U64(t.service))
                                .with(
                                    "phases",
                                    Json::Arr(
                                        t.phases
                                            .iter()
                                            .map(|p| {
                                                let mut pj = Json::obj()
                                                    .with("phase", Json::Str(p.phase.into()))
                                                    .with("start", Json::U64(p.start))
                                                    .with("end", Json::U64(p.end))
                                                    .with("queueing", Json::U64(p.queueing))
                                                    .with("service", Json::U64(p.service));
                                                if let Some(e) = &p.blocking {
                                                    pj.set(
                                                        "blocking",
                                                        Json::obj()
                                                            .with("msg", Json::Str(e.msg.into()))
                                                            .with("src", Json::U64(e.src as u64))
                                                            .with("dst", Json::U64(e.dst as u64))
                                                            .with(
                                                                "overlap",
                                                                Json::U64(e.overlap),
                                                            ),
                                                    );
                                                }
                                                pj
                                            })
                                            .collect(),
                                    ),
                                )
                        })
                        .collect(),
                ),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Phase, TraceEvent};

    fn ev(seq: u64, cycle: u64, cluster: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq,
            cycle,
            cluster,
            kind,
        }
    }

    /// One read transaction: begin at 10, home lookup at 40, end at 100,
    /// with a request flying 10→40 and a reply flying 60→90.
    fn lifecycle() -> Vec<TraceEvent> {
        vec![
            ev(1, 10, 0, EventKind::TxnBegin { txn: 1, block: 8, write: false }),
            ev(
                2,
                10,
                0,
                EventKind::MsgSend {
                    src: 0,
                    dst: 1,
                    msg: "read_req",
                    class: "request",
                    block: Some(8),
                    hops: 1,
                },
            ),
            ev(3, 40, 1, EventKind::MsgDeliver { src: 0, dst: 1, msg: "read_req", block: Some(8) }),
            ev(4, 40, 1, EventKind::TxnPhase { txn: 1, block: 8, phase: Phase::HomeLookup }),
            ev(
                5,
                60,
                1,
                EventKind::MsgSend {
                    src: 1,
                    dst: 0,
                    msg: "read_reply",
                    class: "reply",
                    block: Some(8),
                    hops: 1,
                },
            ),
            ev(6, 90, 0, EventKind::MsgDeliver { src: 1, dst: 0, msg: "read_reply", block: Some(8) }),
            ev(7, 100, 0, EventKind::TxnEnd { txn: 1, block: 8, latency: 90, retries: 0 }),
        ]
    }

    #[test]
    fn splits_tile_the_transaction_exactly() {
        let tree = SpanTree::from_events(&lifecycle());
        tree.check().expect("well-formed tree");
        let report = analyze(&tree);
        assert_eq!(report.txns.len(), 1);
        assert_eq!(report.skipped, 0);
        let t = &report.txns[0];
        assert_eq!(t.latency, 90);
        assert_eq!(t.queueing + t.service, t.latency);
        for p in &t.phases {
            assert_eq!(p.queueing + p.service, p.duration(), "phase {}", p.phase);
        }
        // issue [10,40): the request flies the whole phase.
        assert_eq!(t.phases[0].phase, "issue");
        assert_eq!(t.phases[0].service, 30);
        assert_eq!(t.phases[0].queueing, 0);
        let edge = t.phases[0].blocking.as_ref().expect("blocking edge");
        assert_eq!((edge.msg, edge.src, edge.dst, edge.overlap), ("read_req", 0, 1, 30));
        // home_lookup [40,100): the reply covers [60,90) of it.
        assert_eq!(t.phases[1].phase, "home_lookup");
        assert_eq!(t.phases[1].service, 30);
        assert_eq!(t.phases[1].queueing, 30);
        assert_eq!(t.phases[1].blocking.as_ref().unwrap().msg, "read_reply");
    }

    #[test]
    fn overlapping_flights_are_not_double_counted() {
        // Two messages covering [10,30) and [20,50) of an issue phase
        // [10,60): union is 40 cycles, not 50.
        let events = vec![
            ev(1, 10, 0, EventKind::TxnBegin { txn: 1, block: 8, write: true }),
            ev(
                2,
                10,
                0,
                EventKind::MsgSend {
                    src: 0,
                    dst: 1,
                    msg: "write_req",
                    class: "request",
                    block: Some(8),
                    hops: 1,
                },
            ),
            ev(3, 30, 1, EventKind::MsgDeliver { src: 0, dst: 1, msg: "write_req", block: Some(8) }),
            ev(
                4,
                20,
                0,
                EventKind::MsgSend {
                    src: 0,
                    dst: 2,
                    msg: "write_req",
                    class: "request",
                    block: Some(8),
                    hops: 2,
                },
            ),
            ev(5, 50, 2, EventKind::MsgDeliver { src: 0, dst: 2, msg: "write_req", block: Some(8) }),
            ev(6, 60, 0, EventKind::TxnEnd { txn: 1, block: 8, latency: 50, retries: 0 }),
        ];
        let tree = SpanTree::from_events(&events);
        let report = analyze(&tree);
        let t = &report.txns[0];
        assert_eq!(t.phases.len(), 1);
        assert_eq!(t.phases[0].service, 40);
        assert_eq!(t.phases[0].queueing, 10);
        // The longer-overlapping edge wins the blocking slot.
        assert_eq!(t.phases[0].blocking.as_ref().unwrap().overlap, 30);
    }

    #[test]
    fn report_orders_slowest_first_and_caps_top_k() {
        let mut events = lifecycle();
        // A second, faster transaction on another block.
        events.extend([
            ev(8, 200, 2, EventKind::TxnBegin { txn: 2, block: 16, write: false }),
            ev(9, 220, 2, EventKind::TxnEnd { txn: 2, block: 16, latency: 20, retries: 0 }),
        ]);
        let report = analyze(&SpanTree::from_events(&events));
        assert_eq!(report.txns.len(), 2);
        assert!(report.txns[0].latency >= report.txns[1].latency);
        assert_eq!(report.top(1).len(), 1);
        assert_eq!(report.top(10).len(), 2);
        let j = report.to_json(10);
        assert_eq!(j.get("schema").and_then(Json::as_str), Some("scd-critical/v1"));
        assert_eq!(j.get("analyzed").and_then(Json::as_u64), Some(2));
        let rendered = report.render(5);
        assert!(rendered.contains("critical path:"), "{rendered}");
        assert!(rendered.contains("blocked on"), "{rendered}");
    }

    #[test]
    fn incomplete_transactions_are_skipped_not_analyzed() {
        let events = vec![ev(1, 10, 0, EventKind::TxnBegin { txn: 1, block: 8, write: false })];
        let report = analyze(&SpanTree::from_events(&events));
        assert!(report.txns.is_empty());
        assert_eq!(report.skipped, 1);
    }
}
