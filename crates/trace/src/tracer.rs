//! The recording side: configuration and per-cluster bounded ring buffers.
//!
//! Follows the `FaultPlan` pattern from `scd-noc`: a [`TraceConfig`] is
//! pure configuration, inert by default, and a machine built without one
//! (or with an inactive one) must behave bit-identically to a build
//! without trace hooks. The machine pre-computes [`TraceConfig::is_active`]
//! into a bool and gates every hook on it.

use scd_sim::RingLog;

use crate::event::{EventKind, TraceEvent};

/// What to record, and how much history to keep. The default records
/// nothing (all fields zero/false).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Events retained per cluster (bounded ring). 0 records nothing.
    pub ring_capacity: usize,
    /// Record per-message send/deliver events (high volume; the
    /// transaction lifecycle events are always recorded when tracing is
    /// on).
    pub messages: bool,
    /// Collect the metrics registry (phase-latency histograms).
    pub metrics: bool,
    /// Interval time-series snapshot period in cycles. 0 disables
    /// snapshots.
    pub interval: u64,
    /// Collect per-class byte/flit traffic attribution and per-link
    /// occupancy counters (the `scd-attrib/v1` document section).
    pub attribution: bool,
    /// Run the directory observatory: `inval` trace events, interval
    /// sharer-distribution samples, fan-out precision/waste counters,
    /// and sparse-directory churn tracking (the `scd-patterns/v1`
    /// document).
    pub patterns: bool,
}

impl TraceConfig {
    /// A configuration recording nothing (identical to running without
    /// one).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any recording is enabled.
    pub fn is_active(&self) -> bool {
        self.ring_capacity > 0
            || self.metrics
            || self.interval > 0
            || self.attribution
            || self.patterns
    }

    /// Standard tracing: transaction lifecycle + messages into rings of
    /// `capacity` events per cluster, with the metrics registry and
    /// traffic attribution on.
    pub fn full(capacity: usize) -> Self {
        TraceConfig {
            ring_capacity: capacity,
            messages: true,
            metrics: true,
            interval: 0,
            attribution: true,
            patterns: false,
        }
    }

    /// Lifecycle-only tracing (no per-message events): much lower volume,
    /// still enough to reconstruct transaction histories.
    pub fn lifecycle(capacity: usize) -> Self {
        TraceConfig {
            ring_capacity: capacity,
            messages: false,
            metrics: true,
            interval: 0,
            attribution: false,
            patterns: false,
        }
    }

    /// Builder: set the interval-snapshot period.
    pub fn with_interval(mut self, cycles: u64) -> Self {
        self.interval = cycles;
        self
    }

    /// Builder: toggle traffic/occupancy attribution.
    pub fn with_attribution(mut self, on: bool) -> Self {
        self.attribution = on;
        self
    }

    /// Builder: toggle the directory observatory (sharing-pattern
    /// classifier events + occupancy telemetry).
    pub fn with_patterns(mut self, on: bool) -> Self {
        self.patterns = on;
        self
    }
}

/// Per-cluster bounded event recorder.
///
/// Each cluster owns a [`RingLog`] so a hot home cannot evict the history
/// of a quiet requester. Events carry a **per-cluster** sequence number at
/// record time; [`Tracer::merged`] re-establishes the global canonical
/// order `(cycle, cluster, per-cluster seq)` and renumbers `seq` to the
/// event's position in that order. Within one cluster the per-cluster seq
/// is the recording order (a valid causal order: the simulator records
/// effects after causes within a cycle); across clusters the cluster index
/// breaks same-cycle ties. The canonical order is a pure function of each
/// cluster's local history, which is what lets a sharded machine — where
/// clusters record on different worker threads — emit the exact byte
/// stream a single-threaded run emits.
#[derive(Debug)]
pub struct Tracer {
    rings: Vec<RingLog<TraceEvent>>,
    /// Per-cluster recording counters (the `seq` stamped into events).
    lane_seq: Vec<u64>,
    /// Total events recorded across all clusters.
    recorded: u64,
    dropped: u64,
    messages: bool,
    /// Streaming tap: when armed, every recorded event is also appended
    /// here (eviction-proof) for the machine's stream pump to drain.
    mirror: Option<Vec<TraceEvent>>,
}

/// Cloning resets the mirror: a cloned machine (exploration branching)
/// must not stream, and an undrained mirror would grow without bound.
/// Ring history, counters, and config are preserved.
impl Clone for Tracer {
    fn clone(&self) -> Self {
        Tracer {
            rings: self.rings.clone(),
            lane_seq: self.lane_seq.clone(),
            recorded: self.recorded,
            dropped: self.dropped,
            messages: self.messages,
            mirror: None,
        }
    }
}

impl Tracer {
    /// A tracer over `clusters` ring buffers of `cfg.ring_capacity` each.
    pub fn new(clusters: usize, cfg: &TraceConfig) -> Self {
        Tracer {
            rings: (0..clusters)
                .map(|_| RingLog::new(cfg.ring_capacity))
                .collect(),
            lane_seq: vec![0; clusters],
            recorded: 0,
            dropped: 0,
            messages: cfg.messages,
            mirror: None,
        }
    }

    /// An inert tracer (capacity 0 everywhere); records nothing.
    pub fn inert() -> Self {
        Tracer {
            rings: Vec::new(),
            lane_seq: Vec::new(),
            recorded: 0,
            dropped: 0,
            messages: false,
            mirror: None,
        }
    }

    /// Arms (or disarms) the streaming mirror. While armed, every
    /// recorded event is also buffered for [`Tracer::take_mirror`] —
    /// including events a full ring will evict, so a stream never loses
    /// what the rings lost.
    pub fn set_mirror(&mut self, on: bool) {
        self.mirror = on.then(Vec::new);
    }

    /// Drains the mirrored events recorded since the last call (empty
    /// when the mirror is disarmed).
    pub fn take_mirror(&mut self) -> Vec<TraceEvent> {
        match &mut self.mirror {
            Some(m) => std::mem::take(m),
            None => Vec::new(),
        }
    }

    /// Whether per-message events should be recorded.
    pub fn messages_enabled(&self) -> bool {
        self.messages
    }

    /// Records one event attributed to `cluster`. The event's `seq` is the
    /// cluster's local recording counter; [`Tracer::merged`] (or a stream
    /// emitter) renumbers it to the global canonical position.
    pub fn record(&mut self, cluster: usize, cycle: u64, kind: EventKind) {
        let Some(ring) = self.rings.get_mut(cluster) else {
            return;
        };
        self.lane_seq[cluster] += 1;
        self.recorded += 1;
        if ring.len() == ring.capacity() && ring.capacity() > 0 {
            self.dropped += 1;
        }
        let ev = TraceEvent {
            seq: self.lane_seq[cluster],
            cycle,
            cluster: cluster as u32,
            kind,
        };
        if let Some(m) = &mut self.mirror {
            m.push(ev.clone());
        }
        ring.push(ev);
    }

    /// Events recorded since the run began (including any since evicted
    /// from their rings).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted from full rings (lost history).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The last `k` events of one cluster, oldest first.
    pub fn tail(&self, cluster: usize, k: usize) -> Vec<TraceEvent> {
        let Some(ring) = self.rings.get(cluster) else {
            return Vec::new();
        };
        let events: Vec<_> = ring.iter().cloned().collect();
        let skip = events.len().saturating_sub(k);
        events.into_iter().skip(skip).collect()
    }

    /// All retained events merged into one global, canonically ordered
    /// history — `(cycle, cluster, per-cluster seq)` — with each event's
    /// `seq` renumbered to its 1-based position in that order.
    pub fn merged(&self) -> Vec<TraceEvent> {
        Self::merged_from([self])
    }

    /// Merges the retained events of several tracers (e.g. one per shard,
    /// each having recorded a disjoint cluster set) into one canonically
    /// ordered, renumbered history. Equivalent to [`Tracer::merged`] on a
    /// tracer that recorded everything itself.
    pub fn merged_from<'a>(parts: impl IntoIterator<Item = &'a Tracer>) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = parts
            .into_iter()
            .flat_map(|t| t.rings.iter())
            .flat_map(|r| r.iter().cloned())
            .collect();
        all.sort_by_key(|e| (e.cycle, e.cluster, e.seq));
        for (i, e) in all.iter_mut().enumerate() {
            e.seq = i as u64 + 1;
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    fn phase(txn: u64) -> EventKind {
        EventKind::TxnPhase {
            txn,
            block: 0,
            phase: Phase::HomeLookup,
        }
    }

    #[test]
    fn default_config_is_inert() {
        assert!(!TraceConfig::default().is_active());
        assert!(!TraceConfig::none().is_active());
        assert!(TraceConfig::full(16).is_active());
        assert!(TraceConfig::none().with_interval(100).is_active());
        assert!(TraceConfig::none().with_attribution(true).is_active());
        assert!(TraceConfig::none().with_patterns(true).is_active());
        assert!(TraceConfig::full(16).attribution);
        assert!(!TraceConfig::lifecycle(16).attribution);
        assert!(!TraceConfig::full(16).patterns, "observatory is opt-in");
    }

    #[test]
    fn merge_orders_by_cycle_then_cluster_and_renumbers() {
        let mut t = Tracer::new(2, &TraceConfig::full(8));
        t.record(1, 50, phase(1));
        t.record(0, 10, phase(2));
        t.record(0, 50, phase(3));
        let merged = t.merged();
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].cycle, 10);
        // Same cycle: the lower cluster index wins, regardless of which
        // cluster recorded first (shard-order independence).
        assert_eq!(merged[1].kind, phase(3));
        assert_eq!(merged[2].kind, phase(1));
        assert!(merged.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        // Seq is renumbered to the 1-based canonical position.
        assert_eq!(
            merged.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    /// Two tracers over disjoint cluster sets merge into the same history
    /// a single tracer would have recorded.
    #[test]
    fn merged_from_shards_matches_single_tracer() {
        let mut whole = Tracer::new(2, &TraceConfig::full(8));
        whole.record(1, 50, phase(1));
        whole.record(0, 10, phase(2));
        whole.record(0, 50, phase(3));
        // Shard A owns cluster 0, shard B owns cluster 1; each records
        // only its own clusters, in its own local order.
        let mut a = Tracer::new(2, &TraceConfig::full(8));
        let mut b = Tracer::new(2, &TraceConfig::full(8));
        b.record(1, 50, phase(1));
        a.record(0, 10, phase(2));
        a.record(0, 50, phase(3));
        assert_eq!(Tracer::merged_from([&a, &b]), whole.merged());
    }

    #[test]
    fn rings_bound_history_per_cluster() {
        let mut t = Tracer::new(2, &TraceConfig::full(2));
        for i in 0..5 {
            t.record(0, i, phase(i));
        }
        t.record(1, 0, phase(99));
        // Cluster 0 overflowed but cluster 1's history survives.
        assert_eq!(t.merged().len(), 3);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.recorded(), 6);
        let tail = t.tail(0, 8);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].cycle, 3, "oldest retained after eviction");
    }

    #[test]
    fn tail_takes_most_recent_k() {
        let mut t = Tracer::new(1, &TraceConfig::full(8));
        for i in 0..6 {
            t.record(0, i, phase(i));
        }
        let tail = t.tail(0, 2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].cycle, 4);
        assert_eq!(tail[1].cycle, 5);
    }

    #[test]
    fn mirror_survives_eviction_and_is_disarmed_by_clone() {
        let mut t = Tracer::new(1, &TraceConfig::full(2));
        t.set_mirror(true);
        for i in 0..5 {
            t.record(0, i, phase(i));
        }
        assert_eq!(t.take_mirror().len(), 5, "mirror keeps what the ring evicts");
        assert!(t.take_mirror().is_empty(), "take drains");
        t.record(0, 9, phase(9));
        let mut clone = t.clone();
        assert_eq!(clone.recorded(), t.recorded());
        assert_eq!(t.take_mirror().len(), 1, "original keeps streaming");
        clone.record(0, 10, phase(10));
        assert!(clone.take_mirror().is_empty(), "clone's mirror is disarmed");
    }

    #[test]
    fn inert_tracer_records_nothing() {
        let mut t = Tracer::inert();
        t.record(0, 1, phase(1));
        assert_eq!(t.recorded(), 0);
        assert!(t.merged().is_empty());
        assert!(t.tail(0, 4).is_empty());
    }
}
