//! A minimal JSON value: writer and parser.
//!
//! The workspace builds offline (no serde), so the telemetry exporters
//! hand-roll their JSON through this module. The writer emits compact,
//! field-order-preserving output — a *stable* schema: two runs producing
//! the same values produce byte-identical text, which is what the
//! regression tests and the benchmark trajectory (`BENCH_*.json`) compare.
//! The parser accepts the subset of JSON the writer emits (plus standard
//! escapes), enough to validate and replay our own artifacts.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object fields keep insertion order (schema stability).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (the telemetry schema's counters).
    U64(u64),
    /// Floating-point number (fractions, means).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered fields.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a field on an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(fields) => {
                if let Some(f) = fields.iter_mut().find(|(k, _)| k == key) {
                    f.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: &str, value: Json) -> Self {
        self.set(key, value);
        self
    }

    /// Field lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as u64, accepting integral floats (the parser reads all
    /// numbers as one lexical class).
    ///
    /// The bound is strict: `u64::MAX as f64` rounds *up* to 2^64 (the
    /// nearest representable double), so `v <= u64::MAX as f64` would let
    /// a JSON number equal to 2^64 through and `as u64` would silently
    /// saturate it to `u64::MAX`. `v < 2^64` rejects it exactly — every
    /// double strictly below that bound is a representable u64.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v < u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The value as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as &str.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object fields as a name → value map (for order-insensitive
    /// comparisons in tests).
    pub fn field_map(&self) -> Option<BTreeMap<&str, &Json>> {
        match self {
            Json::Obj(fields) => {
                Some(fields.iter().map(|(k, v)| (k.as_str(), v)).collect())
            }
            _ => None,
        }
    }

    /// Parses a JSON document (the subset this module writes, plus
    /// standard string escapes and signed/exponent numbers).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(v) => write!(f, "{v}"),
            Json::F64(v) => {
                if v.is_finite() {
                    // `{}` on f64 is shortest-roundtrip; integral values
                    // gain a ".0" so the type survives a round trip.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; null is the conventional stand-in.
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {} (found `{}`)",
                b as char,
                self.pos,
                self.peek().map(|c| c as char).unwrap_or('∅')
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected `{}` at byte {}",
                other.map(|c| c as char).unwrap_or('∅'),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code).ok_or("bad \\u code point")?,
                            );
                        }
                        _ => return Err(format!("bad escape `\\{}`", esc as char)),
                    }
                }
                _ if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: back up and decode just this
                    // character (at most 4 bytes). Validating the whole
                    // remaining input here instead makes parsing quadratic
                    // in document size.
                    self.pos -= 1;
                    let end = (self.pos + 4).min(self.bytes.len());
                    let chunk = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(chunk) {
                        Ok(s) => s,
                        // The window may clip a *following* character;
                        // everything up to the error is still decodable.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&chunk[..e.valid_up_to()]).unwrap()
                        }
                        Err(e) => return Err(e.to_string()),
                    };
                    let c = valid.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_stable_output() {
        let j = Json::obj()
            .with("schema", Json::Str("scd/v1".into()))
            .with("n", Json::U64(42))
            .with("mean", Json::F64(1.5))
            .with("flag", Json::Bool(true))
            .with("items", Json::Arr(vec![Json::U64(1), Json::Null]));
        assert_eq!(
            j.to_string(),
            r#"{"schema":"scd/v1","n":42,"mean":1.5,"flag":true,"items":[1,null]}"#
        );
    }

    /// Regression: `u64::MAX as f64` rounds up to 2^64, so the old
    /// `v <= u64::MAX as f64` guard accepted a JSON number equal to 2^64
    /// and `as u64` saturated it to `u64::MAX`. The strict bound rejects
    /// exactly at the boundary.
    #[test]
    fn as_u64_rejects_two_to_the_64_exactly() {
        let two_64 = 18446744073709551616.0_f64; // 2^64, representable
        assert_eq!(two_64, u64::MAX as f64, "2^64 is what u64::MAX rounds to");
        assert_eq!(Json::F64(two_64).as_u64(), None, "2^64 must not saturate");
        // The largest double strictly below 2^64 is 2^64 - 2048 and is a
        // valid u64; it must still convert.
        let below = 18446744073709549568.0_f64;
        assert!(below < two_64);
        assert_eq!(Json::F64(below).as_u64(), Some(18446744073709549568));
        // Parsed documents take the same path.
        assert_eq!(Json::parse("18446744073709551616.0").unwrap().as_u64(), None);
        assert_eq!(Json::F64(-1.0).as_u64(), None);
        assert_eq!(Json::F64(1.5).as_u64(), None);
    }

    #[test]
    fn integral_floats_keep_their_type() {
        assert_eq!(Json::F64(2.0).to_string(), "2.0");
        let back = Json::parse("2.0").unwrap();
        assert_eq!(back, Json::F64(2.0));
    }

    #[test]
    fn roundtrip() {
        let j = Json::obj()
            .with("s", Json::Str("a \"quoted\"\nline\\".into()))
            .with("neg", Json::F64(-3.25))
            .with(
                "nested",
                Json::obj().with("arr", Json::Arr(vec![Json::Bool(false)])),
            );
        let text = j.to_string();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn set_replaces_existing_field() {
        let mut j = Json::obj().with("a", Json::U64(1));
        j.set("a", Json::U64(2));
        assert_eq!(j.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(j.field_map().unwrap().len(), 1);
    }

    #[test]
    fn parses_multibyte_strings() {
        // Adjacent multi-byte chars (the 4-byte decode window clips the
        // second one — valid_up_to handling), a 4-byte char at the very
        // end of input, and mixed ASCII.
        for s in ["héllo", "αβγδ", "日本語", "🦀", "a🦀b", "x\u{10FFFF}"] {
            let text = format!("\"{s}\"");
            assert_eq!(Json::parse(&text).unwrap(), Json::Str(s.into()), "{s:?}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"open"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Json::U64(7).as_u64(), Some(7));
        assert_eq!(Json::F64(7.0).as_u64(), Some(7));
        assert_eq!(Json::F64(7.5).as_u64(), None);
        assert_eq!(Json::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert!(Json::Arr(vec![]).as_arr().unwrap().is_empty());
    }
}
