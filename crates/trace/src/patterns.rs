//! The directory observatory: per-block sharing-pattern classification
//! and the measured invalidation distribution.
//!
//! The paper's scheme trade-offs (how many pointers, when to broadcast,
//! how coarse a vector) are really claims about *how applications share
//! blocks*. This module measures that directly: a [`PatternTable`]
//! consumes the trace event stream and classifies every block's
//! write/invalidation lifecycle into the Weber–Gupta taxonomy the paper
//! builds on — read-only, migratory, producer–consumer, mostly-read,
//! widely-shared — while accumulating the run's measured invalidation
//! distribution (the Figure-2 data, from real runs instead of
//! Monte-Carlo).
//!
//! The classifier is a *pure function of the `(cycle, seq)`-ordered
//! event stream*: feeding it a live machine's merged events or the lines
//! of a recorded `--trace-out` file produces byte-identical
//! `scd-patterns/v1` documents (CI diffs the two paths). Its inputs are
//! `txn_begin` events (who touches a block, read or write) and `inval`
//! events (how many sharers each directory decision invalidated); every
//! other event type passes through unobserved.

use std::collections::{BTreeMap, BTreeSet};

use crate::json::Json;
use crate::schema::PATTERNS_SCHEMA;

/// Blocks the table tracks individually before new blocks fall into the
/// aggregate `untracked_events` counter (first-come, deterministic in
/// stream order). 64k blocks ≈ 4 MB of tracking state, far beyond the
/// scaled kernels' working sets.
pub const DEFAULT_MAX_BLOCKS: usize = 1 << 16;

/// Per-block detail rows exported in the document (the busiest blocks by
/// coherence-transaction count; the classifier still classifies every
/// tracked block for the `classes` totals).
pub const TOP_BLOCKS: usize = 32;

/// Distinct reading clusters at or above which a single-writer block is
/// `widely_shared` rather than `producer_consumer` (LU's pivot column:
/// one producer, a machine-wide consumer set that overflows limited
/// pointers on every fill).
pub const WIDELY_SHARED_MIN_READERS: usize = 8;

/// Mean invalidation fan-out at or above which a write-heavy
/// multi-writer block is `widely_shared`: large measured fan-outs are
/// exactly the regime where limited-pointer schemes degrade.
pub const WIDELY_SHARED_MIN_MEAN_INVAL: f64 = 4.0;

/// Coherence reads per write at or above which a multi-writer block is
/// `mostly_read` (LocusRoute's cost array: many readers between
/// occasional updates, each update invalidating whoever accumulated).
pub const MOSTLY_READ_MIN_READ_RATIO: f64 = 2.0;

/// Mean invalidation fan-out at or below which a multi-writer,
/// write-heavy block is `migratory` (MP3D's space cells: each write
/// invalidates at most the previous owner).
pub const MIGRATORY_MAX_MEAN_INVAL: f64 = 1.5;

/// The Weber–Gupta sharing classes (plus `private` for blocks only one
/// cluster ever touched).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PatternClass {
    /// Touched by a single cluster: no coherence behaviour to classify.
    Private,
    /// Never written during the observed window.
    ReadOnly,
    /// Written while many clusters hold it: large invalidation fan-outs.
    WidelyShared,
    /// Read-dominated with occasional multi-writer updates.
    MostlyRead,
    /// One writer, a stable set of consumers.
    ProducerConsumer,
    /// Ownership hops cluster to cluster; each write invalidates at most
    /// the previous holder.
    Migratory,
}

/// Every class in the stable output order of the `classes` object.
pub const PATTERN_CLASSES: [PatternClass; 6] = [
    PatternClass::ReadOnly,
    PatternClass::Migratory,
    PatternClass::ProducerConsumer,
    PatternClass::MostlyRead,
    PatternClass::WidelyShared,
    PatternClass::Private,
];

impl PatternClass {
    /// Stable schema name.
    pub fn label(self) -> &'static str {
        match self {
            PatternClass::Private => "private",
            PatternClass::ReadOnly => "read_only",
            PatternClass::WidelyShared => "widely_shared",
            PatternClass::MostlyRead => "mostly_read",
            PatternClass::ProducerConsumer => "producer_consumer",
            PatternClass::Migratory => "migratory",
        }
    }
}

/// One tracked block's accumulated lifecycle.
#[derive(Clone, Debug, Default)]
struct BlockTrack {
    reads: u64,
    writes: u64,
    readers: BTreeSet<u32>,
    writers: BTreeSet<u32>,
    inval_events: u64,
    inval_total: u64,
    inval_max: u64,
}

impl BlockTrack {
    fn mean_inval(&self) -> f64 {
        if self.inval_events == 0 {
            0.0
        } else {
            self.inval_total as f64 / self.inval_events as f64
        }
    }

    /// The classifier decision tree. Precedence matters: a single-writer
    /// block with a machine-wide consumer set is `widely_shared` (LU's
    /// pivot column stresses limited pointers exactly like a multi-writer
    /// hot block would), and `mostly_read` outranks fan-out-driven
    /// `widely_shared` because Weber–Gupta's mostly-read class *is*
    /// "rare writes, each invalidating many accumulated readers"
    /// (LocusRoute's cost array).
    fn classify(&self) -> PatternClass {
        let participants = self.readers.union(&self.writers).count();
        if participants <= 1 {
            return PatternClass::Private;
        }
        if self.writes == 0 {
            return PatternClass::ReadOnly;
        }
        if self.writers.len() == 1 {
            return if self.readers.len() >= WIDELY_SHARED_MIN_READERS {
                PatternClass::WidelyShared
            } else {
                PatternClass::ProducerConsumer
            };
        }
        if self.reads as f64 / self.writes as f64 >= MOSTLY_READ_MIN_READ_RATIO {
            return PatternClass::MostlyRead;
        }
        if self.mean_inval() >= WIDELY_SHARED_MIN_MEAN_INVAL {
            return PatternClass::WidelyShared;
        }
        if self.mean_inval() <= MIGRATORY_MAX_MEAN_INVAL {
            return PatternClass::Migratory;
        }
        // Multi-writer, write-heavy, mid-size fan-outs: closer to
        // widely-shared than to anything else in the taxonomy.
        PatternClass::WidelyShared
    }

    fn to_json(&self, block: u64) -> Json {
        Json::obj()
            .with("block", Json::U64(block))
            .with("class", Json::Str(self.classify().label().into()))
            .with("reads", Json::U64(self.reads))
            .with("writes", Json::U64(self.writes))
            .with("readers", Json::U64(self.readers.len() as u64))
            .with("writers", Json::U64(self.writers.len() as u64))
            .with(
                "invals",
                Json::obj()
                    .with("events", Json::U64(self.inval_events))
                    .with("total", Json::U64(self.inval_total))
                    .with("mean", Json::F64(self.mean_inval()))
                    .with("max", Json::U64(self.inval_max)),
            )
    }
}

/// The bounded, online sharing-pattern table.
#[derive(Clone, Debug)]
pub struct PatternTable {
    max_blocks: usize,
    blocks: BTreeMap<u64, BlockTrack>,
    /// Observations that fell outside the bounded table.
    untracked_events: u64,
    /// Events observed (all types, including pass-throughs).
    events: u64,
    inval_events: u64,
    inval_total: u64,
    inval_max: u64,
    /// `inval_dist[n]` = decisions that sent exactly `n` invalidations.
    inval_dist: Vec<u64>,
    inval_by_cause: BTreeMap<String, u64>,
}

impl Default for PatternTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PatternTable {
    /// A table tracking up to [`DEFAULT_MAX_BLOCKS`] blocks.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_MAX_BLOCKS)
    }

    /// A table tracking up to `max_blocks` blocks individually; later
    /// blocks only feed the aggregate counters.
    pub fn with_capacity(max_blocks: usize) -> Self {
        PatternTable {
            max_blocks,
            blocks: BTreeMap::new(),
            untracked_events: 0,
            events: 0,
            inval_events: 0,
            inval_total: 0,
            inval_max: 0,
            inval_dist: Vec::new(),
            inval_by_cause: BTreeMap::new(),
        }
    }

    fn track(&mut self, block: u64) -> Option<&mut BlockTrack> {
        if !self.blocks.contains_key(&block) && self.blocks.len() >= self.max_blocks {
            return None;
        }
        Some(self.blocks.entry(block).or_default())
    }

    /// Observes one trace event in stream order (the JSONL envelope of
    /// `TraceEvent::to_json`). Unknown or irrelevant types pass through;
    /// malformed payloads are counted as untracked rather than erroring,
    /// so a truncated ring never poisons the table.
    pub fn observe_event(&mut self, ev: &Json) {
        self.events += 1;
        match ev.get("type").and_then(Json::as_str) {
            Some("txn_begin") => {
                let (Some(block), Some(cluster)) = (
                    ev.get("block").and_then(Json::as_u64),
                    ev.get("cluster").and_then(Json::as_u64),
                ) else {
                    self.untracked_events += 1;
                    return;
                };
                let write = ev.get("write").and_then(Json::as_bool).unwrap_or(false);
                let Some(track) = self.track(block) else {
                    self.untracked_events += 1;
                    return;
                };
                if write {
                    track.writes += 1;
                    track.writers.insert(cluster as u32);
                } else {
                    track.reads += 1;
                    track.readers.insert(cluster as u32);
                }
            }
            Some("inval") => {
                let (Some(block), Some(targets)) = (
                    ev.get("block").and_then(Json::as_u64),
                    ev.get("targets").and_then(Json::as_u64),
                ) else {
                    self.untracked_events += 1;
                    return;
                };
                let cause = ev.get("cause").and_then(Json::as_str).unwrap_or("unknown");
                self.inval_events += 1;
                self.inval_total += targets;
                self.inval_max = self.inval_max.max(targets);
                let idx = targets as usize;
                if self.inval_dist.len() <= idx {
                    self.inval_dist.resize(idx + 1, 0);
                }
                self.inval_dist[idx] += 1;
                *self.inval_by_cause.entry(cause.to_string()).or_insert(0) += 1;
                match self.track(block) {
                    Some(track) => {
                        track.inval_events += 1;
                        track.inval_total += targets;
                        track.inval_max = track.inval_max.max(targets);
                    }
                    None => self.untracked_events += 1,
                }
            }
            _ => {}
        }
    }

    /// Observes one rendered JSONL line (replay path). Blank lines are
    /// skipped; a parse failure is an error (a trace file is all-JSONL
    /// or corrupt).
    pub fn observe_line(&mut self, line: &str) -> Result<(), String> {
        if line.trim().is_empty() {
            return Ok(());
        }
        let ev = Json::parse(line)?;
        self.observe_event(&ev);
        Ok(())
    }

    /// Builds a table from a recorded `--trace-out` JSONL file.
    pub fn from_trace(text: &str) -> Result<Self, String> {
        let mut table = PatternTable::new();
        for (i, line) in text.lines().enumerate() {
            table
                .observe_line(line)
                .map_err(|e| format!("line {}: {e}", i + 1))?;
        }
        Ok(table)
    }

    /// Events observed so far (all types).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Blocks tracked individually.
    pub fn tracked_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Tracked blocks per class, in [`PATTERN_CLASSES`] order.
    pub fn class_counts(&self) -> Vec<(&'static str, u64)> {
        let mut counts: BTreeMap<PatternClass, u64> = BTreeMap::new();
        for track in self.blocks.values() {
            *counts.entry(track.classify()).or_insert(0) += 1;
        }
        PATTERN_CLASSES
            .iter()
            .map(|c| (c.label(), counts.get(c).copied().unwrap_or(0)))
            .collect()
    }

    /// The measured invalidation distribution: `dist[n]` = directory
    /// decisions that sent exactly `n` invalidations.
    pub fn inval_dist(&self) -> &[u64] {
        &self.inval_dist
    }

    /// Mean invalidations per recorded decision.
    pub fn inval_mean(&self) -> f64 {
        if self.inval_events == 0 {
            0.0
        } else {
            self.inval_total as f64 / self.inval_events as f64
        }
    }

    /// The classifier section: totals, per-class counts, and the
    /// busiest-block detail rows (ties broken by block id, so the output
    /// is deterministic for a given stream).
    fn classifier_json(&self) -> Json {
        let mut classes = Json::obj();
        for (label, count) in self.class_counts() {
            classes.set(label, Json::U64(count));
        }
        let mut busiest: Vec<(&u64, &BlockTrack)> = self.blocks.iter().collect();
        busiest.sort_by_key(|(block, t)| (std::cmp::Reverse(t.reads + t.writes), **block));
        let rows = busiest
            .into_iter()
            .take(TOP_BLOCKS)
            .map(|(block, t)| t.to_json(*block))
            .collect();
        Json::obj()
            .with("events", Json::U64(self.events))
            .with("tracked_blocks", Json::U64(self.blocks.len() as u64))
            .with("untracked_events", Json::U64(self.untracked_events))
            .with("classes", classes)
            .with("blocks", Json::Arr(rows))
    }

    fn invalidations_json(&self) -> Json {
        let mut by_cause = Json::obj();
        for (cause, count) in &self.inval_by_cause {
            by_cause.set(cause, Json::U64(*count));
        }
        Json::obj()
            .with("events", Json::U64(self.inval_events))
            .with("total", Json::U64(self.inval_total))
            .with("mean", Json::F64(self.inval_mean()))
            .with("max", Json::U64(self.inval_max))
            .with(
                "dist",
                Json::Arr(self.inval_dist.iter().map(|&n| Json::U64(n)).collect()),
            )
            .with("by_cause", by_cause)
    }

    /// The `patterns` section embedded in `scd-run-stats/v1` documents:
    /// thresholds, classifier, and invalidation distribution (no schema
    /// tag, no occupancy — those belong to the standalone document).
    pub fn section_json(&self) -> Json {
        Json::obj()
            .with("thresholds", thresholds_json())
            .with("classifier", self.classifier_json())
            .with("invalidations", self.invalidations_json())
    }

    /// The full `scd-patterns/v1` document. `run` labels the document
    /// (same object as the stats document's `run`); `occupancy` is the
    /// machine-side directory telemetry (`Machine::occupancy_json`) and
    /// is `null` for trace-replay tables, which cannot see live
    /// directory state.
    pub fn document(&self, run: Option<Json>, occupancy: Option<Json>) -> Json {
        let mut j = Json::obj().with("schema", Json::Str(PATTERNS_SCHEMA.into()));
        j.set("run", run.unwrap_or(Json::Null));
        j.set("thresholds", thresholds_json());
        j.set("classifier", self.classifier_json());
        j.set("invalidations", self.invalidations_json());
        j.set("occupancy", occupancy.unwrap_or(Json::Null));
        j
    }
}

/// The classifier thresholds, echoed into every document so a reader can
/// tell which decision boundaries produced the classes.
pub fn thresholds_json() -> Json {
    Json::obj()
        .with(
            "widely_shared_min_readers",
            Json::U64(WIDELY_SHARED_MIN_READERS as u64),
        )
        .with(
            "widely_shared_min_mean_inval",
            Json::F64(WIDELY_SHARED_MIN_MEAN_INVAL),
        )
        .with(
            "mostly_read_min_read_ratio",
            Json::F64(MOSTLY_READ_MIN_READ_RATIO),
        )
        .with(
            "migratory_max_mean_inval",
            Json::F64(MIGRATORY_MAX_MEAN_INVAL),
        )
}

fn req_u64(obj: &Json, path: &str, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{path}.{key} missing or not an integer"))
}

/// Validates the classifier + invalidation body shared by the standalone
/// document and the stats-document `patterns` section: class counts sum
/// to the tracked blocks, the distribution sums to its event/total
/// counters, and the occupancy section (when present) is internally
/// consistent.
pub fn validate_patterns_section(j: &Json) -> Result<(), String> {
    let classifier = j.get("classifier").ok_or("missing `classifier`")?;
    let tracked = req_u64(classifier, "classifier", "tracked_blocks")?;
    req_u64(classifier, "classifier", "events")?;
    req_u64(classifier, "classifier", "untracked_events")?;
    let classes = classifier
        .get("classes")
        .ok_or("classifier.classes missing")?;
    let mut class_sum = 0u64;
    for class in PATTERN_CLASSES {
        class_sum += req_u64(classes, "classifier.classes", class.label())?;
    }
    if class_sum != tracked {
        return Err(format!(
            "classifier.classes sums to {class_sum} but {tracked} blocks are tracked"
        ));
    }
    let blocks = classifier
        .get("blocks")
        .and_then(Json::as_arr)
        .ok_or("classifier.blocks missing or not an array")?;
    if blocks.len() as u64 > tracked {
        return Err(format!(
            "classifier.blocks lists {} rows for {tracked} tracked blocks",
            blocks.len()
        ));
    }
    let labels: Vec<&str> = PATTERN_CLASSES.iter().map(|c| c.label()).collect();
    for row in blocks {
        let class = row
            .get("class")
            .and_then(Json::as_str)
            .ok_or("classifier.blocks[].class missing")?;
        if !labels.contains(&class) {
            return Err(format!("unknown pattern class `{class}`"));
        }
        req_u64(row, "classifier.blocks[]", "block")?;
    }

    let invals = j.get("invalidations").ok_or("missing `invalidations`")?;
    let events = req_u64(invals, "invalidations", "events")?;
    let total = req_u64(invals, "invalidations", "total")?;
    let max = req_u64(invals, "invalidations", "max")?;
    let dist = invals
        .get("dist")
        .and_then(Json::as_arr)
        .ok_or("invalidations.dist missing or not an array")?;
    let mut dist_events = 0u64;
    let mut dist_total = 0u64;
    for (n, count) in dist.iter().enumerate() {
        let count = count
            .as_u64()
            .ok_or_else(|| format!("invalidations.dist[{n}] not an integer"))?;
        dist_events += count;
        dist_total += n as u64 * count;
    }
    if dist_events != events || dist_total != total {
        return Err(format!(
            "invalidations.dist sums to {dist_events} events / {dist_total} sent, \
             but the counters say {events} / {total}"
        ));
    }
    if events > 0 && dist.len() as u64 != max + 1 {
        return Err(format!(
            "invalidations.dist has {} bins but max is {max}",
            dist.len()
        ));
    }

    if let Some(occ) = j.get("occupancy") {
        if *occ != Json::Null {
            validate_occupancy(occ)?;
        }
    }
    Ok(())
}

fn validate_occupancy(occ: &Json) -> Result<(), String> {
    req_u64(occ, "occupancy", "samples")?;
    occ.get("sharers")
        .and_then(Json::as_arr)
        .ok_or("occupancy.sharers missing or not an array")?;
    let fanout = occ.get("fanout").ok_or("occupancy.fanout missing")?;
    let events = req_u64(fanout, "occupancy.fanout", "events")?;
    let precise = req_u64(fanout, "occupancy.fanout", "precise")?;
    req_u64(fanout, "occupancy.fanout", "broadcast")?;
    let targets = req_u64(fanout, "occupancy.fanout", "targets")?;
    let present = req_u64(fanout, "occupancy.fanout", "present")?;
    if precise > events {
        return Err(format!(
            "occupancy.fanout.precise {precise} > events {events}"
        ));
    }
    if present > targets {
        return Err(format!(
            "occupancy.fanout.present {present} > targets {targets}"
        ));
    }
    if let Some(churn) = occ.get("churn") {
        if *churn != Json::Null {
            let replacements = req_u64(churn, "occupancy.churn", "replacements")?;
            let rerefs = req_u64(churn, "occupancy.churn", "rerefs")?;
            if rerefs > replacements {
                return Err(format!(
                    "occupancy.churn.rerefs {rerefs} > replacements {replacements}"
                ));
            }
        }
    }
    Ok(())
}

/// Validates a standalone `scd-patterns/v1` document.
pub fn validate_patterns_json(text: &str) -> Result<(), String> {
    let j = Json::parse(text)?;
    let schema = j
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema`")?;
    if schema != PATTERNS_SCHEMA {
        return Err(format!("unexpected schema `{schema}`"));
    }
    validate_patterns_section(&j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceEvent};

    fn begin(seq: u64, cluster: u32, block: u64, write: bool) -> Json {
        TraceEvent {
            seq,
            cycle: seq * 10,
            cluster,
            kind: EventKind::TxnBegin {
                txn: seq,
                block,
                write,
            },
        }
        .to_json()
    }

    fn inval(seq: u64, block: u64, targets: u32) -> Json {
        TraceEvent {
            seq,
            cycle: seq * 10,
            cluster: 0,
            kind: EventKind::Inval {
                block,
                targets,
                cause: "write",
            },
        }
        .to_json()
    }

    fn classify_stream(events: &[Json]) -> PatternClass {
        let mut t = PatternTable::new();
        for ev in events {
            t.observe_event(ev);
        }
        assert_eq!(t.tracked_blocks(), 1);
        t.blocks.values().next().unwrap().classify()
    }

    #[test]
    fn classifies_the_taxonomy() {
        // Never written, several readers.
        assert_eq!(
            classify_stream(&[begin(1, 0, 8, false), begin(2, 1, 8, false)]),
            PatternClass::ReadOnly
        );
        // Only one cluster ever touches it.
        assert_eq!(
            classify_stream(&[begin(1, 3, 8, false), begin(2, 3, 8, true)]),
            PatternClass::Private
        );
        // Ownership hops: writes from many clusters, fan-out ≤ 1.
        assert_eq!(
            classify_stream(&[
                begin(1, 0, 8, true),
                begin(2, 1, 8, true),
                inval(3, 8, 1),
                begin(4, 2, 8, true),
                inval(5, 8, 1),
            ]),
            PatternClass::Migratory
        );
        // One writer, small consumer set, small fan-outs.
        assert_eq!(
            classify_stream(&[
                begin(1, 0, 8, true),
                begin(2, 1, 8, false),
                begin(3, 2, 8, false),
                begin(4, 0, 8, true),
                inval(5, 8, 2),
            ]),
            PatternClass::ProducerConsumer
        );
        // Read-dominated, multiple writers, modest fan-outs.
        assert_eq!(
            classify_stream(&[
                begin(1, 0, 8, true),
                begin(2, 1, 8, true),
                inval(3, 8, 2),
                begin(4, 0, 8, false),
                begin(5, 1, 8, false),
                begin(6, 2, 8, false),
                begin(7, 3, 8, false),
                begin(8, 4, 8, false),
                begin(9, 5, 8, false),
                begin(10, 6, 8, false),
                begin(11, 7, 8, false),
            ]),
            PatternClass::MostlyRead
        );
        // A single writer with a machine-wide consumer set is widely
        // shared (LU pivot), not producer-consumer: the sharer set is
        // what overflows limited pointers.
        let mut pivot: Vec<Json> = vec![begin(1, 0, 8, true)];
        for r in 0..WIDELY_SHARED_MIN_READERS as u32 {
            pivot.push(begin(2 + r as u64, r + 1, 8, false));
        }
        assert_eq!(classify_stream(&pivot), PatternClass::WidelyShared);
        // Write-heavy multi-writer block with large measured fan-outs.
        assert_eq!(
            classify_stream(&[
                begin(1, 1, 8, true),
                begin(2, 2, 8, true),
                inval(3, 8, 6),
                begin(4, 0, 8, true),
                inval(5, 8, 5),
            ]),
            PatternClass::WidelyShared
        );
    }

    #[test]
    fn distribution_and_document_are_consistent() {
        let mut t = PatternTable::new();
        for ev in [
            begin(1, 0, 8, true),
            inval(2, 8, 0),
            begin(3, 1, 8, true),
            inval(4, 8, 1),
            begin(5, 2, 16, true),
            inval(6, 16, 3),
        ] {
            t.observe_event(&ev);
        }
        assert_eq!(t.inval_dist(), &[1, 1, 0, 1]);
        assert!((t.inval_mean() - 4.0 / 3.0).abs() < 1e-9);
        let doc = t.document(None, None).to_string();
        validate_patterns_json(&doc).expect("document validates");
    }

    #[test]
    fn bounded_table_counts_overflow_deterministically() {
        let mut t = PatternTable::with_capacity(1);
        t.observe_event(&begin(1, 0, 8, false));
        t.observe_event(&begin(2, 1, 99, false));
        t.observe_event(&inval(3, 99, 2));
        assert_eq!(t.tracked_blocks(), 1);
        // Both the txn_begin and the per-block half of the inval fell
        // outside the table; the aggregate distribution still counts it.
        let doc = t.document(None, None);
        let classifier = doc.get("classifier").unwrap();
        assert_eq!(
            classifier.get("untracked_events").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(t.inval_dist(), &[0, 0, 1]);
        validate_patterns_json(&doc.to_string()).expect("still validates");
    }

    #[test]
    fn online_equals_replay_byte_for_byte() {
        let events = [
            begin(1, 0, 8, true),
            inval(2, 8, 1),
            begin(3, 1, 8, false),
            begin(4, 2, 16, false),
        ];
        let mut online = PatternTable::new();
        let mut text = String::new();
        for ev in &events {
            online.observe_event(ev);
            text.push_str(&ev.to_string());
            text.push('\n');
        }
        let replay = PatternTable::from_trace(&text).expect("replay parses");
        assert_eq!(
            online.document(None, None).to_string(),
            replay.document(None, None).to_string()
        );
    }

    #[test]
    fn validation_rejects_inconsistent_documents() {
        let t = PatternTable::new();
        let good = t.document(None, None);
        let mut bad = good.clone();
        bad.set("schema", Json::Str("scd-other/v1".into()));
        assert!(validate_patterns_json(&bad.to_string()).is_err());
        let mut bad = good.clone();
        if let Some(inv) = bad.get("invalidations") {
            let mut inv = inv.clone();
            inv.set("events", Json::U64(7));
            bad.set("invalidations", inv);
        }
        let err = validate_patterns_json(&bad.to_string()).unwrap_err();
        assert!(err.contains("dist sums"), "{err}");
    }
}
