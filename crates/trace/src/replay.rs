//! Replay and validation of recorded JSONL transaction logs.
//!
//! A trace written by `scdsim --trace-out` can be re-read here and checked
//! against the protocol's lifecycle invariants: global cycle ordering,
//! per-transaction phase ordering (no reply before the request, no phase
//! before the begin), and monotonically backed-off retries. Because the
//! recorder uses *bounded* rings, a transaction's early events may have
//! been evicted; validation therefore checks ordering over the events that
//! are present rather than demanding a complete lifecycle.

use std::collections::{BTreeMap, BTreeSet};

use crate::json::Json;

/// Aggregate of one validated trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events parsed.
    pub events: u64,
    /// Distinct transactions observed (any lifecycle event).
    pub transactions: u64,
    /// Transactions with both a begin and an end in the trace.
    pub completed: u64,
    /// Event counts by `type` label.
    pub by_type: BTreeMap<String, u64>,
}

#[derive(Default)]
struct TxnCheck {
    begin: Option<u64>,
    end: Option<u64>,
    phases: Vec<(String, u64)>,
    last_attempt: u32,
    last_backoff: u64,
    end_retries: Option<u64>,
    retry_events: u64,
}

fn req_u64(obj: &Json, key: &str, line: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {line}: missing or non-integer `{key}`"))
}

/// Parses and validates a JSONL trace, returning its summary.
///
/// Checks, in order:
/// 1. every non-empty line is a JSON object carrying `seq`, `cycle`,
///    `cluster`, and a known `type`;
/// 2. lines arrive in `(cycle, seq)` lexicographic order — `cycle`
///    non-decreasing, `seq` strictly increasing within a cycle — and no
///    `seq` repeats anywhere (the global cycle-ordered merge; global seq
///    order alone is not monotone, because an event can be recorded early
///    carrying a future cycle stamp);
/// 3. per transaction: at most one `txn_begin`/`txn_end`; no lifecycle
///    event at a cycle earlier than the begin; `txn_end` at or after every
///    phase; phases in `home_lookup` → `fanout` order;
/// 4. per transaction: retry `attempt`s strictly increasing with
///    non-decreasing `backoff` (exponential backoff never shrinks), and a
///    `txn_end.retries` no smaller than the retry events observed.
pub fn validate_trace(text: &str) -> Result<TraceSummary, String> {
    const KNOWN: [&str; 9] = crate::sink::EVENT_TYPES;
    let mut summary = TraceSummary::default();
    let mut last_seq: Option<u64> = None;
    let mut last_cycle: Option<u64> = None;
    let mut seen_seqs: BTreeSet<u64> = BTreeSet::new();
    let mut txns: BTreeMap<u64, TxnCheck> = BTreeMap::new();

    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let obj = Json::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
        let seq = req_u64(&obj, "seq", line_no)?;
        let cycle = req_u64(&obj, "cycle", line_no)?;
        req_u64(&obj, "cluster", line_no)?;
        let ty = obj
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {line_no}: missing `type`"))?;
        if !KNOWN.contains(&ty) {
            return Err(format!("line {line_no}: unknown event type `{ty}`"));
        }
        // The merge orders lines by (cycle, seq). Global seq order alone is
        // NOT monotone: an event can be recorded early with a future cycle
        // stamp (e.g. a txn_begin stamped with its post-lookup issue cycle),
        // so it sorts after events recorded later at earlier cycles. Seqs
        // are still globally unique.
        if !seen_seqs.insert(seq) {
            return Err(format!("line {line_no}: seq {seq} repeats"));
        }
        if let Some(prev) = last_cycle {
            if cycle < prev {
                return Err(format!(
                    "line {line_no}: cycle {cycle} runs backwards from {prev} \
                     (merge must be cycle-ordered)"
                ));
            }
            if cycle == prev {
                let prev_seq = last_seq.unwrap_or(0);
                if seq <= prev_seq {
                    return Err(format!(
                        "line {line_no}: seq {seq} not strictly after {prev_seq} \
                         within cycle {cycle}"
                    ));
                }
            }
        }
        last_seq = Some(seq);
        last_cycle = Some(cycle);
        summary.events += 1;
        *summary.by_type.entry(ty.to_string()).or_insert(0) += 1;

        if ty == "inval" {
            // Directory-side event: no per-txn lifecycle obligations, but
            // the classifier's inputs must be present and well-typed.
            req_u64(&obj, "block", line_no)?;
            req_u64(&obj, "targets", line_no)?;
            obj.get("cause")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {line_no}: inval without `cause`"))?;
        }

        if matches!(ty, "txn_begin" | "txn_phase" | "txn_end" | "nack" | "retry") {
            let txn = req_u64(&obj, "txn", line_no)?;
            let check = txns.entry(txn).or_default();
            match ty {
                "txn_begin" => {
                    if check.begin.is_some() {
                        return Err(format!("line {line_no}: txn {txn} began twice"));
                    }
                    if !check.phases.is_empty() || check.end.is_some() {
                        return Err(format!(
                            "line {line_no}: txn {txn} has lifecycle events before its begin"
                        ));
                    }
                    check.begin = Some(cycle);
                }
                "txn_phase" => {
                    let phase = obj
                        .get("phase")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("line {line_no}: phase without `phase`"))?;
                    if check.end.is_some() {
                        return Err(format!(
                            "line {line_no}: txn {txn} phase `{phase}` after its end"
                        ));
                    }
                    if let Some(b) = check.begin {
                        if cycle < b {
                            return Err(format!(
                                "line {line_no}: txn {txn} phase `{phase}` before its begin"
                            ));
                        }
                    }
                    if phase == "home_lookup"
                        && check.phases.iter().any(|(p, _)| p == "fanout")
                    {
                        return Err(format!(
                            "line {line_no}: txn {txn} home_lookup after fanout"
                        ));
                    }
                    check.phases.push((phase.to_string(), cycle));
                }
                "txn_end" => {
                    if check.end.is_some() {
                        return Err(format!("line {line_no}: txn {txn} ended twice"));
                    }
                    if let Some(b) = check.begin {
                        if cycle < b {
                            return Err(format!(
                                "line {line_no}: txn {txn} reply before its request \
                                 (end {cycle} < begin {b})"
                            ));
                        }
                        let latency = req_u64(&obj, "latency", line_no)?;
                        if b + latency != cycle {
                            return Err(format!(
                                "line {line_no}: txn {txn} latency {latency} inconsistent \
                                 with begin {b} / end {cycle}"
                            ));
                        }
                    }
                    if let Some(&(ref p, pc)) =
                        check.phases.iter().max_by_key(|(_, c)| *c)
                    {
                        if cycle < pc {
                            return Err(format!(
                                "line {line_no}: txn {txn} ended before its `{p}` phase"
                            ));
                        }
                    }
                    check.end = Some(cycle);
                    check.end_retries = Some(req_u64(&obj, "retries", line_no)?);
                }
                "retry" => {
                    let attempt = req_u64(&obj, "attempt", line_no)? as u32;
                    let backoff = req_u64(&obj, "backoff", line_no)?;
                    if attempt <= check.last_attempt {
                        return Err(format!(
                            "line {line_no}: txn {txn} retry attempt {attempt} not after \
                             attempt {}",
                            check.last_attempt
                        ));
                    }
                    if backoff < check.last_backoff {
                        return Err(format!(
                            "line {line_no}: txn {txn} backoff shrank ({} -> {backoff}); \
                             retries must back off monotonically",
                            check.last_backoff
                        ));
                    }
                    check.last_attempt = attempt;
                    check.last_backoff = backoff;
                    check.retry_events += 1;
                }
                // NACKs carry no per-txn ordering obligations beyond the
                // global cycle order checked above.
                _ => {}
            }
        }
    }

    for (txn, check) in &txns {
        if let (Some(end_retries), events) = (check.end_retries, check.retry_events) {
            if end_retries < events {
                return Err(format!(
                    "txn {txn}: end reports {end_retries} retries but {events} retry \
                     events were recorded"
                ));
            }
        }
    }
    summary.transactions = txns.len() as u64;
    summary.completed = txns
        .values()
        .filter(|c| c.begin.is_some() && c.end.is_some())
        .count() as u64;
    Ok(summary)
}

/// Validates a `--stats-json` document: schema tag plus the required
/// top-level sections with their load-bearing fields.
pub fn validate_stats_json(text: &str) -> Result<(), String> {
    let j = Json::parse(text)?;
    let schema = j
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema`")?;
    if schema != crate::schema::RUN_STATS_SCHEMA {
        return Err(format!("unexpected schema `{schema}`"));
    }
    let stats = j.get("stats").ok_or("missing `stats`")?;
    for key in ["cycles", "shared_reads", "shared_writes", "l2_misses"] {
        stats
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("stats.{key} missing or not an integer"))?;
    }
    let traffic = stats.get("traffic").ok_or("missing `stats.traffic`")?;
    let mut total = 0u64;
    for key in ["requests", "replies", "invalidations", "acks"] {
        total += traffic
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("stats.traffic.{key} missing"))?;
    }
    let declared = traffic
        .get("total")
        .and_then(Json::as_u64)
        .ok_or("stats.traffic.total missing")?;
    if declared != total {
        return Err(format!(
            "stats.traffic.total {declared} != sum of classes {total}"
        ));
    }
    if let Some(metrics) = j.get("metrics") {
        if *metrics != Json::Null {
            let ms = metrics
                .get("schema")
                .and_then(Json::as_str)
                .ok_or("metrics.schema missing")?;
            if ms != crate::schema::METRICS_SCHEMA {
                return Err(format!("unexpected metrics schema `{ms}`"));
            }
        }
    }
    if let Some(attrib) = j.get("attribution") {
        if *attrib != Json::Null {
            crate::attrib::validate_attrib_json(attrib)?;
        }
    }
    if let Some(patterns) = j.get("patterns") {
        if *patterns != Json::Null {
            crate::patterns::validate_patterns_section(patterns)?;
        }
    }
    if let Some(trace) = j.get("trace") {
        if *trace != Json::Null {
            let recorded = trace
                .get("recorded")
                .and_then(Json::as_u64)
                .ok_or("trace.recorded missing or not an integer")?;
            let dropped = trace
                .get("dropped_events")
                .and_then(Json::as_u64)
                .ok_or("trace.dropped_events missing or not an integer")?;
            if dropped > recorded {
                return Err(format!(
                    "trace.dropped_events {dropped} > trace.recorded {recorded}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Phase, TraceEvent};

    fn line(seq: u64, cycle: u64, kind: EventKind) -> String {
        TraceEvent {
            seq,
            cycle,
            cluster: 0,
            kind,
        }
        .to_json()
        .to_string()
    }

    #[test]
    fn accepts_a_well_formed_lifecycle() {
        let text = [
            line(1, 10, EventKind::TxnBegin { txn: 1, block: 4, write: true }),
            line(2, 30, EventKind::TxnPhase { txn: 1, block: 4, phase: Phase::HomeLookup }),
            line(3, 45, EventKind::TxnPhase { txn: 1, block: 4, phase: Phase::Fanout }),
            line(4, 90, EventKind::TxnEnd { txn: 1, block: 4, latency: 80, retries: 0 }),
        ]
        .join("\n");
        let s = validate_trace(&text).unwrap();
        assert_eq!(s.events, 4);
        assert_eq!(s.transactions, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.by_type["txn_phase"], 2);
    }

    #[test]
    fn rejects_reply_before_request() {
        let text = [
            line(1, 50, EventKind::TxnBegin { txn: 1, block: 4, write: false }),
            line(2, 50, EventKind::TxnEnd { txn: 1, block: 4, latency: 0, retries: 0 }),
            line(3, 60, EventKind::TxnBegin { txn: 2, block: 8, write: false }),
        ]
        .join("\n");
        assert!(validate_trace(&text).is_ok());
        // An end whose cycle precedes its begin is a reply before request.
        let bad = [
            line(1, 50, EventKind::TxnBegin { txn: 1, block: 4, write: false }),
            // Hand-built line: merged order says cycle can't run backwards,
            // so model it as a same-cycle merge with inconsistent latency.
            line(2, 50, EventKind::TxnEnd { txn: 1, block: 4, latency: 10, retries: 0 }),
        ]
        .join("\n");
        let err = validate_trace(&bad).unwrap_err();
        assert!(err.contains("latency"), "{err}");
    }

    #[test]
    fn rejects_backwards_cycles_and_stale_seq() {
        let back = [
            line(1, 50, EventKind::Nack { txn: 1, block: 4 }),
            line(2, 40, EventKind::Nack { txn: 1, block: 4 }),
        ]
        .join("\n");
        assert!(validate_trace(&back).unwrap_err().contains("backwards"));
        let stale = [
            line(5, 50, EventKind::Nack { txn: 1, block: 4 }),
            line(5, 60, EventKind::Nack { txn: 1, block: 4 }),
        ]
        .join("\n");
        assert!(validate_trace(&stale).unwrap_err().contains("seq"));
    }

    #[test]
    fn rejects_shrinking_backoff() {
        let text = [
            line(1, 10, EventKind::TxnBegin { txn: 1, block: 4, write: true }),
            line(2, 20, EventKind::Retry { txn: 1, block: 4, attempt: 1, backoff: 15 }),
            line(3, 40, EventKind::Retry { txn: 1, block: 4, attempt: 2, backoff: 30 }),
            line(4, 80, EventKind::Retry { txn: 1, block: 4, attempt: 3, backoff: 15 }),
        ]
        .join("\n");
        let err = validate_trace(&text).unwrap_err();
        assert!(err.contains("backoff shrank"), "{err}");
    }

    #[test]
    fn rejects_duplicate_attempts_and_double_lifecycle() {
        let dup = [
            line(1, 20, EventKind::Retry { txn: 1, block: 4, attempt: 1, backoff: 15 }),
            line(2, 40, EventKind::Retry { txn: 1, block: 4, attempt: 1, backoff: 15 }),
        ]
        .join("\n");
        assert!(validate_trace(&dup).unwrap_err().contains("attempt"));
        let twice = [
            line(1, 10, EventKind::TxnBegin { txn: 1, block: 4, write: false }),
            line(2, 20, EventKind::TxnBegin { txn: 1, block: 4, write: false }),
        ]
        .join("\n");
        assert!(validate_trace(&twice).unwrap_err().contains("twice"));
    }

    #[test]
    fn tolerates_truncated_history() {
        // Ring eviction can drop the begin: phases/end alone still validate.
        let text = [
            line(7, 100, EventKind::TxnPhase { txn: 3, block: 4, phase: Phase::HomeLookup }),
            line(9, 160, EventKind::TxnEnd { txn: 3, block: 4, latency: 70, retries: 0 }),
        ]
        .join("\n");
        let s = validate_trace(&text).unwrap();
        assert_eq!(s.transactions, 1);
        assert_eq!(s.completed, 0, "no begin observed");
    }

    #[test]
    fn rejects_malformed_lines_and_unknown_types() {
        assert!(validate_trace("not json").is_err());
        assert!(validate_trace(r#"{"seq":1,"cycle":2}"#).is_err());
        assert!(
            validate_trace(r#"{"seq":1,"cycle":2,"cluster":0,"type":"mystery"}"#)
                .unwrap_err()
                .contains("unknown event type")
        );
    }

    #[test]
    fn stats_schema_validation() {
        let good = r#"{"schema":"scd-run-stats/v1","stats":{"cycles":10,
            "shared_reads":1,"shared_writes":2,"l2_misses":0,
            "traffic":{"requests":3,"replies":3,"invalidations":1,"acks":1,"total":8}},
            "metrics":null}"#;
        validate_stats_json(good).unwrap();
        let bad_total = good.replace(r#""total":8"#, r#""total":9"#);
        assert!(validate_stats_json(&bad_total).unwrap_err().contains("sum"));
        assert!(validate_stats_json(r#"{"schema":"other/v9"}"#).is_err());
        assert!(validate_stats_json("{}").is_err());
    }
}
