//! Streaming sinks: incremental JSONL telemetry emitted *during* a run.
//!
//! The post-hoc exporters (PRs 2–3) only speak after `Machine::run`
//! returns; a sink receives the same records line by line while the run
//! is still in flight. Three contracts:
//!
//! * **Byte compatibility.** Trace-event lines pushed through a sink are
//!   byte-identical to the lines a post-hoc `--trace-out` file would
//!   contain, in the same `(cycle, seq)` merge order (the machine holds
//!   future-stamped events back until the simulation clock passes them).
//!   When rings are large enough that nothing is evicted,
//!   [`extract_trace_lines`] over the stream equals the post-hoc file
//!   exactly; with eviction the stream is a strict superset — streaming
//!   never loses what the rings lost.
//! * **Inert when detached.** A machine with no sink attached behaves
//!   bit-identically to one built before sinks existed; the hook is one
//!   pre-computed bool per event, under the same <2% disabled-overhead
//!   guard as tracing itself.
//! * **Backpressure never blocks the simulation.** A sink that cannot
//!   keep up sheds *its own* load: [`ChannelSink`] drops the newest line
//!   and counts it, it never stalls the caller.
//!
//! Stream-only records (`run_meta`, `interval`, `attrib_delta`,
//! `patterns`, `run_end`, and the sweep engine's `sweep_begin`/
//! `sweep_run`/`sweep_end`) share the JSONL transport and are
//! distinguished by their `type` field, which is disjoint from the nine
//! trace-event types.

use std::collections::BTreeSet;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

use crate::event::TraceEvent;
use crate::json::Json;
use crate::metrics::IntervalSnapshot;
use crate::replay::{validate_trace, TraceSummary};

/// The nine trace-event `type`s (the JSONL envelope of
/// [`TraceEvent::to_json`]). Stream-only record types must stay disjoint
/// from this set so a stream can be split back into events and records.
pub const EVENT_TYPES: [&str; 9] = [
    "txn_begin",
    "txn_phase",
    "txn_end",
    "nack",
    "retry",
    "inval",
    "replacement",
    "msg_send",
    "msg_deliver",
];

/// A consumer of rendered JSONL telemetry lines.
///
/// Implementations must never block the caller: the machine emits from
/// inside its event loop, so a slow consumer has to buffer or shed load
/// on its own side and account for what it shed via [`TraceSink::dropped`].
pub trait TraceSink: Send {
    /// Consumes one rendered JSONL line (no trailing newline).
    fn emit(&mut self, line: &str);

    /// Pushes any buffered lines to the underlying transport.
    fn flush(&mut self);

    /// Lines this sink discarded under backpressure (0 for lossless
    /// sinks).
    fn dropped(&self) -> u64 {
        0
    }
}

/// Lossless file sink: one JSONL line per [`TraceSink::emit`], buffered
/// through a [`std::io::BufWriter`]. Write errors are counted as dropped
/// lines rather than surfaced mid-run (the simulation must not fail
/// because a disk filled).
pub struct JsonlFileSink {
    out: std::io::BufWriter<std::fs::File>,
    dropped: u64,
}

impl JsonlFileSink {
    /// Creates (truncating) `path` and returns a sink writing to it.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlFileSink {
            out: std::io::BufWriter::new(std::fs::File::create(path)?),
            dropped: 0,
        })
    }
}

impl TraceSink for JsonlFileSink {
    fn emit(&mut self, line: &str) {
        if writeln!(self.out, "{line}").is_err() {
            self.dropped += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Drop for JsonlFileSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Bounded-channel sink for live consumers (dashboards, servers).
///
/// Backpressure policy: **drop-newest, never block**. When the channel's
/// buffer is full (or the receiver hung up), the line being emitted is
/// discarded and counted; lines already buffered are preserved, so the
/// consumer sees a prefix-faithful stream plus an honest drop count.
pub struct ChannelSink {
    tx: SyncSender<String>,
    dropped: Arc<AtomicU64>,
}

impl ChannelSink {
    /// A sink/receiver pair over a channel buffering at most `capacity`
    /// lines.
    pub fn bounded(capacity: usize) -> (Self, Receiver<String>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
        (
            ChannelSink {
                tx,
                dropped: Arc::new(AtomicU64::new(0)),
            },
            rx,
        )
    }

    /// A shared handle onto the drop counter, for observing shed load
    /// after the sink has been boxed and handed to the machine.
    pub fn drop_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.dropped)
    }
}

impl TraceSink for ChannelSink {
    fn emit(&mut self, line: &str) {
        match self.tx.try_send(line.to_string()) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn flush(&mut self) {}

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// In-memory sink for tests: lossless, shared via an
/// `Arc<Mutex<Vec<String>>>` handle that outlives the boxed sink.
#[derive(Default)]
pub struct BufferSink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl BufferSink {
    /// An empty buffer sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared line buffer (clone before boxing the sink).
    pub fn handle(&self) -> Arc<Mutex<Vec<String>>> {
        Arc::clone(&self.lines)
    }
}

impl TraceSink for BufferSink {
    fn emit(&mut self, line: &str) {
        self.lines.lock().unwrap().push(line.to_string());
    }

    fn flush(&mut self) {}
}

// ---------------------------------------------------------------------
// Stream-only record constructors. The schemas are part of the public
// JSONL surface: add fields, never rename.
// ---------------------------------------------------------------------

/// `run_meta`: the opening record of a single-run stream, carrying the
/// same `run` object the `scd-run-stats/v1` document embeds.
pub fn run_meta_record(run: &Json) -> Json {
    Json::obj()
        .with("type", Json::Str("run_meta".into()))
        .with("run", run.clone())
}

/// `interval`: one window of the interval time series, emitted at its
/// closing boundary. Every trace event with `cycle < window.end`
/// precedes this record in the stream.
pub fn interval_record(snap: &IntervalSnapshot) -> Json {
    Json::obj()
        .with("type", Json::Str("interval".into()))
        .with("window", snap.to_json())
}

/// `attrib_delta`: per-class and per-link traffic accumulated during one
/// interval window (`classes` keys follow `AttribClass::label`; `links`
/// is capped to the busiest movers of the window, sorted by endpoint).
pub fn attrib_delta_record(
    start: u64,
    end: u64,
    classes: &[(&'static str, Json)],
    links: &[(usize, usize, u64)],
) -> Json {
    let mut cls = Json::obj();
    for (label, counters) in classes {
        cls.set(label, counters.clone());
    }
    Json::obj()
        .with("type", Json::Str("attrib_delta".into()))
        .with("start", Json::U64(start))
        .with("end", Json::U64(end))
        .with("classes", cls)
        .with(
            "links",
            Json::Arr(
                links
                    .iter()
                    .map(|(from, to, flits)| {
                        Json::obj()
                            .with("from", Json::U64(*from as u64))
                            .with("to", Json::U64(*to as u64))
                            .with("flits", Json::U64(*flits))
                    })
                    .collect(),
            ),
        )
}

/// `patterns`: one directory-occupancy sample, emitted at each interval
/// boundary when the observatory is on. `sharers[i]` counts live
/// directory entries currently recording `i` sharers (index 0 counts
/// dirty/single-owner entries as 1 — the histogram is over the sharer
/// superset each scheme would invalidate), trailing zeros trimmed.
pub fn patterns_record(start: u64, end: u64, live_entries: u64, sharers: &[u64]) -> Json {
    Json::obj()
        .with("type", Json::Str("patterns".into()))
        .with("start", Json::U64(start))
        .with("end", Json::U64(end))
        .with("live_entries", Json::U64(live_entries))
        .with(
            "sharers",
            Json::Arr(sharers.iter().map(|&n| Json::U64(n)).collect()),
        )
}

/// `run_end`: the closing record of a single-run stream. `recorded` and
/// `dropped_events` mirror the tracer's counters, so a consumer can tell
/// how much ring history the post-hoc file will be missing.
pub fn run_end_record(cycles: u64, recorded: u64, dropped_events: u64) -> Json {
    Json::obj()
        .with("type", Json::Str("run_end".into()))
        .with("cycles", Json::U64(cycles))
        .with("recorded", Json::U64(recorded))
        .with("dropped_events", Json::U64(dropped_events))
}

/// Extracts the trace-event lines of a stream, verbatim and in order,
/// ready to diff byte-for-byte against a post-hoc `--trace-out` file.
/// Returns an empty string when the stream holds no events.
pub fn extract_trace_lines(stream: &str) -> String {
    let mut out = String::new();
    for line in stream.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Ok(obj) = Json::parse(line) {
            if let Some(ty) = obj.get("type").and_then(Json::as_str) {
                if EVENT_TYPES.contains(&ty) {
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
    }
    out
}

/// What a validated stream contained.
#[derive(Clone, Debug, Default)]
pub struct StreamSummary {
    /// Non-empty lines in the stream.
    pub lines: usize,
    /// Trace-event lines (also validated as a trace).
    pub events: usize,
    /// Interval records.
    pub intervals: usize,
    /// Attribution-delta records.
    pub attrib_deltas: usize,
    /// Directory-occupancy (`patterns`) sample records.
    pub patterns_samples: usize,
    /// Sweep per-run progress records.
    pub sweep_runs: usize,
    /// Whether a `run_end` record closed the stream.
    pub run_ended: bool,
    /// Whether a `sweep_end` record closed the stream.
    pub sweep_ended: bool,
    /// The embedded trace's summary (zeroed when the stream had no
    /// events).
    pub trace: TraceSummary,
}

fn req_u64(obj: &Json, key: &str, line_no: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {line_no}: `{key}` missing or not an integer"))
}

/// Validates a streamed JSONL telemetry file: every line is a known
/// record, the embedded trace-event lines form a valid trace (all
/// [`validate_trace`] invariants), interval windows tile and are ordered
/// against the events around them, sweep progress counts monotonically
/// to its total, and a `run_end`/`sweep_end` record (if present) is the
/// final line.
pub fn validate_stream(text: &str) -> Result<StreamSummary, String> {
    let mut summary = StreamSummary::default();
    let mut trace_lines = String::new();
    let mut last_interval_end: Option<u64> = None;
    let mut sweep_total: Option<u64> = None;
    let mut sweep_completed: u64 = 0;
    let mut sweep_indices: BTreeSet<u64> = BTreeSet::new();
    let mut closed_by: Option<&'static str> = None;

    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(closer) = closed_by {
            return Err(format!("line {line_no}: record after `{closer}`"));
        }
        summary.lines += 1;
        let obj = Json::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
        let ty = obj
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {line_no}: missing `type`"))?;
        if EVENT_TYPES.contains(&ty) {
            summary.events += 1;
            let cycle = req_u64(&obj, "cycle", line_no)?;
            // Ordering guarantee: an interval record is emitted only after
            // every event of its window, so no event may surface later
            // with a cycle from inside an already-closed window.
            if let Some(end) = last_interval_end {
                if cycle < end {
                    return Err(format!(
                        "line {line_no}: event at cycle {cycle} after the interval ending at {end}"
                    ));
                }
            }
            trace_lines.push_str(line);
            trace_lines.push('\n');
            continue;
        }
        match ty {
            "run_meta" => {
                obj.get("run")
                    .ok_or_else(|| format!("line {line_no}: run_meta without `run`"))?;
            }
            "interval" => {
                summary.intervals += 1;
                let window = obj
                    .get("window")
                    .ok_or_else(|| format!("line {line_no}: interval without `window`"))?;
                let start = req_u64(window, "start", line_no)?;
                let end = req_u64(window, "end", line_no)?;
                if end <= start {
                    return Err(format!(
                        "line {line_no}: interval window [{start}, {end}) is empty"
                    ));
                }
                if let Some(prev) = last_interval_end {
                    if start != prev {
                        return Err(format!(
                            "line {line_no}: interval starts at {start}, previous ended at {prev}"
                        ));
                    }
                }
                last_interval_end = Some(end);
            }
            "attrib_delta" => {
                summary.attrib_deltas += 1;
                let start = req_u64(&obj, "start", line_no)?;
                let end = req_u64(&obj, "end", line_no)?;
                if end <= start {
                    return Err(format!(
                        "line {line_no}: attrib_delta window [{start}, {end}) is empty"
                    ));
                }
                obj.get("classes")
                    .ok_or_else(|| format!("line {line_no}: attrib_delta without `classes`"))?;
            }
            "patterns" => {
                summary.patterns_samples += 1;
                let start = req_u64(&obj, "start", line_no)?;
                let end = req_u64(&obj, "end", line_no)?;
                if end <= start {
                    return Err(format!(
                        "line {line_no}: patterns window [{start}, {end}) is empty"
                    ));
                }
                let live = req_u64(&obj, "live_entries", line_no)?;
                let sharers = obj
                    .get("sharers")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("line {line_no}: patterns without `sharers`"))?;
                let counted: u64 = sharers.iter().filter_map(Json::as_u64).sum();
                if counted > live {
                    return Err(format!(
                        "line {line_no}: patterns sharer histogram counts {counted} \
                         entries but only {live} are live"
                    ));
                }
            }
            "run_end" => {
                let recorded = req_u64(&obj, "recorded", line_no)?;
                let dropped = req_u64(&obj, "dropped_events", line_no)?;
                req_u64(&obj, "cycles", line_no)?;
                if dropped > recorded {
                    return Err(format!(
                        "line {line_no}: run_end dropped_events {dropped} > recorded {recorded}"
                    ));
                }
                if (summary.events as u64) > recorded {
                    return Err(format!(
                        "line {line_no}: stream carries {} events but run_end says {recorded} recorded",
                        summary.events
                    ));
                }
                summary.run_ended = true;
                closed_by = Some("run_end");
            }
            "sweep_begin" => {
                let total = req_u64(&obj, "total", line_no)?;
                if total == 0 {
                    return Err(format!("line {line_no}: sweep_begin with total 0"));
                }
                sweep_total = Some(total);
            }
            "sweep_run" => {
                summary.sweep_runs += 1;
                let total = sweep_total
                    .ok_or_else(|| format!("line {line_no}: sweep_run before sweep_begin"))?;
                let completed = req_u64(&obj, "completed", line_no)?;
                let index = req_u64(&obj, "index", line_no)?;
                if completed != sweep_completed + 1 || completed > total {
                    return Err(format!(
                        "line {line_no}: sweep_run completed {completed} after {sweep_completed} (total {total})"
                    ));
                }
                if !sweep_indices.insert(index) {
                    return Err(format!("line {line_no}: sweep_run index {index} repeats"));
                }
                sweep_completed = completed;
            }
            "sweep_end" => {
                let runs = req_u64(&obj, "runs", line_no)?;
                if runs != sweep_completed {
                    return Err(format!(
                        "line {line_no}: sweep_end runs {runs} != {sweep_completed} sweep_run records"
                    ));
                }
                summary.sweep_ended = true;
                closed_by = Some("sweep_end");
            }
            other => {
                return Err(format!("line {line_no}: unknown record type `{other}`"));
            }
        }
    }
    if !trace_lines.is_empty() {
        summary.trace = validate_trace(&trace_lines)
            .map_err(|e| format!("embedded trace: {e}"))?;
    }
    Ok(summary)
}

/// Renders one [`TraceEvent`] exactly as the streamed and post-hoc JSONL
/// surfaces do (a convenience wrapper so callers don't have to remember
/// that the byte contract is `to_json().to_string()`).
pub fn event_line(ev: &TraceEvent) -> String {
    ev.to_json().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn event(seq: u64, cycle: u64) -> TraceEvent {
        TraceEvent {
            seq,
            cycle,
            cluster: 0,
            kind: EventKind::TxnBegin {
                txn: seq,
                block: 8,
                write: false,
            },
        }
    }

    fn end_event(seq: u64, cycle: u64, txn: u64, begin: u64) -> TraceEvent {
        TraceEvent {
            seq,
            cycle,
            cluster: 0,
            kind: EventKind::TxnEnd {
                txn,
                block: 8,
                latency: cycle - begin,
                retries: 0,
            },
        }
    }

    #[test]
    fn channel_sink_drops_newest_and_counts() {
        let (mut sink, rx) = ChannelSink::bounded(2);
        let drops = sink.drop_counter();
        for i in 0..5 {
            sink.emit(&format!("line {i}"));
        }
        assert_eq!(sink.dropped(), 3);
        assert_eq!(drops.load(Ordering::Relaxed), 3);
        // The buffered prefix survives intact: drop-newest, not drop-oldest.
        let got: Vec<String> = rx.try_iter().collect();
        assert_eq!(got, vec!["line 0".to_string(), "line 1".to_string()]);
    }

    #[test]
    fn channel_sink_counts_disconnected_receiver() {
        let (mut sink, rx) = ChannelSink::bounded(4);
        drop(rx);
        sink.emit("orphan");
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn buffer_sink_is_lossless_and_shared() {
        let sink = BufferSink::new();
        let handle = sink.handle();
        let mut boxed: Box<dyn TraceSink> = Box::new(sink);
        boxed.emit("a");
        boxed.emit("b");
        assert_eq!(boxed.dropped(), 0);
        assert_eq!(*handle.lock().unwrap(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn extraction_is_verbatim_and_order_preserving() {
        let ev1 = event_line(&event(1, 10));
        let ev2 = event_line(&end_event(2, 30, 1, 10));
        let stream = format!(
            "{}\n{ev1}\n{}\n{ev2}\n{}\n",
            run_meta_record(&Json::obj()),
            interval_record(&IntervalSnapshot {
                start: 0,
                end: 20,
                ..Default::default()
            }),
            run_end_record(30, 2, 0),
        );
        assert_eq!(extract_trace_lines(&stream), format!("{ev1}\n{ev2}\n"));
    }

    #[test]
    fn validates_a_well_formed_run_stream() {
        let stream = format!(
            "{}\n{}\n{}\n{}\n{}\n",
            run_meta_record(&Json::obj().with("app", Json::Str("lu".into()))),
            event_line(&event(1, 10)),
            interval_record(&IntervalSnapshot { start: 0, end: 20, ..Default::default() }),
            event_line(&end_event(2, 30, 1, 10)),
            run_end_record(30, 2, 0),
        );
        let s = validate_stream(&stream).expect("valid stream");
        assert_eq!(s.events, 2);
        assert_eq!(s.intervals, 1);
        assert!(s.run_ended);
        assert_eq!(s.trace.events, 2);
        assert_eq!(s.trace.transactions, 1);
    }

    #[test]
    fn rejects_records_after_the_closing_record() {
        let stream = format!(
            "{}\n{}\n",
            run_end_record(10, 0, 0),
            event_line(&event(1, 5)),
        );
        let err = validate_stream(&stream).unwrap_err();
        assert!(err.contains("after `run_end`"), "{err}");
    }

    #[test]
    fn rejects_non_tiling_intervals() {
        let stream = format!(
            "{}\n{}\n",
            interval_record(&IntervalSnapshot { start: 0, end: 20, ..Default::default() }),
            interval_record(&IntervalSnapshot { start: 30, end: 40, ..Default::default() }),
        );
        let err = validate_stream(&stream).unwrap_err();
        assert!(err.contains("previous ended at 20"), "{err}");
    }

    #[test]
    fn rejects_overclaiming_drop_counts() {
        let err = validate_stream(&format!("{}\n", run_end_record(10, 3, 5))).unwrap_err();
        assert!(err.contains("dropped_events 5 > recorded 3"), "{err}");
    }

    #[test]
    fn validates_sweep_progress_records() {
        let begin = Json::obj()
            .with("type", Json::Str("sweep_begin".into()))
            .with("total", Json::U64(2))
            .with("jobs", Json::U64(1));
        let run = |i: u64, done: u64| {
            Json::obj()
                .with("type", Json::Str("sweep_run".into()))
                .with("index", Json::U64(i))
                .with("completed", Json::U64(done))
                .with("total", Json::U64(2))
        };
        let end = Json::obj()
            .with("type", Json::Str("sweep_end".into()))
            .with("runs", Json::U64(2));
        let ok = format!("{begin}\n{}\n{}\n{end}\n", run(0, 1), run(1, 2));
        let s = validate_stream(&ok).expect("valid sweep stream");
        assert_eq!(s.sweep_runs, 2);
        assert!(s.sweep_ended);

        let skipped = format!("{begin}\n{}\n", run(0, 2));
        assert!(validate_stream(&skipped).is_err(), "completed must count 1, 2, ...");
        let repeated = format!("{begin}\n{}\n{}\n", run(0, 1), run(0, 2));
        let err = validate_stream(&repeated).unwrap_err();
        assert!(err.contains("index 0 repeats"), "{err}");
    }

    #[test]
    fn validates_patterns_samples() {
        let ok = format!("{}\n", patterns_record(0, 100, 3, &[1, 2]));
        let s = validate_stream(&ok).expect("valid patterns record");
        assert_eq!(s.patterns_samples, 1);
        let over = format!("{}\n", patterns_record(0, 100, 1, &[1, 2]));
        let err = validate_stream(&over).unwrap_err();
        assert!(err.contains("only 1 are live"), "{err}");
        let empty = format!("{}\n", patterns_record(5, 5, 0, &[]));
        assert!(validate_stream(&empty).unwrap_err().contains("empty"));
    }

    #[test]
    fn stream_record_types_stay_disjoint_from_event_types() {
        for ty in [
            "run_meta",
            "interval",
            "attrib_delta",
            "patterns",
            "run_end",
            "sweep_begin",
            "sweep_run",
            "sweep_end",
        ] {
            assert!(!EVENT_TYPES.contains(&ty), "`{ty}` collides with an event type");
        }
    }
}
