//! Cross-run comparison: diff two `scd-run-stats/v1` documents and judge
//! regressions against a tolerance.
//!
//! This is the consumer side of the perf trajectory: `BENCH_*.json`
//! points (and any `scdsim --stats-json` output) are stats documents, so
//! a committed baseline plus a fresh run plus [`compare_docs`] is a CI
//! perf gate. Tracked metrics are the paper's own evaluation axes —
//! execution time, traffic per shared reference, invalidations per write,
//! mean hops — plus the phase-latency percentiles when the metrics
//! registry was on. All are lower-is-better; a candidate regresses when
//! any metric exceeds the baseline by more than the tolerance (in
//! percent).

use crate::json::Json;

/// One tracked metric of one comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct ReportMetric {
    /// Stable metric name.
    pub name: &'static str,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub cand: f64,
    /// Relative change in percent (positive = worse; infinite when the
    /// baseline is zero and the candidate is not).
    pub delta_pct: f64,
    /// Whether the change exceeds the tolerance.
    pub regressed: bool,
}

/// The outcome of comparing one candidate against one baseline.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Baseline document label (`app/scheme` when the run section names
    /// them).
    pub base_label: String,
    /// Candidate document label.
    pub cand_label: String,
    /// Tolerance applied, in percent.
    pub tolerance_pct: f64,
    /// Tracked metrics present in both documents.
    pub metrics: Vec<ReportMetric>,
}

impl Comparison {
    /// Metrics that regressed beyond the tolerance.
    pub fn regressions(&self) -> impl Iterator<Item = &ReportMetric> {
        self.metrics.iter().filter(|m| m.regressed)
    }

    /// Whether the candidate passes the gate.
    pub fn ok(&self) -> bool {
        self.metrics.iter().all(|m| !m.regressed)
    }

    /// Fixed-width comparison table plus a verdict line. Stable output —
    /// golden-tested.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "baseline:  {}", self.base_label);
        let _ = writeln!(out, "candidate: {}", self.cand_label);
        let _ = writeln!(
            out,
            "{:<18} {:>14} {:>14} {:>10}  verdict",
            "metric", "baseline", "candidate", "delta"
        );
        for m in &self.metrics {
            let delta = if m.delta_pct.is_infinite() {
                "+inf%".to_string()
            } else {
                format!("{:+.2}%", m.delta_pct)
            };
            let _ = writeln!(
                out,
                "{:<18} {:>14} {:>14} {:>10}  {}",
                m.name,
                fmt_value(m.base),
                fmt_value(m.cand),
                delta,
                if m.regressed { "REGRESSED" } else { "ok" }
            );
        }
        let failed = self.regressions().count();
        if failed == 0 {
            let _ = writeln!(
                out,
                "PASS: {} metrics within {}% of baseline",
                self.metrics.len(),
                fmt_value(self.tolerance_pct)
            );
        } else {
            let _ = writeln!(
                out,
                "FAIL: {failed} of {} metrics regressed beyond {}%",
                self.metrics.len(),
                fmt_value(self.tolerance_pct)
            );
        }
        out
    }
}

/// Integers print bare, everything else with 4 decimals.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// A short label for a stats document: `app/scheme` from its run section
/// when present.
pub fn doc_label(doc: &Json) -> String {
    let run = doc.get("run");
    let field = |key| {
        run.and_then(|r| r.get(key))
            .and_then(Json::as_str)
            .unwrap_or("?")
    };
    format!("{}/{}", field("app"), field("scheme"))
}

fn num(j: &Json) -> Option<f64> {
    j.as_f64().or_else(|| j.as_u64().map(|v| v as f64))
}

fn section_u64(stats: &Json, path: &[&str]) -> Option<f64> {
    let mut cur = stats;
    for key in path {
        cur = cur.get(key)?;
    }
    num(cur)
}

/// Extracts the tracked metrics of one `scd-run-stats/v1` document, in
/// schema order. Latency percentiles appear only when the document
/// carries a non-null metrics registry.
pub fn tracked_metrics(doc: &Json) -> Result<Vec<(&'static str, f64)>, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema`")?;
    if schema != crate::schema::RUN_STATS_SCHEMA {
        return Err(format!("unexpected schema `{schema}`"));
    }
    let stats = doc.get("stats").ok_or("missing `stats`")?;
    let need = |path: &[&str]| {
        section_u64(stats, path)
            .ok_or_else(|| format!("stats.{} missing or non-numeric", path.join(".")))
    };
    let cycles = need(&["cycles"])?;
    let reads = need(&["shared_reads"])?;
    let writes = need(&["shared_writes"])?;
    let traffic_total = need(&["traffic", "total"])?;
    let invals = need(&["traffic", "invalidations"])?;
    let mean_hops = need(&["network", "mean_hops"])?;
    let refs = (reads + writes).max(1.0);
    let mut out = vec![
        ("cycles", cycles),
        ("traffic_per_ref", traffic_total / refs),
        ("invals_per_write", invals / writes.max(1.0)),
        ("mean_hops", mean_hops),
    ];
    if let Some(metrics) = doc.get("metrics") {
        if *metrics != Json::Null {
            for (name, kind, pct) in [
                ("read_p50", "read", "p50"),
                ("read_p99", "read", "p99"),
                ("write_p50", "write", "p50"),
                ("write_p99", "write", "p99"),
            ] {
                if let Some(v) = section_u64(metrics, &["latency", kind, pct]) {
                    out.push((name, v));
                }
            }
        }
    }
    Ok(out)
}

/// Compares a candidate document against a baseline at `tolerance_pct`.
/// Only metrics present in both documents are judged (a baseline without
/// the metrics registry cannot gate latency percentiles).
pub fn compare_docs(
    base: &Json,
    cand: &Json,
    tolerance_pct: f64,
) -> Result<Comparison, String> {
    let base_metrics = tracked_metrics(base).map_err(|e| format!("baseline: {e}"))?;
    let cand_metrics = tracked_metrics(cand).map_err(|e| format!("candidate: {e}"))?;
    let mut metrics = Vec::new();
    for &(name, b) in &base_metrics {
        let Some(c) = cand_metrics
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, c)| c)
        else {
            continue;
        };
        let (delta_pct, regressed) = if b == 0.0 {
            if c == 0.0 {
                (0.0, false)
            } else {
                (f64::INFINITY, true)
            }
        } else {
            let d = (c - b) / b * 100.0;
            (d, d > tolerance_pct)
        };
        metrics.push(ReportMetric {
            name,
            base: b,
            cand: c,
            delta_pct,
            regressed,
        });
    }
    if metrics.is_empty() {
        return Err("no tracked metrics in common".into());
    }
    Ok(Comparison {
        base_label: doc_label(base),
        cand_label: doc_label(cand),
        tolerance_pct,
        metrics,
    })
}

// ----------------------------------------------------------------------
// Host throughput comparison (scd-sweep/v1 timing sections)
// ----------------------------------------------------------------------

/// One throughput rate of one comparison. Unlike [`ReportMetric`] these
/// are **higher-is-better** (simulated work per host second) and keyed by
/// the run id the sweep assigned, so the name is owned, not static.
#[derive(Clone, Debug, PartialEq)]
pub struct ThroughputMetric {
    /// `<run id>/refs_per_sec`-style label (`aggregate/...` for the
    /// sweep-wide rates).
    pub name: String,
    /// Baseline rate.
    pub base: f64,
    /// Candidate rate.
    pub cand: f64,
    /// Relative change in percent (positive = faster).
    pub delta_pct: f64,
    /// Whether this rate participates in the verdict. Only the
    /// `aggregate/*` rates are gated: per-run rates time a single run of
    /// a few milliseconds at CI scales, where scheduler noise swings
    /// them by tens of percent, so they are shown for diagnosis only.
    pub gated: bool,
    /// Whether the candidate fell more than the tolerance below the
    /// baseline (always `false` for ungated rates).
    pub regressed: bool,
}

/// The outcome of comparing the timing sections of two `scd-sweep/v1`
/// documents.
#[derive(Clone, Debug)]
pub struct ThroughputComparison {
    /// Tolerance applied, in percent of the baseline rate.
    pub tolerance_pct: f64,
    /// Rates present in both documents (aggregate first, then per run in
    /// baseline order).
    pub metrics: Vec<ThroughputMetric>,
}

impl ThroughputComparison {
    /// Rates that fell beyond the tolerance.
    pub fn regressions(&self) -> impl Iterator<Item = &ThroughputMetric> {
        self.metrics.iter().filter(|m| m.regressed)
    }

    /// Whether the candidate passes the gate.
    pub fn ok(&self) -> bool {
        self.metrics.iter().all(|m| !m.regressed)
    }

    /// Fixed-width throughput table plus a verdict line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<42} {:>14} {:>14} {:>10}  verdict",
            "throughput", "baseline", "candidate", "delta"
        );
        for m in &self.metrics {
            let _ = writeln!(
                out,
                "{:<42} {:>14} {:>14} {:>9.2}%  {}",
                m.name,
                fmt_value(m.base),
                fmt_value(m.cand),
                m.delta_pct,
                if m.regressed {
                    "REGRESSED"
                } else if m.gated {
                    "ok"
                } else {
                    "info"
                }
            );
        }
        let failed = self.regressions().count();
        let gated = self.metrics.iter().filter(|m| m.gated).count();
        if failed == 0 {
            let _ = writeln!(
                out,
                "PASS: {gated} gated throughput rates within {}% of baseline",
                fmt_value(self.tolerance_pct)
            );
        } else {
            let _ = writeln!(
                out,
                "FAIL: {failed} of {gated} gated throughput rates dropped more than {}%",
                fmt_value(self.tolerance_pct)
            );
        }
        out
    }
}

/// Extracts the throughput rates of one `scd-sweep/v1` document's timing
/// section: the aggregate `refs_per_sec`/`events_per_sec` plus each
/// run's `refs_per_sec`, keyed by run id. Fails when the document was
/// generated with `--no-timing` (timing is null) or predates the rates.
pub fn throughput_rates(doc: &Json) -> Result<Vec<(String, f64)>, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema`")?;
    if schema != crate::schema::SWEEP_SCHEMA {
        return Err(format!(
            "unexpected schema `{schema}` (throughput gating reads scd-sweep/v1 documents)"
        ));
    }
    let timing = match doc.get("timing") {
        Some(t) if *t != Json::Null => t,
        _ => return Err("timing section missing or null (sweep ran with --no-timing?)".into()),
    };
    let rate = |j: &Json, key: &str| {
        j.get(key)
            .and_then(num)
            .ok_or_else(|| format!("timing.{key} missing or non-numeric"))
    };
    let mut out = vec![
        ("aggregate/refs_per_sec".to_string(), rate(timing, "refs_per_sec")?),
        (
            "aggregate/events_per_sec".to_string(),
            rate(timing, "events_per_sec")?,
        ),
    ];
    for run in timing
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("timing.runs missing")?
    {
        let id = run
            .get("id")
            .and_then(Json::as_str)
            .ok_or("timing.runs[].id missing")?;
        out.push((format!("{id}/refs_per_sec"), rate(run, "refs_per_sec")?));
    }
    Ok(out)
}

/// Compares the host throughput of a candidate sweep against a baseline
/// sweep at `tolerance_pct`. Higher is better: a rate regresses when the
/// candidate falls more than the tolerance *below* the baseline; faster
/// candidates never fail. Only the `aggregate/*` rates carry the verdict
/// — per-run rates are far too noisy at CI scales (a single run lasts
/// milliseconds) and are listed as `info` rows. Rates with a zero
/// baseline (degenerate timer resolution) are reported but never judged.
pub fn compare_throughput(
    base: &Json,
    cand: &Json,
    tolerance_pct: f64,
) -> Result<ThroughputComparison, String> {
    let base_rates = throughput_rates(base).map_err(|e| format!("baseline: {e}"))?;
    let cand_rates = throughput_rates(cand).map_err(|e| format!("candidate: {e}"))?;
    let mut metrics = Vec::new();
    for (name, b) in base_rates {
        let Some(c) = cand_rates.iter().find(|(n, _)| *n == name).map(|&(_, c)| c) else {
            continue;
        };
        let gated = name.starts_with("aggregate/");
        let (delta_pct, regressed) = if b == 0.0 {
            (0.0, false)
        } else {
            let d = (c - b) / b * 100.0;
            (d, gated && d < -tolerance_pct)
        };
        metrics.push(ThroughputMetric {
            name,
            base: b,
            cand: c,
            delta_pct,
            gated,
            regressed,
        });
    }
    if metrics.is_empty() {
        return Err("no throughput rates in common".into());
    }
    Ok(ThroughputComparison {
        tolerance_pct,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(cycles: u64, traffic: [u64; 4], reads: u64, writes: u64) -> Json {
        let total: u64 = traffic.iter().sum();
        Json::parse(&format!(
            r#"{{"schema":"scd-run-stats/v1",
                "run":{{"app":"mp3d","scheme":"Dir4CV4"}},
                "stats":{{"cycles":{cycles},"shared_reads":{reads},
                  "shared_writes":{writes},"l2_misses":0,
                  "traffic":{{"requests":{},"replies":{},"invalidations":{},
                    "acks":{},"total":{total}}},
                  "network":{{"messages":{total},"hops":10,"mean_hops":2.5,
                    "contention_cycles":0}}}},
                "metrics":null}}"#,
            traffic[0], traffic[1], traffic[2], traffic[3],
        ))
        .unwrap()
    }

    #[test]
    fn self_comparison_is_clean() {
        let d = doc(1000, [40, 40, 10, 10], 50, 25);
        let cmp = compare_docs(&d, &d, 5.0).unwrap();
        assert!(cmp.ok());
        assert!(cmp.metrics.iter().all(|m| m.delta_pct == 0.0));
        assert_eq!(cmp.base_label, "mp3d/Dir4CV4");
    }

    #[test]
    fn tolerance_boundary_is_strict() {
        let base = doc(1000, [40, 40, 10, 10], 50, 25);
        // +4.9% cycles: just under a 5% tolerance.
        let under = doc(1049, [40, 40, 10, 10], 50, 25);
        assert!(compare_docs(&base, &under, 5.0).unwrap().ok());
        // +5.1%: just over.
        let over = doc(1051, [40, 40, 10, 10], 50, 25);
        let cmp = compare_docs(&base, &over, 5.0).unwrap();
        assert!(!cmp.ok());
        let failed: Vec<_> = cmp.regressions().map(|m| m.name).collect();
        assert_eq!(failed, ["cycles"]);
    }

    #[test]
    fn improvements_never_regress() {
        let base = doc(1000, [40, 40, 10, 10], 50, 25);
        let faster = doc(500, [20, 20, 5, 5], 50, 25);
        assert!(compare_docs(&base, &faster, 0.0).unwrap().ok());
    }

    #[test]
    fn zero_baseline_with_traffic_is_infinite_regression() {
        let base = doc(1000, [40, 40, 0, 10], 50, 25);
        let cand = doc(1000, [40, 40, 10, 10], 50, 25);
        let cmp = compare_docs(&base, &cand, 1000.0).unwrap();
        let m = cmp
            .metrics
            .iter()
            .find(|m| m.name == "invals_per_write")
            .unwrap();
        assert!(m.delta_pct.is_infinite());
        assert!(m.regressed, "infinite regression ignores tolerance");
    }

    #[test]
    fn latency_percentiles_gate_only_when_both_have_metrics() {
        let plain = doc(1000, [40, 40, 10, 10], 50, 25);
        let mut with_metrics = plain.clone();
        with_metrics.set(
            "metrics",
            Json::parse(
                r#"{"schema":"scd-metrics/v1",
                    "latency":{"read":{"p50":100,"p99":400},
                               "write":{"p50":150,"p99":600}}}"#,
            )
            .unwrap(),
        );
        let cmp = compare_docs(&plain, &with_metrics, 5.0).unwrap();
        assert_eq!(cmp.metrics.len(), 4, "no percentile gating vs a plain baseline");
        let cmp2 = compare_docs(&with_metrics, &with_metrics, 5.0).unwrap();
        assert_eq!(cmp2.metrics.len(), 8);
        assert!(cmp2.metrics.iter().any(|m| m.name == "write_p99"));
    }

    #[test]
    fn render_is_stable() {
        let base = doc(1000, [40, 40, 10, 10], 50, 25);
        let over = doc(1100, [40, 40, 10, 10], 50, 25);
        let text = compare_docs(&base, &over, 5.0).unwrap().render();
        assert!(text.contains("baseline:  mp3d/Dir4CV4"), "{text}");
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("FAIL: 1 of 4 metrics regressed beyond 5%"), "{text}");
        let clean = compare_docs(&base, &base, 5.0).unwrap().render();
        assert!(clean.contains("PASS: 4 metrics within 5% of baseline"), "{clean}");
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(tracked_metrics(&Json::obj()).is_err());
        let wrong = Json::parse(r#"{"schema":"other/v1"}"#).unwrap();
        assert!(compare_docs(&wrong, &wrong, 5.0).is_err());
    }

    /// A minimal scd-sweep/v1 document with the given aggregate and
    /// per-run refs_per_sec (events_per_sec fixed at 10x refs).
    fn sweep_doc(agg_refs: f64, runs: &[(&str, f64)]) -> Json {
        let per_run: String = runs
            .iter()
            .map(|(id, r)| {
                format!(
                    r#"{{"id":"{id}","seconds":1.0,"refs_per_sec":{r},"events_per_sec":{}}}"#,
                    r * 10.0
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        Json::parse(&format!(
            r#"{{"schema":"scd-sweep/v1","grid":{{}},"runs":[],
                "timing":{{"jobs":1,"wall_seconds":1.0,"serial_seconds":1.0,
                  "speedup":1.0,"refs_per_sec":{agg_refs},
                  "events_per_sec":{},"runs":[{per_run}]}}}}"#,
            agg_refs * 10.0
        ))
        .unwrap()
    }

    #[test]
    fn throughput_self_comparison_is_clean() {
        let d = sweep_doc(50_000.0, &[("lu/dir4cv4/s1", 60_000.0)]);
        let cmp = compare_throughput(&d, &d, 10.0).unwrap();
        assert!(cmp.ok());
        assert_eq!(cmp.metrics.len(), 3, "aggregate refs+events, one per-run rate");
        assert!(cmp.metrics.iter().all(|m| m.delta_pct == 0.0));
    }

    #[test]
    fn throughput_gate_is_higher_is_better() {
        let base = sweep_doc(50_000.0, &[("lu/dir4cv4/s1", 60_000.0)]);
        // 3x faster: lower-is-better logic would flag this as a +200%
        // "regression"; the throughput gate must pass it.
        let faster = sweep_doc(150_000.0, &[("lu/dir4cv4/s1", 180_000.0)]);
        assert!(compare_throughput(&base, &faster, 0.0).unwrap().ok());
        // 20% slower against a 15% tolerance: fail, on both aggregate
        // rates — the per-run rate dropped just as far but is info-only.
        let slower = sweep_doc(40_000.0, &[("lu/dir4cv4/s1", 48_000.0)]);
        let cmp = compare_throughput(&base, &slower, 15.0).unwrap();
        assert!(!cmp.ok());
        assert_eq!(cmp.regressions().count(), 2);
        assert!(cmp.regressions().all(|m| m.name.starts_with("aggregate/")));
        // ...but within a 25% tolerance it passes.
        assert!(compare_throughput(&base, &slower, 25.0).unwrap().ok());
    }

    #[test]
    fn throughput_matches_runs_by_id_and_skips_strangers() {
        let base = sweep_doc(50_000.0, &[("lu/dir4cv4/s1", 60_000.0), ("gone/s1", 10.0)]);
        let cand = sweep_doc(50_000.0, &[("lu/dir4cv4/s1", 59_000.0), ("new/s1", 99.0)]);
        let cmp = compare_throughput(&base, &cand, 5.0).unwrap();
        assert_eq!(cmp.metrics.len(), 3, "unmatched run ids are not judged");
        assert!(cmp.ok());
    }

    #[test]
    fn throughput_rejects_untimed_and_foreign_documents() {
        let untimed =
            Json::parse(r#"{"schema":"scd-sweep/v1","grid":{},"runs":[],"timing":null}"#)
                .unwrap();
        let d = sweep_doc(1.0, &[]);
        assert!(compare_throughput(&untimed, &d, 5.0).is_err());
        let stats = doc(1000, [40, 40, 10, 10], 50, 25);
        assert!(compare_throughput(&stats, &d, 5.0).is_err());
    }

    #[test]
    fn throughput_render_is_stable() {
        let base = sweep_doc(50_000.0, &[("lu/dir4cv4/s1", 60_000.0)]);
        let slower = sweep_doc(40_000.0, &[("lu/dir4cv4/s1", 48_000.0)]);
        let text = compare_throughput(&base, &slower, 15.0).unwrap().render();
        assert!(text.contains("aggregate/refs_per_sec"), "{text}");
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("info"), "per-run rows are info-only: {text}");
        assert!(
            text.contains("FAIL: 2 of 2 gated throughput rates dropped more than 15%"),
            "{text}"
        );
        let clean = compare_throughput(&base, &base, 15.0).unwrap().render();
        assert!(
            clean.contains("PASS: 2 gated throughput rates within 15% of baseline"),
            "{clean}"
        );
    }
}
