//! The versioned schema tags of every machine-readable document the
//! simulator emits.
//!
//! One constant per document family, used by both the emitters and the
//! validators so a tag can never drift between the two sides. The tags
//! are part of the published output surface: bump the `/v1` suffix only
//! with a deliberate, documented format break — adding fields to a
//! document does *not* require a bump (consumers must ignore unknown
//! fields), renaming or removing them does.

/// `scdsim --stats-json` / `BENCH_*.json` run documents.
pub const RUN_STATS_SCHEMA: &str = "scd-run-stats/v1";

/// The metrics-registry section (phase-latency histograms, intervals).
pub const METRICS_SCHEMA: &str = "scd-metrics/v1";

/// The traffic-attribution section (per-class bytes/flits, links).
pub const ATTRIB_SCHEMA: &str = "scd-attrib/v1";

/// `scd-sweep` aggregated grid documents.
pub const SWEEP_SCHEMA: &str = "scd-sweep/v1";

/// `scdsim --critical` queueing-vs-service reports.
pub const CRITICAL_SCHEMA: &str = "scd-critical/v1";

/// `scdsim --patterns-out` / `scd-patterns` directory-observatory
/// documents (sharing-pattern classifier + occupancy telemetry).
pub const PATTERNS_SCHEMA: &str = "scd-patterns/v1";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_distinct_and_versioned() {
        let all = [
            RUN_STATS_SCHEMA,
            METRICS_SCHEMA,
            ATTRIB_SCHEMA,
            SWEEP_SCHEMA,
            CRITICAL_SCHEMA,
            PATTERNS_SCHEMA,
        ];
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
        for tag in all {
            assert!(tag.starts_with("scd-") && tag.ends_with("/v1"), "{tag}");
        }
    }
}
