//! The structured trace-event vocabulary.
//!
//! One [`TraceEvent`] records one observable step of the machine:
//! transaction lifecycle edges (begin, phase transition, end), NACK/retry
//! recovery, sparse-directory replacements, and raw message send/deliver
//! hops. Events carry a global sequence number (total order of recording)
//! and the simulated cycle, so per-cluster ring buffers can be merged back
//! into one causal history.

use crate::json::Json;

/// A coherence-transaction lifecycle phase (the latency breakdown the
/// metrics registry histograms: issue → home lookup → invalidation
/// fan-out → reply).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// The requester issued the request into the network.
    Issue,
    /// The home directory picked the request up (first service, not a
    /// queued replay).
    HomeLookup,
    /// The home sent the write's invalidation fan-out.
    Fanout,
    /// The requester observed the completing reply.
    Reply,
}

impl Phase {
    /// Stable schema name.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Issue => "issue",
            Phase::HomeLookup => "home_lookup",
            Phase::Fanout => "fanout",
            Phase::Reply => "reply",
        }
    }
}

/// What happened.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A coherence transaction (read or write miss) issued its request.
    TxnBegin {
        /// Transaction id, unique within the run.
        txn: u64,
        /// The block.
        block: u64,
        /// Whether this is a write/ownership transaction.
        write: bool,
    },
    /// A transaction crossed a lifecycle phase.
    TxnPhase {
        /// Transaction id.
        txn: u64,
        /// The block.
        block: u64,
        /// The phase entered.
        phase: Phase,
    },
    /// A transaction completed at its requester.
    TxnEnd {
        /// Transaction id.
        txn: u64,
        /// The block.
        block: u64,
        /// Cycles from issue to completion.
        latency: u64,
        /// NACK-driven reissues the transaction absorbed.
        retries: u32,
    },
    /// The home refused a request with a transient NACK.
    Nack {
        /// Transaction id (the requester's outstanding MSHR).
        txn: u64,
        /// The block.
        block: u64,
    },
    /// A requester reissued a NACKed request after exponential backoff.
    Retry {
        /// Transaction id.
        txn: u64,
        /// The block.
        block: u64,
        /// Reissue ordinal, starting at 1.
        attempt: u32,
        /// Backoff delay in cycles before the reissue.
        backoff: u64,
    },
    /// The home directory decided an invalidation set: one event per
    /// directory write transaction (and per `Dir_i NB` pointer-overflow
    /// eviction), weighted by the invalidation messages sent. The
    /// event-stream mirror of the `RunStats::invalidations` histogram,
    /// and the raw input of the sharing-pattern classifier.
    Inval {
        /// The block whose sharers were invalidated.
        block: u64,
        /// Invalidation messages sent (0 for a write that found a dirty
        /// owner to forward to — an ownership transfer, no fan-out).
        targets: u32,
        /// Why: `"write"` for a write fan-out, `"nb_evict"` for a
        /// `Dir_i NB` read-caused pointer eviction, `"swb_evict"` for a
        /// sharing-writeback-close eviction.
        cause: &'static str,
    },
    /// A sparse-directory (or overflow wide-slot) entry was displaced and
    /// its covered copies flushed.
    Replacement {
        /// The victim block losing its entry.
        victim: u64,
        /// Clusters flushed.
        targets: u32,
        /// Whether the victim entry recorded a dirty owner.
        dirty: bool,
    },
    /// A protocol message entered the network.
    MsgSend {
        /// Source cluster.
        src: u32,
        /// Destination cluster.
        dst: u32,
        /// Stable message-kind label (see `scd-protocol::MsgKind::label`).
        msg: &'static str,
        /// The paper's traffic class label.
        class: &'static str,
        /// The block concerned, if any.
        block: Option<u64>,
        /// Mesh hops the message traverses.
        hops: u32,
    },
    /// A protocol message reached its destination cluster.
    MsgDeliver {
        /// Source cluster.
        src: u32,
        /// Destination cluster.
        dst: u32,
        /// Stable message-kind label.
        msg: &'static str,
        /// The block concerned, if any.
        block: Option<u64>,
    },
}

impl EventKind {
    /// Stable schema name of this event type.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::TxnBegin { .. } => "txn_begin",
            EventKind::TxnPhase { .. } => "txn_phase",
            EventKind::TxnEnd { .. } => "txn_end",
            EventKind::Nack { .. } => "nack",
            EventKind::Retry { .. } => "retry",
            EventKind::Inval { .. } => "inval",
            EventKind::Replacement { .. } => "replacement",
            EventKind::MsgSend { .. } => "msg_send",
            EventKind::MsgDeliver { .. } => "msg_deliver",
        }
    }
}

/// One recorded event: where and when, plus the payload.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Global recording order (strictly increasing across the whole run).
    pub seq: u64,
    /// Simulated cycle.
    pub cycle: u64,
    /// Cluster the event is attributed to (requester for transaction
    /// edges, home for directory-side events, src/dst for messages).
    pub cluster: u32,
    /// The payload.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .with("seq", Json::U64(self.seq))
            .with("cycle", Json::U64(self.cycle))
            .with("cluster", Json::U64(self.cluster as u64))
            .with("type", Json::Str(self.kind.label().into()));
        match &self.kind {
            EventKind::TxnBegin { txn, block, write } => {
                j.set("txn", Json::U64(*txn));
                j.set("block", Json::U64(*block));
                j.set("write", Json::Bool(*write));
            }
            EventKind::TxnPhase { txn, block, phase } => {
                j.set("txn", Json::U64(*txn));
                j.set("block", Json::U64(*block));
                j.set("phase", Json::Str(phase.label().into()));
            }
            EventKind::TxnEnd {
                txn,
                block,
                latency,
                retries,
            } => {
                j.set("txn", Json::U64(*txn));
                j.set("block", Json::U64(*block));
                j.set("latency", Json::U64(*latency));
                j.set("retries", Json::U64(*retries as u64));
            }
            EventKind::Nack { txn, block } => {
                j.set("txn", Json::U64(*txn));
                j.set("block", Json::U64(*block));
            }
            EventKind::Retry {
                txn,
                block,
                attempt,
                backoff,
            } => {
                j.set("txn", Json::U64(*txn));
                j.set("block", Json::U64(*block));
                j.set("attempt", Json::U64(*attempt as u64));
                j.set("backoff", Json::U64(*backoff));
            }
            EventKind::Inval {
                block,
                targets,
                cause,
            } => {
                j.set("block", Json::U64(*block));
                j.set("targets", Json::U64(*targets as u64));
                j.set("cause", Json::Str((*cause).into()));
            }
            EventKind::Replacement {
                victim,
                targets,
                dirty,
            } => {
                j.set("victim", Json::U64(*victim));
                j.set("targets", Json::U64(*targets as u64));
                j.set("dirty", Json::Bool(*dirty));
            }
            EventKind::MsgSend {
                src,
                dst,
                msg,
                class,
                block,
                hops,
            } => {
                j.set("src", Json::U64(*src as u64));
                j.set("dst", Json::U64(*dst as u64));
                j.set("msg", Json::Str((*msg).into()));
                j.set("class", Json::Str((*class).into()));
                if let Some(b) = block {
                    j.set("block", Json::U64(*b));
                }
                j.set("hops", Json::U64(*hops as u64));
            }
            EventKind::MsgDeliver {
                src,
                dst,
                msg,
                block,
            } => {
                j.set("src", Json::U64(*src as u64));
                j.set("dst", Json::U64(*dst as u64));
                j.set("msg", Json::Str((*msg).into()));
                if let Some(b) = block {
                    j.set("block", Json::U64(*b));
                }
            }
        }
        j
    }

    /// One-line human rendering for post-mortem tails.
    pub fn render(&self) -> String {
        format!("[{:>8}] #{} {:?}", self.cycle, self.seq, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_has_stable_envelope() {
        let ev = TraceEvent {
            seq: 3,
            cycle: 120,
            cluster: 2,
            kind: EventKind::TxnBegin {
                txn: 1,
                block: 64,
                write: true,
            },
        };
        assert_eq!(
            ev.to_json().to_string(),
            r#"{"seq":3,"cycle":120,"cluster":2,"type":"txn_begin","txn":1,"block":64,"write":true}"#
        );
    }

    #[test]
    fn every_kind_serializes_with_its_label() {
        let kinds = vec![
            EventKind::TxnBegin { txn: 1, block: 2, write: false },
            EventKind::TxnPhase { txn: 1, block: 2, phase: Phase::HomeLookup },
            EventKind::TxnEnd { txn: 1, block: 2, latency: 10, retries: 0 },
            EventKind::Nack { txn: 1, block: 2 },
            EventKind::Retry { txn: 1, block: 2, attempt: 1, backoff: 15 },
            EventKind::Inval { block: 2, targets: 3, cause: "write" },
            EventKind::Replacement { victim: 2, targets: 3, dirty: true },
            EventKind::MsgSend {
                src: 0, dst: 1, msg: "read_req", class: "request", block: Some(2), hops: 1,
            },
            EventKind::MsgDeliver { src: 0, dst: 1, msg: "read_req", block: Some(2) },
        ];
        for kind in kinds {
            let label = kind.label();
            let ev = TraceEvent { seq: 0, cycle: 0, cluster: 0, kind };
            let j = ev.to_json();
            assert_eq!(j.get("type").and_then(Json::as_str), Some(label));
        }
    }

    #[test]
    fn phase_labels_are_distinct() {
        let labels = [
            Phase::Issue.label(),
            Phase::HomeLookup.label(),
            Phase::Fanout.label(),
            Phase::Reply.label(),
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }
}
