//! scd-trace: transaction tracing, metrics registry, and machine-readable
//! run telemetry.
//!
//! The observability layer for the simulator, built on two contracts:
//!
//! * **Zero-cost when off.** A [`TraceConfig`] is inert by default (the
//!   `FaultPlan` pattern): the machine pre-computes `is_active()` into a
//!   bool and gates every hook on it, so a run with tracing disabled is
//!   bit-identical to one without trace hooks at all.
//! * **Stable schemas.** Trace events serialize to JSONL with a fixed
//!   envelope (`seq`, `cycle`, `cluster`, `type`, payload); run stats and
//!   metrics serialize to versioned JSON objects (`scd-run-stats/v1`,
//!   `scd-metrics/v1`) that [`replay`] can validate offline.
//!
//! Recording uses per-cluster bounded ring buffers ([`Tracer`]) merged
//! into a global cycle-ordered history, a phase-latency
//! [`MetricsRegistry`], and interval time-series snapshots.
//!
//! On top of the event stream sits the profiler: [`SpanTree`] derives
//! causal spans (txn → phase → message) from a trace, [`perfetto`]
//! exports them for `chrome://tracing` alongside folded flamegraph
//! stacks, [`Attribution`] splits traffic into scheme-relevant classes
//! under a byte/flit wire model, and [`report`] diffs two run documents
//! as a CI perf gate.
//!
//! The [`sink`] module streams the same records *during* the run — a
//! [`TraceSink`] consumes JSONL lines incrementally (file or
//! bounded-channel transport with explicit drop accounting) in the exact
//! bytes the post-hoc exporters would produce — and [`critical`] walks a
//! [`SpanTree`] to split every transaction's latency into queueing vs
//! service time per phase with its blocking edges.

#![warn(missing_docs)]

pub mod attrib;
pub mod critical;
pub mod event;
pub mod json;
pub mod metrics;
pub mod patterns;
pub mod perfetto;
pub mod replay;
pub mod report;
pub mod schema;
pub mod sink;
pub mod span;
pub mod tracer;

pub use attrib::{
    validate_attrib_json, AttribClass, AttribParams, Attribution, ClassCounters,
    ATTRIB_SCHEMA,
};
pub use critical::{analyze, BlockingEdge, CriticalReport, PhaseCost, TxnCost};
pub use event::{EventKind, Phase, TraceEvent};
pub use json::Json;
pub use metrics::{IntervalSnapshot, MetricsRegistry, TxnTimeline, LATENCY_BUCKET_CAP};
pub use patterns::{
    validate_patterns_json, validate_patterns_section, PatternClass, PatternTable,
    PATTERN_CLASSES,
};
pub use perfetto::{to_perfetto, validate_perfetto, PerfettoSummary};
pub use replay::{validate_stats_json, validate_trace, TraceSummary};
pub use schema::{
    CRITICAL_SCHEMA, METRICS_SCHEMA, PATTERNS_SCHEMA, RUN_STATS_SCHEMA, SWEEP_SCHEMA,
};
pub use sink::{
    attrib_delta_record, event_line, extract_trace_lines, interval_record, patterns_record,
    run_end_record, run_meta_record, validate_stream, BufferSink, ChannelSink, JsonlFileSink,
    StreamSummary, TraceSink, EVENT_TYPES,
};
pub use report::{
    compare_docs, compare_throughput, doc_label, throughput_rates, tracked_metrics, Comparison,
    ReportMetric, ThroughputComparison, ThroughputMetric,
};
pub use span::{MsgSpan, PhaseSpan, SpanTree, TxnSpan};
pub use tracer::{TraceConfig, Tracer};
