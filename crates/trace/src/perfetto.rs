//! Perfetto / chrome `trace_event` export of a span tree.
//!
//! Produces the JSON object format (`{"traceEvents": [...]}`) that
//! `chrome://tracing` and ui.perfetto.dev load directly: one complete
//! (`"ph":"X"`) slice per transaction and phase, one nestable-async
//! (`"ph":"b"`/`"e"`) pair per message leaf — a message sent late in one
//! phase legitimately delivers inside the next, so it cannot live on the
//! synchronous slice stack — counter (`"ph":"C"`) tracks from the
//! interval time series, and metadata (`"ph":"M"`) naming the per-cluster
//! process rows. Timestamps are simulated cycles rendered in the format's
//! microsecond field — the viewer's "us" unit reads as cycles.
//!
//! Hand-rolled over [`crate::json::Json`] like every other exporter (the
//! build is offline; no serde), and paired with [`validate_perfetto`] so
//! CI can gate on schema well-formedness without a browser.

use crate::json::Json;
use crate::metrics::IntervalSnapshot;
use crate::span::SpanTree;

/// Thread id used for spans not owned by any transaction (orphan
/// messages). Transaction ids start at 1, so 0 never collides.
const BACKGROUND_TID: u64 = 0;

fn complete_event(
    name: &str,
    cat: &str,
    pid: u64,
    tid: u64,
    ts: u64,
    dur: u64,
    args: Json,
) -> Json {
    Json::obj()
        .with("name", Json::Str(name.into()))
        .with("cat", Json::Str(cat.into()))
        .with("ph", Json::Str("X".into()))
        .with("pid", Json::U64(pid))
        .with("tid", Json::U64(tid))
        .with("ts", Json::U64(ts))
        .with("dur", Json::U64(dur))
        .with("args", args)
}

fn async_msg_pair(m: &crate::span::MsgSpan, pid: u64, tid: u64, id: u64) -> [Json; 2] {
    let head = |ph: &str, ts: u64| {
        Json::obj()
            .with("name", Json::Str(m.msg.into()))
            .with("cat", Json::Str("msg".into()))
            .with("ph", Json::Str(ph.into()))
            .with("id", Json::Str(format!("0x{id:x}")))
            .with("pid", Json::U64(pid))
            .with("tid", Json::U64(tid))
            .with("ts", Json::U64(ts))
    };
    [
        head("b", m.send).with(
            "args",
            Json::obj()
                .with("src", Json::U64(m.src as u64))
                .with("dst", Json::U64(m.dst as u64))
                .with("class", Json::Str(m.class.into()))
                .with("hops", Json::U64(m.hops as u64)),
        ),
        head("e", m.deliver.unwrap_or(m.send)),
    ]
}

/// Renders a span tree (plus optional interval counters) as a chrome
/// `trace_event` JSON document.
///
/// Layout: one process row per cluster (pid = cluster id, named by an
/// `"M"` metadata record), one thread lane per transaction (tid = txn
/// id), so concurrent transactions of one cluster stack as parallel
/// tracks. Message leaves are nestable-async pairs on their transaction's
/// lane (in-flight time crosses phase boundaries); orphan messages ride a
/// `background` lane (tid 0) of their source cluster. Counter tracks
/// (`messages`, `retries`, `nacks`, `occupancy`) attach to a synthetic
/// pid one past the largest cluster.
pub fn to_perfetto(tree: &SpanTree, intervals: &[IntervalSnapshot]) -> Json {
    let mut events: Vec<Json> = Vec::new();
    let mut max_pid = 0u64;
    let mut msg_id = 0u64;
    for t in &tree.txns {
        let pid = t.cluster as u64;
        max_pid = max_pid.max(pid);
        let end = t.end.unwrap_or_else(|| {
            t.phases.last().map(|p| p.end).unwrap_or(t.begin)
        });
        let root = format!(
            "{} blk#{}",
            if t.write { "write" } else { "read" },
            t.block
        );
        events.push(complete_event(
            &root,
            "txn",
            pid,
            t.txn,
            t.begin,
            end.saturating_sub(t.begin),
            Json::obj()
                .with("txn", Json::U64(t.txn))
                .with("block", Json::U64(t.block))
                .with("retries", Json::U64(t.retries as u64))
                .with("nacks", Json::U64(t.nacks as u64))
                .with("complete", Json::Bool(t.end.is_some())),
        ));
        for p in &t.phases {
            events.push(complete_event(
                p.phase,
                "phase",
                pid,
                t.txn,
                p.start,
                p.duration(),
                Json::obj(),
            ));
            for m in &p.msgs {
                msg_id += 1;
                events.extend(async_msg_pair(m, pid, t.txn, msg_id));
            }
        }
    }
    for m in &tree.orphan_msgs {
        let pid = m.src as u64;
        max_pid = max_pid.max(pid);
        msg_id += 1;
        events.extend(async_msg_pair(m, pid, BACKGROUND_TID, msg_id));
    }
    // Metadata rows: name each cluster's process lane.
    let mut pids: Vec<u64> = tree.txns.iter().map(|t| t.cluster as u64).collect();
    pids.extend(tree.orphan_msgs.iter().map(|m| m.src as u64));
    pids.sort_unstable();
    pids.dedup();
    for pid in &pids {
        events.push(
            Json::obj()
                .with("name", Json::Str("process_name".into()))
                .with("ph", Json::Str("M".into()))
                .with("pid", Json::U64(*pid))
                .with("tid", Json::U64(0))
                .with(
                    "args",
                    Json::obj().with("name", Json::Str(format!("cluster {pid}"))),
                ),
        );
    }
    // Counter tracks from the interval time series, on their own pid.
    if !intervals.is_empty() {
        let counter_pid = max_pid + 1;
        events.push(
            Json::obj()
                .with("name", Json::Str("process_name".into()))
                .with("ph", Json::Str("M".into()))
                .with("pid", Json::U64(counter_pid))
                .with("tid", Json::U64(0))
                .with(
                    "args",
                    Json::obj().with("name", Json::Str("machine counters".into())),
                ),
        );
        for s in intervals {
            for (name, value) in [
                ("messages", s.messages),
                ("retries", s.retries),
                ("nacks", s.nacks),
                ("occupancy", s.occupancy),
            ] {
                events.push(
                    Json::obj()
                        .with("name", Json::Str(name.into()))
                        .with("ph", Json::Str("C".into()))
                        .with("pid", Json::U64(counter_pid))
                        .with("tid", Json::U64(0))
                        .with("ts", Json::U64(s.start))
                        .with("args", Json::obj().with("value", Json::U64(value))),
                );
            }
        }
    }
    Json::obj()
        .with("traceEvents", Json::Arr(events))
        .with("displayTimeUnit", Json::Str("ns".into()))
        .with(
            "otherData",
            Json::obj().with("clock", Json::Str("simulated cycles".into())),
        )
}

/// Aggregate of one validated Perfetto document.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerfettoSummary {
    /// Total records in `traceEvents`.
    pub events: u64,
    /// Complete (`"X"`) slices.
    pub slices: u64,
    /// Matched nestable-async (`"b"`/`"e"`) pairs.
    pub async_ops: u64,
    /// Counter (`"C"`) samples.
    pub counters: u64,
    /// Metadata (`"M"`) records.
    pub meta: u64,
}

/// Validates a chrome `trace_event` JSON document: object format with a
/// `traceEvents` array; every record an object with a known `ph`
/// (`X`/`b`/`e`/`C`/`M`), `name`, `pid` and `tid`; `X` slices carry
/// integer `ts`/`dur`; every async `b` carries an `id` and is closed by a
/// matching `e` (same `pid`/`id`) no earlier than it began; `C` samples
/// carry `ts` and a numeric `args.value`; and within each `(pid, tid)`
/// lane the `X` slices obey stack discipline (properly nested, never
/// partially overlapping).
pub fn validate_perfetto(text: &str) -> Result<PerfettoSummary, String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;
    let mut summary = PerfettoSummary::default();
    // (pid, tid) -> X slices as (ts, dur).
    let mut lanes: std::collections::BTreeMap<(u64, u64), Vec<(u64, u64)>> =
        std::collections::BTreeMap::new();
    // (pid, id) -> begin ts of an open async op.
    let mut open_async: std::collections::BTreeMap<(u64, String), u64> =
        std::collections::BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let at = |key: &str| format!("traceEvents[{i}]: missing or invalid `{key}`");
        let ph = ev.get("ph").and_then(Json::as_str).ok_or_else(|| at("ph"))?;
        ev.get("name").and_then(Json::as_str).ok_or_else(|| at("name"))?;
        let pid = ev.get("pid").and_then(Json::as_u64).ok_or_else(|| at("pid"))?;
        let tid = ev.get("tid").and_then(Json::as_u64).ok_or_else(|| at("tid"))?;
        summary.events += 1;
        match ph {
            "X" => {
                let ts = ev.get("ts").and_then(Json::as_u64).ok_or_else(|| at("ts"))?;
                let dur = ev.get("dur").and_then(Json::as_u64).ok_or_else(|| at("dur"))?;
                lanes.entry((pid, tid)).or_default().push((ts, dur));
                summary.slices += 1;
            }
            "b" | "e" => {
                let ts = ev.get("ts").and_then(Json::as_u64).ok_or_else(|| at("ts"))?;
                let id = ev.get("id").and_then(Json::as_str).ok_or_else(|| at("id"))?;
                let key = (pid, id.to_string());
                if ph == "b" {
                    if open_async.insert(key, ts).is_some() {
                        return Err(format!(
                            "traceEvents[{i}]: async id `{id}` reopened on pid {pid}"
                        ));
                    }
                } else {
                    let begin = open_async.remove(&key).ok_or(format!(
                        "traceEvents[{i}]: async end `{id}` on pid {pid} without a begin"
                    ))?;
                    if ts < begin {
                        return Err(format!(
                            "traceEvents[{i}]: async `{id}` ends at {ts} before its begin {begin}"
                        ));
                    }
                    summary.async_ops += 1;
                }
            }
            "C" => {
                ev.get("ts").and_then(Json::as_u64).ok_or_else(|| at("ts"))?;
                let value = ev.get("args").and_then(|a| a.get("value"));
                if value.and_then(Json::as_u64).is_none()
                    && value.and_then(Json::as_f64).is_none()
                {
                    return Err(at("args.value"));
                }
                summary.counters += 1;
            }
            "M" => summary.meta += 1,
            other => {
                return Err(format!("traceEvents[{i}]: unknown ph `{other}`"));
            }
        }
    }
    if let Some(((pid, id), ts)) = open_async.into_iter().next() {
        return Err(format!(
            "async op `{id}` on pid {pid} (begun at {ts}) never ended"
        ));
    }
    // Stack discipline per lane: sort by (ts, widest first) and require
    // each slice to fit entirely inside whatever encloses it.
    for ((pid, tid), mut slices) in lanes {
        slices.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<u64> = Vec::new(); // enclosing end times
        for (ts, dur) in slices {
            while matches!(stack.last(), Some(&end) if end <= ts) {
                stack.pop();
            }
            let end = ts + dur;
            if let Some(&open) = stack.last() {
                if end > open {
                    return Err(format!(
                        "lane pid {pid} tid {tid}: slice [{ts}, {end}] straddles \
                         an enclosing slice ending at {open}"
                    ));
                }
            }
            stack.push(end);
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Phase, TraceEvent};

    fn ev(seq: u64, cycle: u64, cluster: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq,
            cycle,
            cluster,
            kind,
        }
    }

    fn sample_tree() -> SpanTree {
        SpanTree::from_events(&[
            ev(1, 10, 0, EventKind::TxnBegin { txn: 1, block: 4, write: true }),
            ev(2, 10, 0, EventKind::MsgSend {
                src: 0,
                dst: 2,
                msg: "write_req",
                class: "request",
                block: Some(4),
                hops: 2,
            }),
            ev(3, 24, 2, EventKind::MsgDeliver {
                src: 0,
                dst: 2,
                msg: "write_req",
                block: Some(4),
            }),
            ev(4, 25, 0, EventKind::TxnPhase { txn: 1, block: 4, phase: Phase::HomeLookup }),
            ev(5, 60, 0, EventKind::TxnEnd { txn: 1, block: 4, latency: 50, retries: 0 }),
        ])
    }

    #[test]
    fn export_validates_and_counts() {
        let intervals = [IntervalSnapshot {
            start: 0,
            end: 1000,
            messages: 5,
            retries: 1,
            nacks: 1,
            occupancy: 2,
            ops_retired: 3,
        }];
        let doc = to_perfetto(&sample_tree(), &intervals);
        let text = doc.to_string();
        let s = validate_perfetto(&text).unwrap();
        // 1 txn + 2 phases = 3 slices; 1 msg = 1 async pair; 4 counters;
        // 2 meta (cluster 0 + counter process).
        assert_eq!(s.slices, 3);
        assert_eq!(s.async_ops, 1);
        assert_eq!(s.counters, 4);
        assert_eq!(s.meta, 2);
        assert_eq!(s.events, 11);
        // Round-trips through the parser.
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn slices_nest_inside_the_txn_root() {
        let doc = to_perfetto(&sample_tree(), &[]);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let root = events
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("txn"))
            .unwrap();
        assert_eq!(root.get("ts").and_then(Json::as_u64), Some(10));
        assert_eq!(root.get("dur").and_then(Json::as_u64), Some(50));
        assert_eq!(root.get("tid").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn rejects_straddling_slices() {
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":0,"tid":1,"ts":0,"dur":10},
            {"name":"b","ph":"X","pid":0,"tid":1,"ts":5,"dur":10}
        ]}"#;
        let err = validate_perfetto(bad).unwrap_err();
        assert!(err.contains("straddles"), "{err}");
        // Same spans on different lanes are fine.
        let ok = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":0,"tid":1,"ts":0,"dur":10},
            {"name":"b","ph":"X","pid":0,"tid":2,"ts":5,"dur":10}
        ]}"#;
        assert_eq!(validate_perfetto(ok).unwrap().slices, 2);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(validate_perfetto("[]").is_err(), "array format not accepted");
        assert!(validate_perfetto(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
        assert!(
            validate_perfetto(
                r#"{"traceEvents":[{"name":"a","ph":"Q","pid":0,"tid":0}]}"#
            )
            .unwrap_err()
            .contains("unknown ph")
        );
        assert!(validate_perfetto(
            r#"{"traceEvents":[{"name":"c","ph":"C","pid":0,"tid":0,"ts":1,"args":{}}]}"#
        )
        .is_err());
        assert!(validate_perfetto(
            r#"{"traceEvents":[{"name":"m","ph":"b","id":"0x1","pid":0,"tid":0,"ts":1}]}"#
        )
        .unwrap_err()
        .contains("never ended"));
        assert!(validate_perfetto(
            r#"{"traceEvents":[{"name":"m","ph":"e","id":"0x1","pid":0,"tid":0,"ts":1}]}"#
        )
        .unwrap_err()
        .contains("without a begin"));
    }

    #[test]
    fn empty_tree_is_a_valid_document() {
        let doc = to_perfetto(&SpanTree::default(), &[]);
        let s = validate_perfetto(&doc.to_string()).unwrap();
        assert_eq!(s.events, 0);
    }
}
