//! Causal span trees: the profiler's view of a trace.
//!
//! A flat event stream (see [`crate::event`]) answers *what happened*;
//! a span tree answers *where the time went*. [`SpanTree::from_events`]
//! folds a cycle-ordered event slice into one root span per coherence
//! transaction, child spans per lifecycle phase, and leaf spans per
//! protocol message (send → deliver, with hop counts), so exporters
//! ([`crate::perfetto`]) and flamegraph folding can render causality
//! directly.
//!
//! Because the recorder uses bounded rings, a trace may be *truncated*:
//! events can reference transactions whose `txn_begin` was evicted. The
//! builder counts those rather than failing; [`SpanTree::check`] offers
//! the strict well-formedness judgment for tests that record with rings
//! large enough to hold the whole run.

use std::collections::HashMap;

use crate::event::{EventKind, TraceEvent};

/// A message leaf span: one protocol message's flight.
#[derive(Clone, Debug, PartialEq)]
pub struct MsgSpan {
    /// Stable message-kind label (`scd-protocol::MsgKind::label`).
    pub msg: &'static str,
    /// The paper's traffic class label.
    pub class: &'static str,
    /// Source cluster.
    pub src: u32,
    /// Destination cluster.
    pub dst: u32,
    /// The block concerned, if any.
    pub block: Option<u64>,
    /// Cycle the message entered the network.
    pub send: u64,
    /// Cycle it reached its destination (None if the deliver event was
    /// evicted or the message was in flight when the run stopped).
    pub deliver: Option<u64>,
    /// Mesh hops traversed.
    pub hops: u32,
}

impl MsgSpan {
    /// Flight time in cycles (0 when the deliver was not observed).
    pub fn flight(&self) -> u64 {
        self.deliver.map_or(0, |d| d.saturating_sub(self.send))
    }
}

/// A per-phase child span: one segment of a transaction's lifecycle.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSpan {
    /// Stable phase label (`issue`, `home_lookup`, `fanout`).
    pub phase: &'static str,
    /// First cycle of the segment (inclusive).
    pub start: u64,
    /// Last cycle of the segment (the next phase's start, or the
    /// transaction end).
    pub end: u64,
    /// Message leaves whose send falls inside this segment.
    pub msgs: Vec<MsgSpan>,
}

impl PhaseSpan {
    /// Segment duration in cycles.
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// A transaction root span.
#[derive(Clone, Debug, PartialEq)]
pub struct TxnSpan {
    /// Transaction id (unique within the run).
    pub txn: u64,
    /// Requester cluster.
    pub cluster: u32,
    /// The block.
    pub block: u64,
    /// Whether this was a write/ownership transaction.
    pub write: bool,
    /// Issue cycle.
    pub begin: u64,
    /// Completion cycle (None when the run stopped mid-flight or the end
    /// event was evicted).
    pub end: Option<u64>,
    /// NACK-driven reissues reported by the end event.
    pub retries: u32,
    /// NACK events observed for this transaction.
    pub nacks: u32,
    /// Per-phase child spans, in time order, tiling `[begin, end]`.
    pub phases: Vec<PhaseSpan>,
}

impl TxnSpan {
    /// End-to-end latency (0 when the end was not observed).
    pub fn latency(&self) -> u64 {
        self.end.map_or(0, |e| e.saturating_sub(self.begin))
    }

    /// All message leaves across every phase.
    pub fn msgs(&self) -> impl Iterator<Item = &MsgSpan> {
        self.phases.iter().flat_map(|p| p.msgs.iter())
    }
}

/// The derived span forest of one trace.
#[derive(Clone, Debug, Default)]
pub struct SpanTree {
    /// One root per transaction, ordered by begin cycle (ties by txn id).
    pub txns: Vec<TxnSpan>,
    /// Messages that belong to no live transaction (sync traffic,
    /// replacement flushes, evictions, or sends whose owner's begin was
    /// evicted).
    pub orphan_msgs: Vec<MsgSpan>,
    /// Lifecycle events referencing transactions whose `txn_begin` was
    /// evicted from the rings (truncated history, not an error).
    pub truncated: u64,
}

struct TxnBuild {
    span: TxnSpan,
    /// `(phase label, cycle)` marks; the begin contributes `issue`.
    marks: Vec<(&'static str, u64)>,
    /// Arena indices of attached message leaves.
    msgs: Vec<usize>,
}

impl SpanTree {
    /// Derives the span forest from a cycle-ordered event slice (the
    /// output of `Tracer::merged` / `Machine::trace_events`).
    ///
    /// Message attribution: a send is attached to the live transaction on
    /// the same block whose requester is the message's source or
    /// destination (most recently begun wins a tie); everything else —
    /// sync traffic, replacement flushes, plain evictions — lands in
    /// [`SpanTree::orphan_msgs`].
    pub fn from_events(events: &[TraceEvent]) -> SpanTree {
        let mut arena: Vec<MsgSpan> = Vec::new();
        // (src, dst, msg, block) -> FIFO of undelivered arena indices.
        let mut pending: HashMap<(u32, u32, &'static str, Option<u64>), Vec<usize>> =
            HashMap::new();
        let mut live: HashMap<u64, TxnBuild> = HashMap::new();
        // block -> live txn ids, in begin order.
        let mut by_block: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut done: Vec<TxnBuild> = Vec::new();
        let mut orphan_idx: Vec<usize> = Vec::new();
        let mut truncated = 0u64;

        for ev in events {
            match &ev.kind {
                EventKind::TxnBegin { txn, block, write } => {
                    live.insert(
                        *txn,
                        TxnBuild {
                            span: TxnSpan {
                                txn: *txn,
                                cluster: ev.cluster,
                                block: *block,
                                write: *write,
                                begin: ev.cycle,
                                end: None,
                                retries: 0,
                                nacks: 0,
                                phases: Vec::new(),
                            },
                            marks: vec![("issue", ev.cycle)],
                            msgs: Vec::new(),
                        },
                    );
                    by_block.entry(*block).or_default().push(*txn);
                }
                EventKind::TxnPhase { txn, phase, .. } => match live.get_mut(txn) {
                    Some(b) => b.marks.push((phase.label(), ev.cycle)),
                    None => truncated += 1,
                },
                EventKind::Nack { txn, .. } => match live.get_mut(txn) {
                    Some(b) => b.span.nacks += 1,
                    None => truncated += 1,
                },
                EventKind::Retry { txn, .. } => {
                    if !live.contains_key(txn) {
                        truncated += 1;
                    }
                }
                EventKind::TxnEnd { txn, retries, .. } => match live.remove(txn) {
                    Some(mut b) => {
                        b.span.end = Some(ev.cycle);
                        b.span.retries = *retries;
                        if let Some(ids) = by_block.get_mut(&b.span.block) {
                            ids.retain(|id| id != txn);
                        }
                        done.push(b);
                    }
                    None => truncated += 1,
                },
                EventKind::MsgSend {
                    src,
                    dst,
                    msg,
                    class,
                    block,
                    hops,
                } => {
                    let idx = arena.len();
                    arena.push(MsgSpan {
                        msg,
                        class,
                        src: *src,
                        dst: *dst,
                        block: *block,
                        send: ev.cycle,
                        deliver: None,
                        hops: *hops,
                    });
                    pending
                        .entry((*src, *dst, msg, *block))
                        .or_default()
                        .push(idx);
                    // Owner search, newest live txn on the block first:
                    // requester endpoint match, then a write txn (the
                    // fan-out invals/acks a home sends on a requester's
                    // behalf touch third-party clusters), then anything.
                    let owner = block.and_then(|b| by_block.get(&b)).and_then(|ids| {
                        let newest = |pred: &dyn Fn(&TxnBuild) -> bool| {
                            ids.iter()
                                .rev()
                                .find(|id| live.get(id).is_some_and(pred))
                                .copied()
                        };
                        newest(&|t| t.span.cluster == *src || t.span.cluster == *dst)
                            .or_else(|| newest(&|t| t.span.write))
                            .or_else(|| newest(&|_| true))
                    });
                    match owner.and_then(|id| live.get_mut(&id)) {
                        Some(b) => b.msgs.push(idx),
                        None => orphan_idx.push(idx),
                    }
                }
                EventKind::MsgDeliver {
                    src,
                    dst,
                    msg,
                    block,
                } => {
                    if let Some(q) = pending.get_mut(&(*src, *dst, msg, *block)) {
                        if !q.is_empty() {
                            let idx = q.remove(0);
                            arena[idx].deliver = Some(ev.cycle);
                        }
                    }
                }
                // Directory-side observatory events carry no span
                // structure: invalidation decisions are already visible
                // as fan-out messages when message tracing is on.
                EventKind::Inval { .. } => {}
                EventKind::Replacement { .. } => {}
            }
        }

        // Transactions still live at the end of the trace keep `end: None`.
        done.extend(live.into_values());
        done.sort_by_key(|b| (b.span.begin, b.span.txn));

        let mut tree = SpanTree {
            truncated,
            ..SpanTree::default()
        };
        for mut b in done {
            b.marks.sort_by_key(|&(_, c)| c);
            let close = b.span.end.unwrap_or_else(|| {
                // No end observed: close phases at the last activity seen.
                b.marks
                    .last()
                    .map(|&(_, c)| c)
                    .unwrap_or(b.span.begin)
                    .max(b.msgs.iter().map(|&i| arena[i].send).max().unwrap_or(0))
            });
            for (i, &(phase, start)) in b.marks.iter().enumerate() {
                let end = b.marks.get(i + 1).map_or(close, |&(_, c)| c);
                b.span.phases.push(PhaseSpan {
                    phase,
                    start,
                    end,
                    msgs: Vec::new(),
                });
            }
            for &idx in &b.msgs {
                let m = arena[idx].clone();
                // Last phase whose start is at or before the send; sends
                // on a boundary belong to the phase they initiate.
                let slot = b
                    .span
                    .phases
                    .iter()
                    .rposition(|p| p.start <= m.send)
                    .unwrap_or(0);
                b.span.phases[slot].msgs.push(m);
            }
            tree.txns.push(b.span);
        }
        tree.orphan_msgs = orphan_idx.into_iter().map(|i| arena[i].clone()).collect();
        tree
    }

    /// Transactions whose end was observed.
    pub fn completed(&self) -> usize {
        self.txns.iter().filter(|t| t.end.is_some()).count()
    }

    /// Message leaves attached to transactions.
    pub fn attributed_msgs(&self) -> usize {
        self.txns.iter().map(|t| t.msgs().count()).sum()
    }

    /// Strict well-formedness judgment, for traces recorded with rings
    /// large enough to avoid eviction:
    ///
    /// 1. every `txn_begin` has a matching `txn_end` (no dangling roots)
    ///    and no lifecycle event was truncated;
    /// 2. phase child spans tile `[begin, end]` contiguously and in time
    ///    order;
    /// 3. every message leaf nests inside its phase span (send within the
    ///    segment) and delivers no earlier than it sends.
    pub fn check(&self) -> Result<(), String> {
        if self.truncated > 0 {
            return Err(format!(
                "{} lifecycle events reference evicted transactions",
                self.truncated
            ));
        }
        for t in &self.txns {
            let end = t
                .end
                .ok_or_else(|| format!("txn {}: begin without end", t.txn))?;
            if end < t.begin {
                return Err(format!("txn {}: ends before it begins", t.txn));
            }
            if t.phases.is_empty() {
                return Err(format!("txn {}: no phase spans", t.txn));
            }
            if t.phases[0].start != t.begin {
                return Err(format!(
                    "txn {}: first phase starts at {} not begin {}",
                    t.txn, t.phases[0].start, t.begin
                ));
            }
            if t.phases[t.phases.len() - 1].end != end {
                return Err(format!(
                    "txn {}: last phase ends at {} not end {}",
                    t.txn,
                    t.phases[t.phases.len() - 1].end,
                    end
                ));
            }
            for w in t.phases.windows(2) {
                if w[0].end != w[1].start {
                    return Err(format!(
                        "txn {}: phase `{}` [{}, {}] does not abut `{}` at {}",
                        t.txn, w[0].phase, w[0].start, w[0].end, w[1].phase, w[1].start
                    ));
                }
            }
            for p in &t.phases {
                if p.end < p.start {
                    return Err(format!(
                        "txn {}: phase `{}` runs backwards",
                        t.txn, p.phase
                    ));
                }
                for m in &p.msgs {
                    if m.send < p.start || m.send > p.end {
                        return Err(format!(
                            "txn {}: msg `{}` sent at {} outside phase `{}` [{}, {}]",
                            t.txn, m.msg, m.send, p.phase, p.start, p.end
                        ));
                    }
                    if let Some(d) = m.deliver {
                        if d < m.send {
                            return Err(format!(
                                "txn {}: msg `{}` delivered at {} before send {}",
                                t.txn, m.msg, d, m.send
                            ));
                        }
                    }
                }
            }
        }
        for m in &self.orphan_msgs {
            if let Some(d) = m.deliver {
                if d < m.send {
                    return Err(format!(
                        "orphan msg `{}` delivered at {} before send {}",
                        m.msg, d, m.send
                    ));
                }
            }
        }
        Ok(())
    }

    /// Folded-stack rendering for flamegraph tooling: one line per stack,
    /// `frame;frame;frame weight`, weights in cycles. Root frames are the
    /// transaction kind (`read`/`write`), children the phase labels, and
    /// leaves the message kinds (weighted by flight time; the phase frame
    /// keeps its remaining self-time). Deterministic: stacks are sorted.
    pub fn to_folded(&self) -> String {
        use std::collections::BTreeMap;
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for t in &self.txns {
            let root = if t.write { "write" } else { "read" };
            for p in &t.phases {
                let mut in_flight = 0u64;
                for m in &p.msgs {
                    let f = m.flight();
                    if f > 0 {
                        *stacks
                            .entry(format!("{root};{};msg:{}", p.phase, m.msg))
                            .or_insert(0) += f;
                        in_flight += f;
                    }
                }
                let self_time = p.duration().saturating_sub(in_flight);
                if self_time > 0 {
                    *stacks
                        .entry(format!("{root};{}", p.phase))
                        .or_insert(0) += self_time;
                }
            }
        }
        for m in &self.orphan_msgs {
            let f = m.flight();
            if f > 0 {
                *stacks.entry(format!("background;msg:{}", m.msg)).or_insert(0) += f;
            }
        }
        let mut out = String::new();
        for (stack, weight) in stacks {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    fn ev(seq: u64, cycle: u64, cluster: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq,
            cycle,
            cluster,
            kind,
        }
    }

    fn send(src: u32, dst: u32, msg: &'static str, class: &'static str, block: u64) -> EventKind {
        EventKind::MsgSend {
            src,
            dst,
            msg,
            class,
            block: Some(block),
            hops: 2,
        }
    }

    fn deliver(src: u32, dst: u32, msg: &'static str, block: u64) -> EventKind {
        EventKind::MsgDeliver {
            src,
            dst,
            msg,
            block: Some(block),
        }
    }

    /// One write transaction: issue at 10, home lookup at 25, fan-out at
    /// 30, end at 60, with a request, an inval and its ack attached.
    fn write_txn_events() -> Vec<TraceEvent> {
        vec![
            ev(1, 10, 0, EventKind::TxnBegin { txn: 1, block: 4, write: true }),
            ev(2, 10, 0, send(0, 2, "write_req", "request", 4)),
            ev(3, 24, 2, deliver(0, 2, "write_req", 4)),
            ev(4, 25, 0, EventKind::TxnPhase { txn: 1, block: 4, phase: Phase::HomeLookup }),
            ev(5, 30, 0, EventKind::TxnPhase { txn: 1, block: 4, phase: Phase::Fanout }),
            ev(6, 30, 2, send(2, 3, "inval", "invalidation", 4)),
            ev(7, 44, 3, deliver(2, 3, "inval", 4)),
            ev(8, 44, 3, send(3, 0, "inval_ack", "ack", 4)),
            ev(9, 58, 0, deliver(3, 0, "inval_ack", 4)),
            ev(10, 60, 0, EventKind::TxnEnd { txn: 1, block: 4, latency: 50, retries: 0 }),
        ]
    }

    #[test]
    fn builds_a_three_level_tree() {
        let tree = SpanTree::from_events(&write_txn_events());
        assert_eq!(tree.txns.len(), 1);
        assert!(tree.orphan_msgs.is_empty());
        assert_eq!(tree.truncated, 0);
        let t = &tree.txns[0];
        assert_eq!((t.txn, t.block, t.write), (1, 4, true));
        assert_eq!((t.begin, t.end), (10, Some(60)));
        assert_eq!(t.latency(), 50);
        let labels: Vec<_> = t.phases.iter().map(|p| p.phase).collect();
        assert_eq!(labels, ["issue", "home_lookup", "fanout"]);
        assert_eq!(t.phases[0].duration(), 15);
        assert_eq!(t.phases[1].duration(), 5);
        assert_eq!(t.phases[2].duration(), 30);
        // Messages nest in the phase covering their send cycle.
        assert_eq!(t.phases[0].msgs.len(), 1, "write_req in issue");
        assert_eq!(t.phases[2].msgs.len(), 2, "inval + ack in fanout");
        let req = &t.phases[0].msgs[0];
        assert_eq!(req.msg, "write_req");
        assert_eq!(req.deliver, Some(24));
        assert_eq!(req.flight(), 14);
        tree.check().unwrap();
    }

    #[test]
    fn sync_and_unmatched_messages_are_orphans() {
        let events = vec![
            ev(1, 5, 0, EventKind::MsgSend {
                src: 0,
                dst: 1,
                msg: "lock_req",
                class: "request",
                block: None,
                hops: 1,
            }),
            ev(2, 7, 2, send(2, 3, "writeback", "request", 9)),
        ];
        let tree = SpanTree::from_events(&events);
        assert!(tree.txns.is_empty());
        assert_eq!(tree.orphan_msgs.len(), 2);
        tree.check().unwrap();
    }

    #[test]
    fn message_attribution_prefers_requester_then_write_txn() {
        // Two live transactions on the same block: the reply to cluster 0
        // attaches to txn 1 by requester match, and the third-party inval
        // (home 2 -> sharer 5, neither a requester) falls back to the live
        // *write* txn rather than the newer read.
        let events = vec![
            ev(1, 10, 0, EventKind::TxnBegin { txn: 1, block: 4, write: true }),
            ev(2, 12, 7, EventKind::TxnBegin { txn: 2, block: 4, write: false }),
            ev(3, 20, 2, send(2, 0, "write_reply", "reply", 4)),
            ev(4, 21, 2, send(2, 5, "inval", "invalidation", 4)),
        ];
        let tree = SpanTree::from_events(&events);
        let t1 = tree.txns.iter().find(|t| t.txn == 1).unwrap();
        let msgs: Vec<_> = t1.msgs().map(|m| m.msg).collect();
        assert_eq!(msgs, ["write_reply", "inval"]);
        let t2 = tree.txns.iter().find(|t| t.txn == 2).unwrap();
        assert_eq!(t2.msgs().count(), 0);
        assert!(tree.orphan_msgs.is_empty());
    }

    #[test]
    fn truncated_history_is_counted_not_fatal() {
        let events = vec![ev(
            9,
            100,
            0,
            EventKind::TxnEnd { txn: 3, block: 4, latency: 70, retries: 1 },
        )];
        let tree = SpanTree::from_events(&events);
        assert_eq!(tree.truncated, 1);
        assert!(tree.check().is_err());
    }

    #[test]
    fn dangling_begin_fails_the_strict_check() {
        let events = vec![ev(
            1,
            10,
            0,
            EventKind::TxnBegin { txn: 1, block: 4, write: false },
        )];
        let tree = SpanTree::from_events(&events);
        assert_eq!(tree.completed(), 0);
        let err = tree.check().unwrap_err();
        assert!(err.contains("begin without end"), "{err}");
    }

    #[test]
    fn folded_stacks_are_deterministic_and_weighted_in_cycles() {
        let tree = SpanTree::from_events(&write_txn_events());
        let folded = tree.to_folded();
        let lines: Vec<_> = folded.lines().collect();
        assert!(lines.contains(&"write;issue;msg:write_req 14"), "{folded}");
        assert!(lines.contains(&"write;fanout;msg:inval 14"), "{folded}");
        assert!(lines.contains(&"write;fanout;msg:inval_ack 14"), "{folded}");
        // issue self-time: 15 cycle phase minus 14 in flight.
        assert!(lines.contains(&"write;issue 1"), "{folded}");
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "stacks sorted for determinism");
        // Total weight never exceeds the txn's wall-clock budget.
        let total: u64 = lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert!(total <= 50, "{total} cycles folded from a 50-cycle txn");
    }

    #[test]
    fn unfinished_txn_closes_at_last_activity() {
        let events = vec![
            ev(1, 10, 0, EventKind::TxnBegin { txn: 1, block: 4, write: false }),
            ev(2, 25, 0, EventKind::TxnPhase { txn: 1, block: 4, phase: Phase::HomeLookup }),
        ];
        let tree = SpanTree::from_events(&events);
        let t = &tree.txns[0];
        assert_eq!(t.end, None);
        assert_eq!(t.phases.last().unwrap().end, 25);
    }
}
