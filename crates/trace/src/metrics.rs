//! The metrics registry: per-request latency histograms broken down by
//! lifecycle phase, and interval time-series snapshots.
//!
//! The paper's figures are end-of-run aggregates; the registry adds the
//! *trajectory* — where each request's cycles went (issue → home lookup →
//! invalidation fan-out → reply) and how traffic/occupancy/retries evolve
//! over windows of N cycles — in a machine-readable, stable schema.

use scd_stats::Histogram;

use crate::json::Json;

/// Latency histograms are bounded: a request latency above this many
/// cycles clamps into the top bucket (the count is exact, the value
/// saturated). Keeps a pathological run from allocating per-cycle buckets.
pub const LATENCY_BUCKET_CAP: usize = 1 << 14;

/// The timeline of one completed coherence transaction, as cycles.
#[derive(Clone, Copy, Debug)]
pub struct TxnTimeline {
    /// When the request issued from the requester.
    pub issue: u64,
    /// When the home first serviced it (None if it completed locally or
    /// the home phase was never observed).
    pub home_lookup: Option<u64>,
    /// When the home sent the invalidation fan-out (writes only).
    pub fanout: Option<u64>,
    /// When the completing reply was observed at the requester.
    pub end: u64,
    /// Whether this was a write/ownership transaction.
    pub write: bool,
    /// NACK-driven reissues absorbed along the way.
    pub retries: u32,
}

/// One window of the interval time series.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntervalSnapshot {
    /// First cycle of the window (inclusive).
    pub start: u64,
    /// Last cycle of the window (exclusive).
    pub end: u64,
    /// Network messages sent during the window.
    pub messages: u64,
    /// NACK-driven reissues during the window.
    pub retries: u64,
    /// Injected/serviced NACKs during the window.
    pub nacks: u64,
    /// Outstanding MSHRs across all clusters at the sample point.
    pub occupancy: u64,
    /// Shared references + sync operations retired during the window.
    pub ops_retired: u64,
}

impl IntervalSnapshot {
    /// The window as a JSON object — the element shape of the
    /// `scd-metrics/v1` `intervals` array and the `window` payload of a
    /// streamed `interval` record.
    pub fn to_json(self) -> Json {
        Json::obj()
            .with("start", Json::U64(self.start))
            .with("end", Json::U64(self.end))
            .with("messages", Json::U64(self.messages))
            .with("retries", Json::U64(self.retries))
            .with("nacks", Json::U64(self.nacks))
            .with("occupancy", Json::U64(self.occupancy))
            .with("ops_retired", Json::U64(self.ops_retired))
    }
}

/// Phase-latency histograms plus the interval time series.
#[derive(Clone, Debug)]
pub struct MetricsRegistry {
    /// End-to-end read latency (issue → reply).
    pub read_latency: Histogram,
    /// End-to-end write latency (issue → all acks collected).
    pub write_latency: Histogram,
    /// Issue → first home service (network + queueing ahead of the home).
    pub issue_to_home: Histogram,
    /// Home service → invalidation fan-out (writes that invalidated).
    pub home_to_fanout: Histogram,
    /// Fan-out → completion (invalidation round-trip the requester waited
    /// for).
    pub fanout_to_reply: Histogram,
    /// Home service → completion for transactions without a fan-out.
    pub home_to_reply: Histogram,
    /// NACK-driven reissues per completed transaction.
    pub retries_per_txn: Histogram,
    /// Interval time-series windows, in order.
    pub intervals: Vec<IntervalSnapshot>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        let lat = || Histogram::bounded(LATENCY_BUCKET_CAP);
        MetricsRegistry {
            read_latency: lat(),
            write_latency: lat(),
            issue_to_home: lat(),
            home_to_fanout: lat(),
            fanout_to_reply: lat(),
            home_to_reply: lat(),
            retries_per_txn: Histogram::bounded(1 << 10),
            intervals: Vec::new(),
        }
    }

    /// Folds one completed transaction into the phase histograms.
    pub fn record_txn(&mut self, t: &TxnTimeline) {
        let total = t.end.saturating_sub(t.issue) as usize;
        if t.write {
            self.write_latency.record(total);
        } else {
            self.read_latency.record(total);
        }
        self.retries_per_txn.record(t.retries as usize);
        if let Some(home) = t.home_lookup {
            self.issue_to_home
                .record(home.saturating_sub(t.issue) as usize);
            match t.fanout {
                Some(fan) => {
                    self.home_to_fanout
                        .record(fan.saturating_sub(home) as usize);
                    self.fanout_to_reply
                        .record(t.end.saturating_sub(fan) as usize);
                }
                None => {
                    self.home_to_reply
                        .record(t.end.saturating_sub(home) as usize);
                }
            }
        }
    }

    /// Appends one interval window.
    pub fn push_interval(&mut self, snap: IntervalSnapshot) {
        self.intervals.push(snap);
    }

    /// Folds another registry's histograms and intervals into this one.
    /// Histogram sums are order-independent, so merging per-shard
    /// registries reproduces the serial run's aggregates exactly; the
    /// other registry's intervals are appended in order (shard registries
    /// hand their windows to the coordinator separately and carry none).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        self.read_latency.merge(&other.read_latency);
        self.write_latency.merge(&other.write_latency);
        self.issue_to_home.merge(&other.issue_to_home);
        self.home_to_fanout.merge(&other.home_to_fanout);
        self.fanout_to_reply.merge(&other.fanout_to_reply);
        self.home_to_reply.merge(&other.home_to_reply);
        self.retries_per_txn.merge(&other.retries_per_txn);
        self.intervals.extend(other.intervals.iter().copied());
    }

    /// Completed transactions recorded.
    pub fn transactions(&self) -> u64 {
        self.read_latency.events() + self.write_latency.events()
    }

    fn hist_json(h: &Histogram) -> Json {
        Json::obj()
            .with("events", Json::U64(h.events()))
            .with("mean", Json::F64(h.mean()))
            .with("p50", Json::U64(h.percentile(0.50)))
            .with("p90", Json::U64(h.percentile(0.90)))
            .with("p99", Json::U64(h.percentile(0.99)))
            .with("max", Json::U64(h.max_value() as u64))
    }

    /// The registry as a stable-schema JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("schema", Json::Str(crate::schema::METRICS_SCHEMA.into()))
            .with("transactions", Json::U64(self.transactions()))
            .with(
                "latency",
                Json::obj()
                    .with("read", Self::hist_json(&self.read_latency))
                    .with("write", Self::hist_json(&self.write_latency)),
            )
            .with(
                "phases",
                Json::obj()
                    .with("issue_to_home", Self::hist_json(&self.issue_to_home))
                    .with("home_to_fanout", Self::hist_json(&self.home_to_fanout))
                    .with("fanout_to_reply", Self::hist_json(&self.fanout_to_reply))
                    .with("home_to_reply", Self::hist_json(&self.home_to_reply)),
            )
            .with("retries", Self::hist_json(&self.retries_per_txn))
            .with(
                "intervals",
                Json::Arr(self.intervals.iter().map(|s| s.to_json()).collect()),
            )
    }

    /// Plain-text interval table for `--interval-stats` output.
    pub fn render_intervals(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "interval            msgs  retries    nacks  occupancy  ops\n",
        );
        for s in &self.intervals {
            let _ = writeln!(
                out,
                "[{:>8},{:>8}) {:>7} {:>8} {:>8} {:>10} {:>4}",
                s.start, s.end, s.messages, s.retries, s.nacks, s.occupancy, s.ops_retired
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_breakdown_splits_fanout_and_direct_paths() {
        let mut r = MetricsRegistry::new();
        r.record_txn(&TxnTimeline {
            issue: 100,
            home_lookup: Some(120),
            fanout: Some(135),
            end: 180,
            write: true,
            retries: 2,
        });
        r.record_txn(&TxnTimeline {
            issue: 10,
            home_lookup: Some(40),
            fanout: None,
            end: 70,
            write: false,
            retries: 0,
        });
        assert_eq!(r.transactions(), 2);
        assert_eq!(r.write_latency.events(), 1);
        assert_eq!(r.write_latency.mean(), 80.0);
        assert_eq!(r.read_latency.mean(), 60.0);
        assert_eq!(r.issue_to_home.events(), 2);
        assert_eq!(r.home_to_fanout.count(15), 1);
        assert_eq!(r.fanout_to_reply.count(45), 1);
        assert_eq!(r.home_to_reply.count(30), 1);
        assert_eq!(r.retries_per_txn.weight(), 2);
    }

    #[test]
    fn local_completion_without_home_phase() {
        let mut r = MetricsRegistry::new();
        r.record_txn(&TxnTimeline {
            issue: 5,
            home_lookup: None,
            fanout: None,
            end: 12,
            write: false,
            retries: 0,
        });
        assert_eq!(r.read_latency.events(), 1);
        assert_eq!(r.issue_to_home.events(), 0);
    }

    #[test]
    fn json_schema_has_expected_sections() {
        let mut r = MetricsRegistry::new();
        r.record_txn(&TxnTimeline {
            issue: 0,
            home_lookup: Some(20),
            fanout: None,
            end: 60,
            write: false,
            retries: 1,
        });
        r.push_interval(IntervalSnapshot {
            start: 0,
            end: 1000,
            messages: 5,
            retries: 1,
            nacks: 1,
            occupancy: 2,
            ops_retired: 3,
        });
        let j = r.to_json();
        assert_eq!(
            j.get("schema").and_then(Json::as_str),
            Some("scd-metrics/v1")
        );
        assert_eq!(j.get("transactions").and_then(Json::as_u64), Some(1));
        let lat = j.get("latency").unwrap();
        assert_eq!(
            lat.get("read").unwrap().get("p50").and_then(Json::as_u64),
            Some(60)
        );
        assert_eq!(j.get("intervals").and_then(Json::as_arr).unwrap().len(), 1);
        // Round-trips through the parser.
        let text = j.to_string();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn interval_table_renders_every_window() {
        let mut r = MetricsRegistry::new();
        for i in 0..3 {
            r.push_interval(IntervalSnapshot {
                start: i * 100,
                end: (i + 1) * 100,
                ..Default::default()
            });
        }
        let table = r.render_intervals();
        assert_eq!(table.lines().count(), 4);
        assert!(table.contains("[     200,     300)"));
    }
}
