//! Traffic and occupancy attribution: *where the bytes went*.
//!
//! The paper's evaluation splits invalidation traffic out of total
//! traffic per scheme; this module refines that into the scheme-relevant
//! classes an analysis actually asks about — requests, data replies,
//! invalidations, acknowledgements, NACKs, replacement writebacks,
//! sparse-replacement flushes, and synchronization — each with a message
//! count, a byte count under a simple header+payload wire model, flits,
//! and flit·hops (the link-bandwidth integral).
//!
//! Classification keys off the *stable message labels*
//! (`scd-protocol::MsgKind::label`), so the same code attributes an
//! online run (the machine feeds labels as it sends) and an offline
//! trace ([`Attribution::from_events`]). The two agree exactly when the
//! trace recorded every send (unbounded rings, messages on).

use crate::event::{EventKind, TraceEvent};
use crate::json::Json;

/// Schema tag of the attribution JSON document section (re-exported from
/// the consolidated [`crate::schema`] registry).
pub use crate::schema::ATTRIB_SCHEMA;

/// The attribution taxonomy. Finer than the paper's four network classes:
/// NACKs split out of replies, replacement writebacks out of requests,
/// and sparse-replacement flushes out of invalidations, because those are
/// exactly the flows the schemes trade against each other.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AttribClass {
    /// Read/write/upgrade requests, forwards, and race/transfer closers.
    Request,
    /// Data and ownership replies.
    Reply,
    /// Invalidations sent on a writer's behalf.
    Invalidation,
    /// Invalidation and flush acknowledgements.
    Ack,
    /// Transient refusals (the retry traffic the RAC absorbs).
    Nack,
    /// Replacement writebacks and sharing downgrades (cache-side
    /// evictions returning data to memory).
    Writeback,
    /// Sparse-directory / `Dir_i NB` replacement flushes (directory-side
    /// evictions invalidating covered copies).
    SparseFlush,
    /// Lock and barrier traffic.
    Sync,
    /// Tardis lease renewals (timestamp-only round trips that replace
    /// refetches — the traffic Tardis trades invalidations for).
    Renewal,
    /// DLS fills served from the home LLC slice to a non-caching remote
    /// reader (the repeat traffic DLS trades directory memory for).
    LlcFill,
}

impl AttribClass {
    /// Every class, in schema order. The first eight are the original
    /// `scd-attrib/v1` classes and are always emitted; the classes after
    /// them are protocol-specific and appear in documents only when
    /// nonzero, so DASH outputs are byte-identical to the 8-class era.
    pub const ALL: [AttribClass; 10] = [
        AttribClass::Request,
        AttribClass::Reply,
        AttribClass::Invalidation,
        AttribClass::Ack,
        AttribClass::Nack,
        AttribClass::Writeback,
        AttribClass::SparseFlush,
        AttribClass::Sync,
        AttribClass::Renewal,
        AttribClass::LlcFill,
    ];

    /// Stable schema name.
    pub fn label(self) -> &'static str {
        match self {
            AttribClass::Request => "requests",
            AttribClass::Reply => "replies",
            AttribClass::Invalidation => "invalidations",
            AttribClass::Ack => "acks",
            AttribClass::Nack => "nacks",
            AttribClass::Writeback => "writebacks",
            AttribClass::SparseFlush => "sparse_flushes",
            AttribClass::Sync => "sync",
            AttribClass::Renewal => "renewals",
            AttribClass::LlcFill => "llc_fills",
        }
    }

    /// Whether this class is omitted from documents when all-zero
    /// (protocol-specific classes added after `scd-attrib/v1` froze).
    pub fn optional(self) -> bool {
        matches!(self, AttribClass::Renewal | AttribClass::LlcFill)
    }

    /// Classifies a stable message label. Unknown labels (a future
    /// protocol extension) conservatively count as requests.
    pub fn classify(label: &str) -> AttribClass {
        match label {
            "read_reply" | "write_reply" | "transfer_reply"
            | "tardis_read_reply" | "tardis_write_reply" | "llc_write_ack" => {
                AttribClass::Reply
            }
            "nack" => AttribClass::Nack,
            "inval" => AttribClass::Invalidation,
            "inval_ack" | "dir_flush_ack" => AttribClass::Ack,
            "writeback" | "sharing_writeback" => AttribClass::Writeback,
            "dir_flush" => AttribClass::SparseFlush,
            "lock_req" | "lock_grant" | "lock_retry" | "unlock_req"
            | "barrier_arrive" | "barrier_release" => AttribClass::Sync,
            "renew_req" | "renew_reply" => AttribClass::Renewal,
            "llc_fill" => AttribClass::LlcFill,
            _ => AttribClass::Request,
        }
    }

    fn index(self) -> usize {
        AttribClass::ALL.iter().position(|c| *c == self).unwrap()
    }
}

/// The wire model: a fixed header per message, a data payload on the
/// labels that carry a block, and fixed-size flits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttribParams {
    /// Bytes of header/command per message (address, type, identifiers).
    pub header_bytes: u64,
    /// Bytes of a data payload (the machine's block size).
    pub data_bytes: u64,
    /// Bytes per network flit.
    pub flit_bytes: u64,
}

impl Default for AttribParams {
    /// DASH-flavored defaults: 8-byte header, 16-byte blocks (the
    /// simulated machines' block size), 8-byte flits.
    fn default() -> Self {
        AttribParams {
            header_bytes: 8,
            data_bytes: 16,
            flit_bytes: 8,
        }
    }
}

impl AttribParams {
    /// The wire model with a machine's block size as the data payload.
    pub fn with_block_bytes(block_bytes: u64) -> Self {
        AttribParams {
            data_bytes: block_bytes,
            ..AttribParams::default()
        }
    }

    /// Whether a message label carries a data payload.
    pub fn carries_data(label: &str) -> bool {
        matches!(
            label,
            "read_reply" | "write_reply" | "transfer_reply" | "writeback"
                | "sharing_writeback" | "tardis_read_reply"
                | "tardis_write_reply" | "llc_fill"
        )
    }

    /// Bytes on the wire for one message with `label`.
    pub fn bytes(&self, label: &str) -> u64 {
        if Self::carries_data(label) {
            self.header_bytes + self.data_bytes
        } else {
            self.header_bytes
        }
    }

    /// Flits for one message with `label` (ceiling division; at least 1).
    pub fn flits(&self, label: &str) -> u64 {
        let bytes = self.bytes(label);
        bytes.div_ceil(self.flit_bytes.max(1)).max(1)
    }
}

/// Accumulated counters of one attribution class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassCounters {
    /// Messages sent.
    pub messages: u64,
    /// Bytes on the wire.
    pub bytes: u64,
    /// Flits on the wire.
    pub flits: u64,
    /// Flit·hops — each flit weighted by the links it crosses (the
    /// bandwidth the message actually consumed).
    pub flit_hops: u64,
}

impl ClassCounters {
    fn add(&mut self, bytes: u64, flits: u64, hops: u64) {
        self.messages += 1;
        self.bytes += bytes;
        self.flits += flits;
        self.flit_hops += flits * hops;
    }

    /// The counters as a JSON object — the per-class shape inside
    /// `scd-attrib/v1` and a streamed `attrib_delta`'s `classes` map.
    pub fn to_json(self) -> Json {
        Json::obj()
            .with("messages", Json::U64(self.messages))
            .with("bytes", Json::U64(self.bytes))
            .with("flits", Json::U64(self.flits))
            .with("flit_hops", Json::U64(self.flit_hops))
    }

    /// Counter-wise difference against an `earlier` snapshot of the same
    /// class (saturating, so a stale baseline can't underflow).
    pub fn minus(self, earlier: ClassCounters) -> ClassCounters {
        ClassCounters {
            messages: self.messages.saturating_sub(earlier.messages),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            flits: self.flits.saturating_sub(earlier.flits),
            flit_hops: self.flit_hops.saturating_sub(earlier.flit_hops),
        }
    }

    /// Counter-wise sum — for folding per-shard deltas of the same class
    /// and window back into the machine-wide figure.
    pub fn plus(self, other: ClassCounters) -> ClassCounters {
        ClassCounters {
            messages: self.messages + other.messages,
            bytes: self.bytes + other.bytes,
            flits: self.flits + other.flits,
            flit_hops: self.flit_hops + other.flit_hops,
        }
    }
}

/// The per-class traffic attribution of one run.
#[derive(Clone, Debug, Default)]
pub struct Attribution {
    params: AttribParams,
    classes: [ClassCounters; AttribClass::ALL.len()],
}

impl Attribution {
    /// An empty attribution under `params`.
    pub fn new(params: AttribParams) -> Self {
        Attribution {
            params,
            classes: Default::default(),
        }
    }

    /// The wire model in force.
    pub fn params(&self) -> AttribParams {
        self.params
    }

    /// Records one sent message by its stable label and hop count, and
    /// returns the flits it put on the wire (so callers can feed per-link
    /// accounting without re-deriving the model).
    pub fn record(&mut self, label: &str, hops: u32) -> u64 {
        let bytes = self.params.bytes(label);
        let flits = self.params.flits(label);
        self.classes[AttribClass::classify(label).index()].add(bytes, flits, hops as u64);
        flits
    }

    /// Counters of one class.
    pub fn class(&self, class: AttribClass) -> ClassCounters {
        self.classes[class.index()]
    }

    /// A snapshot of every class's counters, in [`AttribClass::ALL`]
    /// order — the baseline a streamed `attrib_delta` is diffed against
    /// (via [`ClassCounters::minus`]).
    pub fn counters(&self) -> [ClassCounters; AttribClass::ALL.len()] {
        self.classes
    }

    /// Folds another attribution's per-class counters into this one.
    /// Both sides must share the same wire model; each message is
    /// recorded by exactly one shard, so summing per-shard attributions
    /// reproduces the serial accounting.
    pub fn merge(&mut self, other: &Attribution) {
        for (a, b) in self.classes.iter_mut().zip(other.classes.iter()) {
            *a = a.plus(*b);
        }
    }

    /// Sum over every class.
    pub fn totals(&self) -> ClassCounters {
        let mut t = ClassCounters::default();
        for c in &self.classes {
            t.messages += c.messages;
            t.bytes += c.bytes;
            t.flits += c.flits;
            t.flit_hops += c.flit_hops;
        }
        t
    }

    /// Derives the attribution offline from a recorded event stream
    /// (every `msg_send` carries its label and hop count). Agrees with
    /// the online accounting when the trace is complete.
    pub fn from_events(events: &[TraceEvent], params: AttribParams) -> Self {
        let mut a = Attribution::new(params);
        for ev in events {
            if let EventKind::MsgSend { msg, hops, .. } = &ev.kind {
                a.record(msg, *hops);
            }
        }
        a
    }

    /// The `scd-attrib/v1` core: schema tag, wire model, per-class and
    /// total counters. Machine-side gauges (links, sparse pressure) are
    /// appended by the machine, which owns that state.
    pub fn to_json(&self) -> Json {
        let mut classes = Json::obj();
        for class in AttribClass::ALL {
            let c = self.class(class);
            if class.optional() && c.messages == 0 {
                continue;
            }
            classes.set(class.label(), c.to_json());
        }
        Json::obj()
            .with("schema", Json::Str(ATTRIB_SCHEMA.into()))
            .with(
                "params",
                Json::obj()
                    .with("header_bytes", Json::U64(self.params.header_bytes))
                    .with("data_bytes", Json::U64(self.params.data_bytes))
                    .with("flit_bytes", Json::U64(self.params.flit_bytes)),
            )
            .with("classes", classes)
            .with("totals", self.totals().to_json())
    }
}

/// Validates an `scd-attrib/v1` section: schema tag, every class present
/// with its counters, and totals equal to the per-class sums.
pub fn validate_attrib_json(j: &Json) -> Result<(), String> {
    let schema = j
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("attribution: missing `schema`")?;
    if schema != ATTRIB_SCHEMA {
        return Err(format!("attribution: unexpected schema `{schema}`"));
    }
    let classes = j.get("classes").ok_or("attribution: missing `classes`")?;
    let mut sums = [0u64; 4];
    for class in AttribClass::ALL {
        let c = match classes.get(class.label()) {
            Some(c) => c,
            // Protocol-specific classes are omitted when all-zero.
            None if class.optional() => continue,
            None => {
                return Err(format!(
                    "attribution: missing class `{}`",
                    class.label()
                ))
            }
        };
        for (i, key) in ["messages", "bytes", "flits", "flit_hops"].iter().enumerate() {
            sums[i] += c.get(key).and_then(Json::as_u64).ok_or_else(|| {
                format!("attribution: classes.{}.{key} missing", class.label())
            })?;
        }
    }
    let totals = j.get("totals").ok_or("attribution: missing `totals`")?;
    for (i, key) in ["messages", "bytes", "flits", "flit_hops"].iter().enumerate() {
        let declared = totals
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("attribution: totals.{key} missing"))?;
        if declared != sums[i] {
            return Err(format!(
                "attribution: totals.{key} {declared} != sum of classes {}",
                sums[i]
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_scheme_relevant_flows() {
        use AttribClass::*;
        assert_eq!(AttribClass::classify("read_req"), Request);
        assert_eq!(AttribClass::classify("fwd_write"), Request);
        assert_eq!(AttribClass::classify("read_reply"), Reply);
        assert_eq!(AttribClass::classify("nack"), Nack);
        assert_eq!(AttribClass::classify("inval"), Invalidation);
        assert_eq!(AttribClass::classify("inval_ack"), Ack);
        assert_eq!(AttribClass::classify("dir_flush_ack"), Ack);
        assert_eq!(AttribClass::classify("writeback"), Writeback);
        assert_eq!(AttribClass::classify("sharing_writeback"), Writeback);
        assert_eq!(AttribClass::classify("dir_flush"), SparseFlush);
        assert_eq!(AttribClass::classify("barrier_release"), Sync);
        assert_eq!(AttribClass::classify("renew_req"), Renewal);
        assert_eq!(AttribClass::classify("renew_reply"), Renewal);
        assert_eq!(AttribClass::classify("llc_fill"), LlcFill);
        assert_eq!(AttribClass::classify("llc_write_ack"), Reply);
        assert_eq!(AttribClass::classify("tardis_read_req"), Request);
        assert_eq!(AttribClass::classify("tardis_read_reply"), Reply);
        assert_eq!(AttribClass::classify("tardis_write_reply"), Reply);
        let labels: std::collections::HashSet<_> =
            AttribClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), AttribClass::ALL.len());
    }

    #[test]
    fn optional_classes_are_omitted_when_zero_but_validate_when_present() {
        // A DASH-era mix: no renewals / LLC fills → the document carries
        // exactly the original eight classes (byte-compat with v1 docs).
        let mut dash = Attribution::new(AttribParams::default());
        dash.record("read_req", 1);
        let j = dash.to_json();
        validate_attrib_json(&j).unwrap();
        assert!(j.get("classes").unwrap().get("renewals").is_none());
        assert!(j.get("classes").unwrap().get("llc_fills").is_none());
        // A Tardis/DLS mix: both classes appear and count toward totals.
        let mut t = Attribution::new(AttribParams::default());
        t.record("renew_req", 2);
        t.record("renew_reply", 2);
        t.record("llc_fill", 3);
        let j = t.to_json();
        validate_attrib_json(&j).unwrap();
        let classes = j.get("classes").unwrap();
        assert_eq!(
            classes.get("renewals").unwrap().get("messages").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            classes.get("llc_fills").unwrap().get("messages").and_then(Json::as_u64),
            Some(1)
        );
        // llc_fill carries a data payload; renewals are header-only.
        assert!(AttribParams::carries_data("llc_fill"));
        assert!(!AttribParams::carries_data("renew_req"));
    }

    #[test]
    fn wire_model_charges_data_payloads() {
        let p = AttribParams::default();
        assert_eq!(p.bytes("read_req"), 8, "header only");
        assert_eq!(p.bytes("read_reply"), 24, "header + block");
        assert_eq!(p.flits("read_req"), 1);
        assert_eq!(p.flits("read_reply"), 3);
        let wide = AttribParams::with_block_bytes(64);
        assert_eq!(wide.bytes("writeback"), 72);
        assert_eq!(wide.flits("writeback"), 9);
    }

    #[test]
    fn record_accumulates_and_reports_flits() {
        let mut a = Attribution::new(AttribParams::default());
        assert_eq!(a.record("read_req", 3), 1);
        assert_eq!(a.record("read_reply", 3), 3);
        assert_eq!(a.record("nack", 2), 1);
        let req = a.class(AttribClass::Request);
        assert_eq!((req.messages, req.bytes, req.flits, req.flit_hops), (1, 8, 1, 3));
        let rep = a.class(AttribClass::Reply);
        assert_eq!((rep.messages, rep.bytes, rep.flits, rep.flit_hops), (1, 24, 3, 9));
        assert_eq!(a.class(AttribClass::Nack).flit_hops, 2);
        let t = a.totals();
        assert_eq!((t.messages, t.bytes, t.flits, t.flit_hops), (3, 40, 5, 14));
    }

    #[test]
    fn offline_derivation_matches_online_recording() {
        use crate::event::{EventKind, TraceEvent};
        let sends = [("write_req", 2u32), ("inval", 1), ("inval_ack", 1), ("write_reply", 2)];
        let mut online = Attribution::new(AttribParams::default());
        let mut events = Vec::new();
        for (i, (label, hops)) in sends.iter().enumerate() {
            online.record(label, *hops);
            events.push(TraceEvent {
                seq: i as u64 + 1,
                cycle: i as u64,
                cluster: 0,
                kind: EventKind::MsgSend {
                    src: 0,
                    dst: 1,
                    msg: label,
                    class: "x",
                    block: Some(1),
                    hops: *hops,
                },
            });
        }
        let offline = Attribution::from_events(&events, AttribParams::default());
        assert_eq!(online.to_json().to_string(), offline.to_json().to_string());
    }

    #[test]
    fn json_roundtrip_and_validation() {
        let mut a = Attribution::new(AttribParams::default());
        a.record("read_req", 1);
        a.record("dir_flush", 2);
        a.record("dir_flush_ack", 2);
        let j = a.to_json();
        validate_attrib_json(&j).unwrap();
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
        // Doctored totals fail.
        let mut bad = j.clone();
        bad.set(
            "totals",
            Json::obj()
                .with("messages", Json::U64(99))
                .with("bytes", Json::U64(0))
                .with("flits", Json::U64(0))
                .with("flit_hops", Json::U64(0)),
        );
        assert!(validate_attrib_json(&bad).unwrap_err().contains("totals"));
        assert!(validate_attrib_json(&Json::obj()).is_err());
    }
}
