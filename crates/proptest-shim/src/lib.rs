//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to the crates.io registry, so the
//! workspace vendors a miniature property-testing framework with the API
//! subset its test suites use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), [`Strategy`] with `prop_map`,
//! integer/float range strategies, [`Just`], [`any`], tuple composition,
//! `prop::collection::vec`, `prop::option::of`, [`prop_oneof!`],
//! [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` rendering; there is no minimization pass.
//! * **Deterministic seeding.** Each test's RNG is seeded from a hash of
//!   the test's name, so failures reproduce exactly across runs and
//!   machines (no `PROPTEST_` env handling).
//! * Only the strategy combinators listed above exist.

use std::fmt::Debug;
use std::rc::Rc;

/// Deterministic xorshift64* RNG driving generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator (zero seeds are remapped).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// Seeds a generator deterministically from a test name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
    /// Accepted for API compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
    /// Give-up threshold for consecutive `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65_536,
        }
    }
}

/// A value generator.
///
/// Unlike real proptest there is no value tree: a strategy simply produces
/// one value per case from the runner's RNG.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Clone, Debug, Default)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Combinator modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::fmt::Debug;

        /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
        pub struct VecStrategy<S> {
            elem: S,
            len: core::ops::Range<usize>,
        }

        /// `Vec` strategy: each case draws a length in `len`, then that
        /// many elements.
        pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: Debug,
        {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.len.end - self.len.start;
                let n = self.len.start
                    + if span == 0 { 0 } else { rng.below(span as u64) as usize };
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy for `Option<S::Value>`.
        pub struct OptionStrategy<S>(S);

        /// `None` a quarter of the time, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Rejects the current case, drawing a fresh one instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($p:pat in $s:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut __rejects: u32 = 0;
                let mut __case: u32 = 0;
                while __case < __cfg.cases {
                    // Draw all inputs as a tuple first so the failure report
                    // can Debug-print them even through destructuring or
                    // `mut` patterns.
                    let __vals = ( $( {
                        let __s = $s;
                        $crate::Strategy::generate(&__s, &mut __rng)
                    }, )+ );
                    let __inputs_desc = format!("{:?}", __vals);
                    let __result = {
                        let ( $($p,)+ ) = __vals;
                        (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                            { $body }
                            ::core::result::Result::Ok(())
                        })()
                    };
                    match __result {
                        ::core::result::Result::Ok(()) => {
                            __case += 1;
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {
                            __rejects += 1;
                            assert!(
                                __rejects < __cfg.max_global_rejects,
                                "proptest {}: too many prop_assume! rejections",
                                stringify!($name)
                            );
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest {} failed at case {}: {}\n  inputs: {}",
                                stringify!($name), __case, __msg, __inputs_desc
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::new(42);
        let s = (1u32..5, 10usize..=10, 0.0f64..1.0);
        for _ in 0..1000 {
            let (a, b, c) = s.generate(&mut rng);
            assert!((1..5).contains(&a));
            assert_eq!(b, 10);
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::TestRng::new(7);
        let s = prop_oneof![Just(1u8), Just(2u8), (5u8..8).prop_map(|v| v)];
        let mut seen = [false; 9];
        for _ in 0..500 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && (seen[5] || seen[6] || seen[7]));
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::TestRng::new(9);
        let s = prop::collection::vec(0u16..32, 0..64);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 64);
            assert!(v.iter().all(|&x| x < 32));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

        #[test]
        fn macro_end_to_end(x in 0u64..100, mut v in prop::collection::vec(0u32..10, 0..8)) {
            prop_assume!(x != 13);
            v.push(x as u32);
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v.last().copied(), Some(x as u32));
        }
    }
}
