//! # scd-machine — the full DASH machine model
//!
//! Assembles every substrate — caches ([`scd_mem`]), mesh interconnect
//! ([`scd_noc`]), directory schemes ([`scd_core`]), protocol state machines
//! ([`scd_protocol`]) and reference generation ([`scd_tango`]) — into an
//! event-driven multiprocessor simulator in the mold of the paper's §5
//! evaluation environment.
//!
//! ```
//! use scd_machine::{Machine, MachineConfig};
//! use scd_tango::{Op, ScriptProgram, ThreadProgram};
//!
//! // Two clusters; processor 0 writes a block, processor 1 reads it.
//! let cfg = MachineConfig::tiny(2);
//! let programs: Vec<Box<dyn ThreadProgram>> = vec![
//!     Box::new(ScriptProgram::new(vec![Op::Write(0x40), Op::Barrier(0)])),
//!     Box::new(ScriptProgram::new(vec![Op::Barrier(0), Op::Read(0x40)])),
//! ];
//! let stats = Machine::new(cfg, programs).run();
//! assert_eq!(stats.shared_writes, 1);
//! assert!(stats.cycles > 0);
//! ```

#![warn(missing_docs)]

pub mod checker;
pub mod config;
pub mod error;
pub mod machine;
pub mod stats;

pub use checker::Violation;
pub use config::{MachineConfig, ProtocolKind, Timing};
pub use error::{PostMortem, SimError};
pub use machine::explore::{Choice, FaultEdges, Mutation};
pub use machine::shard::ShardedMachine;
pub use machine::{Machine, ValueOracleReport};
pub use stats::{DlsCounters, FaultCounters, RunStats, TardisCounters};
