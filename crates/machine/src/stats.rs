//! Aggregated results of one simulation run.

use scd_core::{OverflowStats, SparseStats};
use scd_noc::NetworkStats;
use scd_stats::{Histogram, MessageClass, Traffic};
use scd_trace::{Json, MetricsRegistry};

/// Counts of rare protocol paths, for observability in stress tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolCounters {
    /// Requests forwarded to a dirty owner (3-cluster transactions).
    pub forwards: u64,
    /// Writeback races (forward bounced off an ex-owner).
    pub races: u64,
    /// Requests parked because the requester was the recorded owner.
    pub self_owned_parks: u64,
    /// `Dir_i NB` pointer-overflow evictions.
    pub nb_evictions: u64,
    /// Sparse-directory replacements that required flushes.
    pub replacement_flushes: u64,
    /// Requests stalled on a fully pinned sparse set.
    pub sparse_stalls: u64,
}

/// Tardis-backend event counters (DESIGN.md §16). `None` unless the run
/// used `ProtocolKind::Tardis`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TardisCounters {
    /// Lease-carrying read fills installed at requesters.
    pub lease_fills: u64,
    /// Lease renewal requests sent (expired lease on a resident line).
    pub renewals: u64,
    /// Renewals the home declined (the block had been rewritten), each
    /// forcing a refetch through the normal miss path.
    pub renew_refetches: u64,
    /// Writes written through to the home timestamp slice (every Tardis
    /// write; there is no exclusive-ownership fast path).
    pub write_throughs: u64,
}

/// DLS-backend event counters (DESIGN.md §16). `None` unless the run
/// used `ProtocolKind::Dls`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DlsCounters {
    /// Remote reads served from the home LLC slice (no requester fill).
    pub llc_fills: u64,
    /// Remote writes absorbed by the home LLC slice.
    pub llc_writes: u64,
}

/// Counts of injected faults and the protocol's recovery work. All zeros
/// when no fault plan is active.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Requests the home refused with a transient NACK (injected or
    /// `SelfOwned` conversions under an active plan).
    pub nacks: u64,
    /// Requests reissued by a requester after a NACK.
    pub retries: u64,
    /// Extra deliveries injected by the duplication fault.
    pub duplicates: u64,
    /// Stray replies/NACKs dropped at the requester (duplicate service).
    pub strays_dropped: u64,
    /// Latency spikes injected by the delay fault.
    pub delay_spikes: u64,
    /// Messages jittered out of channel order by the reorder fault.
    pub reorders: u64,
}

/// Where simulated time went, per processor and in aggregate.
#[derive(Clone, Debug, Default)]
pub struct StallBreakdown {
    /// Cycles spent blocked on memory transactions, per processor.
    pub mem_stall: Vec<u64>,
    /// Cycles spent blocked on locks/barriers, per processor.
    pub sync_stall: Vec<u64>,
    /// Cycles from start to each processor's completion.
    pub finish: Vec<u64>,
}

impl StallBreakdown {
    /// Aggregate (busy, memory-stall, sync-stall) fractions of total
    /// processor-time.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total: u64 = self.finish.iter().sum();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let mem: u64 = self.mem_stall.iter().sum();
        let sync: u64 = self.sync_stall.iter().sum();
        let busy = total.saturating_sub(mem + sync);
        (
            busy as f64 / total as f64,
            mem as f64 / total as f64,
            sync as f64 / total as f64,
        )
    }
}

/// Everything the experiment harness reads off a finished run.
#[derive(Clone, Debug)]
pub struct RunStats {
    /// Simulated execution time in cycles (when the last processor
    /// finished).
    pub cycles: u64,
    /// Network message counts by class.
    pub traffic: Traffic,
    /// Invalidation distribution: one event per directory write transaction
    /// (and per `Dir_i NB` read-caused eviction), weighted by the number of
    /// invalidation messages sent (Figures 3–6).
    pub invalidations: Histogram,
    /// Shared reads issued by the application.
    pub shared_reads: u64,
    /// Shared writes issued by the application.
    pub shared_writes: u64,
    /// Synchronization operations issued (lock/unlock/barrier).
    pub sync_ops: u64,
    /// Interconnect statistics (hop distribution).
    pub network: NetworkStats,
    /// Sum of sparse-directory statistics across all homes (None when the
    /// directory is complete).
    pub sparse: Option<SparseStats>,
    /// Sum of overflow-directory statistics across all homes (None unless
    /// the organization is `Organization::Overflow`).
    pub overflow: Option<OverflowStats>,
    /// Machine-wide L2 misses.
    pub l2_misses: u64,
    /// (lock grants, lock retry messages) across all homes.
    pub lock_metrics: (u64, u64),
    /// (max home queue depth, total queued requests) across all homes.
    pub queue_metrics: (usize, u64),
    /// Live directory entries at the end of the run (occupancy check).
    pub live_dir_entries: usize,
    /// Rare-path counters.
    pub protocol: ProtocolCounters,
    /// Tardis-backend counters (`None` for other protocols).
    pub tardis: Option<TardisCounters>,
    /// DLS-backend counters (`None` for other protocols).
    pub dls: Option<DlsCounters>,
    /// Fault-injection counters (all zero when no fault plan is active).
    pub faults: FaultCounters,
    /// Ownership-epoch versions assigned by the version oracle (0 when
    /// `track_versions` is off). Every write transaction that reaches a
    /// home directory creates one.
    pub versions_assigned: u64,
    /// Simulator events popped off the event queue over the whole run
    /// (processor steps, deliveries, replays). A host-side throughput
    /// denominator — deliberately NOT part of [`RunStats::to_json`]'s
    /// published schema, which records simulated behaviour only.
    pub events_delivered: u64,
    /// Per-processor time anatomy.
    pub stalls: StallBreakdown,
}

impl RunStats {
    /// Total shared references (Table 2's "shared refs").
    pub fn shared_refs(&self) -> u64 {
        self.shared_reads + self.shared_writes
    }

    /// Execution time normalized to a baseline run.
    pub fn normalized_time(&self, baseline: &RunStats) -> f64 {
        self.cycles as f64 / baseline.cycles as f64
    }

    /// The core run statistics as a JSON object with insertion-ordered,
    /// stable field names. This is the `stats` section of the
    /// `scd-run-stats/v1` schema; field names and nesting are a published
    /// format (`scdsim --stats-json`, `BENCH_*.json`) — only add, never
    /// rename.
    pub fn to_json(&self) -> Json {
        let traffic = Json::obj()
            .with("requests", Json::U64(self.traffic.get(MessageClass::Request)))
            .with("replies", Json::U64(self.traffic.get(MessageClass::Reply)))
            .with(
                "invalidations",
                Json::U64(self.traffic.get(MessageClass::Invalidation)),
            )
            .with(
                "acks",
                Json::U64(self.traffic.get(MessageClass::Acknowledgement)),
            )
            .with("total", Json::U64(self.traffic.total()));
        let network = Json::obj()
            .with("messages", Json::U64(self.network.messages))
            .with("hops", Json::U64(self.network.hops))
            .with("mean_hops", Json::F64(self.network.mean_hops()))
            .with(
                "contention_cycles",
                Json::U64(self.network.contention_cycles),
            );
        let protocol = Json::obj()
            .with("forwards", Json::U64(self.protocol.forwards))
            .with("races", Json::U64(self.protocol.races))
            .with("self_owned_parks", Json::U64(self.protocol.self_owned_parks))
            .with("nb_evictions", Json::U64(self.protocol.nb_evictions))
            .with(
                "replacement_flushes",
                Json::U64(self.protocol.replacement_flushes),
            )
            .with("sparse_stalls", Json::U64(self.protocol.sparse_stalls));
        let faults = Json::obj()
            .with("nacks", Json::U64(self.faults.nacks))
            .with("retries", Json::U64(self.faults.retries))
            .with("duplicates", Json::U64(self.faults.duplicates))
            .with("strays_dropped", Json::U64(self.faults.strays_dropped))
            .with("delay_spikes", Json::U64(self.faults.delay_spikes))
            .with("reorders", Json::U64(self.faults.reorders));
        let (busy, mem, sync) = self.stalls.fractions();
        let anatomy = Json::obj()
            .with("busy", Json::F64(busy))
            .with("mem_stall", Json::F64(mem))
            .with("sync_stall", Json::F64(sync));
        let mut j = Json::obj()
            .with("cycles", Json::U64(self.cycles))
            .with("shared_reads", Json::U64(self.shared_reads))
            .with("shared_writes", Json::U64(self.shared_writes))
            .with("sync_ops", Json::U64(self.sync_ops))
            .with("l2_misses", Json::U64(self.l2_misses))
            .with("traffic", traffic)
            .with(
                "invalidations",
                Json::obj()
                    .with("events", Json::U64(self.invalidations.events()))
                    .with("total", Json::U64(self.invalidations.weight()))
                    .with("mean", Json::F64(self.invalidations.mean()))
                    .with("max", Json::U64(self.invalidations.max_value() as u64)),
            )
            .with("network", network)
            .with("protocol", protocol)
            .with("faults", faults)
            .with("anatomy", anatomy)
            .with("lock_grants", Json::U64(self.lock_metrics.0))
            .with("lock_retries", Json::U64(self.lock_metrics.1))
            .with("max_home_queue", Json::U64(self.queue_metrics.0 as u64))
            .with("queued_requests", Json::U64(self.queue_metrics.1))
            .with("live_dir_entries", Json::U64(self.live_dir_entries as u64))
            .with("versions_assigned", Json::U64(self.versions_assigned));
        if let Some(s) = &self.sparse {
            j.set(
                "sparse",
                Json::obj()
                    .with("hits", Json::U64(s.hits))
                    .with("misses", Json::U64(s.misses))
                    .with("fills", Json::U64(s.fills))
                    .with("replacements", Json::U64(s.replacements)),
            );
        }
        if let Some(o) = &self.overflow {
            j.set(
                "overflow",
                Json::obj()
                    .with("promotions", Json::U64(o.promotions))
                    .with("demotions", Json::U64(o.demotions))
                    .with("displacements", Json::U64(o.displacements))
                    .with("fallback_evictions", Json::U64(o.fallback_evictions)),
            );
        }
        if let Some(t) = &self.tardis {
            j.set(
                "tardis",
                Json::obj()
                    .with("lease_fills", Json::U64(t.lease_fills))
                    .with("renewals", Json::U64(t.renewals))
                    .with("renew_refetches", Json::U64(t.renew_refetches))
                    .with("write_throughs", Json::U64(t.write_throughs)),
            );
        }
        if let Some(d) = &self.dls {
            j.set(
                "dls",
                Json::obj()
                    .with("llc_fills", Json::U64(d.llc_fills))
                    .with("llc_writes", Json::U64(d.llc_writes)),
            );
        }
        j
    }

    /// The full `scd-run-stats/v1` document: schema tag, the core stats,
    /// the metrics registry (or `null` when metrics were off), the
    /// traffic attribution section (or `null` when attribution was off;
    /// see `Machine::attribution_json`), and the trace bookkeeping
    /// section (or `null` when tracing was off; see
    /// `Machine::trace_json` — its `dropped_events` counter is how ring
    /// eviction surfaces in exported documents), and the directory
    /// observatory section (or `null` when the patterns flag was off;
    /// see `PatternTable::section_json`). `meta` fields (app, scheme,
    /// seed, ...) are prepended under `run` when provided, so harnesses
    /// can label their outputs.
    pub fn to_json_document(
        &self,
        run: Option<Json>,
        metrics: Option<&MetricsRegistry>,
        attribution: Option<Json>,
        trace: Option<Json>,
        patterns: Option<Json>,
    ) -> Json {
        let mut j = Json::obj().with("schema", Json::Str(scd_trace::RUN_STATS_SCHEMA.into()));
        if let Some(run) = run {
            j.set("run", run);
        }
        j.set("stats", self.to_json());
        j.set(
            "metrics",
            metrics.map(MetricsRegistry::to_json).unwrap_or(Json::Null),
        );
        j.set("attribution", attribution.unwrap_or(Json::Null));
        j.set("trace", trace.unwrap_or(Json::Null));
        j.set("patterns", patterns.unwrap_or(Json::Null));
        j
    }
}
