//! Machine configuration and the paper's standard presets.

use scd_core::{Organization, Replacement, Scheme};
use scd_noc::{FaultPlan, LatencyModel};
use scd_trace::TraceConfig;

/// Which coherence protocol family the machine speaks (DESIGN.md §16).
///
/// All three backends run on the same engine — event wheel, NoC, caches,
/// fault injector, tracing/attribution, sharding — so runs on identical
/// op streams compare directory memory × traffic × latency across
/// protocol families.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// DASH-style invalidation protocol with a home directory (the
    /// paper's family: Dir_i B/NB/X, coarse vectors, sparse/overflow
    /// organizations).
    #[default]
    Dash,
    /// Tardis-style timestamp coherence: per-block (wts, rts) counters
    /// at the home, lease-based reads, no sharer lists and no
    /// invalidation fan-out; writes bump the write timestamp past every
    /// outstanding lease. Modeled without the exclusive-ownership
    /// optimization — writes write through to the home slice.
    Tardis,
    /// Directoryless shared LLC baseline: no directory state at all;
    /// every remote miss resolves at the home LLC slice and remote
    /// clusters never cache shared data.
    Dls,
}

impl ProtocolKind {
    /// Stable lower-case name (CLI `--protocol` values, sweep ids).
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Dash => "dash",
            ProtocolKind::Tardis => "tardis",
            ProtocolKind::Dls => "dls",
        }
    }

    /// Parses a CLI name; accepts `dash`, `tardis`, `dls`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "dash" => Ok(ProtocolKind::Dash),
            "tardis" => Ok(ProtocolKind::Tardis),
            "dls" => Ok(ProtocolKind::Dls),
            other => Err(format!(
                "unknown protocol `{other}` (known: dash, tardis, dls)"
            )),
        }
    }

    /// All backends, in canonical order.
    pub const ALL: [ProtocolKind; 3] =
        [ProtocolKind::Dash, ProtocolKind::Tardis, ProtocolKind::Dls];
}

/// Fixed-cost timing parameters, calibrated so that the three canonical
/// DASH latencies come out near the paper's §5 numbers: local misses
/// "on the order of 23 processor cycles", remote two-cluster misses
/// "about 60 cycles", three-cluster (dirty-remote) misses "about 80".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Timing {
    /// Primary-cache hit, cycles.
    pub l1_hit: u64,
    /// Secondary-cache hit (also the miss-detection cost and the cache
    /// access charge at a forwarding owner), cycles.
    pub l2_hit: u64,
    /// Cluster bus arbitration + main-memory/directory access, cycles.
    pub bus_memory: u64,
    /// Directory lookup/occupancy when only state (no data) is touched.
    pub dir_lookup: u64,
    /// Local processing of a synchronization operation.
    pub sync_op: u64,
}

impl Default for Timing {
    fn default() -> Self {
        // 23-cycle local miss = l2_hit (miss detect) + bus_memory.
        Timing {
            l1_hit: 1,
            l2_hit: 8,
            bus_memory: 15,
            dir_lookup: 8,
            sync_op: 2,
        }
    }
}

/// Full description of a simulated machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of clusters (home/directory nodes).
    pub clusters: usize,
    /// Processors per cluster (the paper's runs use 1; DASH hardware has 4).
    pub procs_per_cluster: usize,
    /// Coherence block size in bytes (paper: 16).
    pub block_bytes: u64,
    /// L1 capacity in blocks.
    pub l1_blocks: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 capacity in blocks.
    pub l2_blocks: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Directory entry format.
    pub scheme: Scheme,
    /// Directory organization (complete or sparse).
    pub organization: Organization,
    /// Interconnect latency model.
    pub latency: LatencyModel,
    /// Fixed-cost timing parameters.
    pub timing: Timing,
    /// Master seed (workloads fork their own streams from it).
    pub seed: u64,
    /// Abort the run if simulated time exceeds this many cycles (deadlock /
    /// runaway guard). 0 disables the limit.
    pub max_cycles: u64,
    /// Verify coherence invariants when the machine quiesces (slow; on by
    /// default in tests via the integration suites).
    pub check_invariants: bool,
    /// Debug aid: eprintln every protocol message concerning this block.
    pub trace_block: Option<u64>,
    /// Track data versions through the protocol and assert, on every
    /// observation, that no cluster ever reads an older version of a block
    /// than it has already seen (the *version oracle* — catches stale-copy
    /// and lost-invalidation bugs directly). Costs a few hash lookups per
    /// reference; on in `tiny()`, off in `paper_32()`.
    pub track_versions: bool,
    /// Model link contention in the mesh: each message holds every link of
    /// its route for this many cycles and queues behind earlier traffic.
    /// `None` = latency-only network (the paper's effective model).
    pub link_occupancy: Option<u64>,
    /// Send replacement hints: when a cluster silently drops a clean
    /// (shared) L2 line, notify the home so precise directory
    /// representations can un-record the sharer. Trades hint messages for
    /// fewer extraneous invalidations — an optional mechanism in
    /// DASH-class designs, off in the paper's evaluation.
    pub replacement_hints: bool,
    /// Model §3.3's cache-based linked-list (SCI-style) invalidation
    /// behaviour: a write's invalidations are sent one at a time, each only
    /// after the previous acknowledgement returns ("the list is unraveled
    /// one by one"), instead of being pumped into the network at once.
    pub serial_invalidations: bool,
    /// Deterministic fault injection (NACKs, duplicates, latency spikes,
    /// reorders), driven by a stream forked from `seed`. `None` leaves the
    /// run bit-identical to a machine without fault hooks.
    pub fault_plan: Option<FaultPlan>,
    /// Forward-progress watchdog: fail the run with
    /// `SimError::LivelockWatchdog` if no processor retires an operation
    /// for this many cycles while any is unfinished. 0 disables it.
    pub watchdog_cycles: u64,
    /// Capacity of the in-memory ring of recent events reported in a
    /// failure post-mortem. 0 disables event logging.
    pub event_log: usize,
    /// Structured transaction tracing and the metrics registry
    /// (`scd-trace`). `None` — like an inactive config — leaves the run
    /// bit-identical to a machine without trace hooks.
    pub trace: Option<TraceConfig>,
    /// Coherence protocol backend (DESIGN.md §16).
    pub protocol: ProtocolKind,
    /// Record a protocol-independent value oracle: every retired write
    /// is tagged `(writer, write-seq)` and every retired read logs which
    /// write it observed, so the differential harness can assert that
    /// two protocols produce identical final memory images and load
    /// values on the same (race-free) program. Off by default — leaves
    /// the run bit-identical to a machine without the oracle.
    pub value_oracle: bool,
}

impl MachineConfig {
    /// The paper's evaluation configuration (§6.2): 32 processors in 32
    /// clusters of 1, 16-byte blocks, 64 KB direct-mapped L1 and 256 KB
    /// 4-way L2 per processor, complete full-bit-vector directory, mesh
    /// interconnect.
    pub fn paper_32() -> Self {
        MachineConfig {
            clusters: 32,
            procs_per_cluster: 1,
            block_bytes: 16,
            l1_blocks: (64 << 10) / 16,
            l1_ways: 1,
            l2_blocks: (256 << 10) / 16,
            l2_ways: 4,
            scheme: Scheme::FullVector,
            organization: Organization::Complete,
            latency: LatencyModel::Mesh {
                fixed: 13,
                per_hop: 1,
            },
            timing: Timing::default(),
            seed: 0x5CD,
            max_cycles: 0,
            check_invariants: false,
            trace_block: None,
            track_versions: false,
            link_occupancy: None,
            replacement_hints: false,
            serial_invalidations: false,
            fault_plan: None,
            watchdog_cycles: 0,
            event_log: 64,
            trace: None,
            protocol: ProtocolKind::Dash,
            value_oracle: false,
        }
    }

    /// A small machine for unit/integration tests: everything shrunk so
    /// interesting cases (evictions, conflicts) occur quickly.
    pub fn tiny(clusters: usize) -> Self {
        MachineConfig {
            clusters,
            procs_per_cluster: 1,
            block_bytes: 16,
            l1_blocks: 4,
            l1_ways: 1,
            l2_blocks: 16,
            l2_ways: 2,
            scheme: Scheme::FullVector,
            organization: Organization::Complete,
            latency: LatencyModel::Uniform { latency: 10 },
            timing: Timing::default(),
            seed: 0x5CD,
            max_cycles: 50_000_000,
            check_invariants: true,
            trace_block: None,
            track_versions: true,
            link_occupancy: None,
            replacement_hints: false,
            serial_invalidations: false,
            fault_plan: None,
            watchdog_cycles: 0,
            event_log: 64,
            trace: None,
            protocol: ProtocolKind::Dash,
            value_oracle: false,
        }
    }

    /// Replaces the directory scheme.
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Switches to a sparse directory with the given total entries,
    /// associativity and replacement policy (§6.3).
    pub fn with_sparse(mut self, entries: usize, ways: usize, policy: Replacement) -> Self {
        self.organization = Organization::Sparse {
            entries,
            ways,
            policy,
        };
        self
    }

    /// Switches to an overflow directory (§7 future work): `i`-pointer
    /// small entries per block plus `wide_entries` full-vector slots per
    /// home, `wide_ways`-associative.
    pub fn with_overflow(
        mut self,
        i: usize,
        wide_entries: usize,
        wide_ways: usize,
        policy: Replacement,
    ) -> Self {
        self.organization = Organization::Overflow {
            i,
            wide_entries,
            wide_ways,
            policy,
        };
        // Entry-level operations still honour the scheme for make_dirty /
        // waiter queues; pointers-only NB matches the small entries.
        self.scheme = Scheme::dir_nb(i);
        self
    }

    /// Scales both cache levels so the machine-wide L2 capacity totals
    /// `total_cache_blocks` (the §6.3 scaled-cache methodology: keep the
    /// data-set-to-cache ratio of a full-size run).
    pub fn with_scaled_caches(mut self, total_cache_blocks: usize) -> Self {
        let procs = self.clusters * self.procs_per_cluster;
        let per_proc = (total_cache_blocks / procs).max(4);
        // Keep L1 at 1/4 of L2, at least one set of each associativity.
        self.l2_ways = self.l2_ways.min(per_proc);
        self.l2_blocks = per_proc / self.l2_ways * self.l2_ways;
        let l1 = (per_proc / 4).max(1);
        self.l1_ways = 1;
        self.l1_blocks = l1;
        self
    }

    /// Replaces the coherence protocol backend.
    pub fn with_protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        self
    }

    /// Enables the differential value oracle.
    pub fn with_value_oracle(mut self) -> Self {
        self.value_oracle = true;
        self
    }

    /// Enables fault injection with the given plan.
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables the forward-progress watchdog (0 disables it).
    pub fn with_watchdog(mut self, cycles: u64) -> Self {
        self.watchdog_cycles = cycles;
        self
    }

    /// Enables transaction tracing / the metrics registry.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Total processors.
    pub fn processors(&self) -> usize {
        self.clusters * self.procs_per_cluster
    }

    /// Machine-wide L2 capacity in blocks ("size factor 1" for sparse
    /// directories).
    pub fn total_cache_blocks(&self) -> usize {
        self.l2_blocks * self.processors()
    }

    /// Byte address to block number.
    pub fn block_of(&self, addr: u64) -> u64 {
        addr / self.block_bytes
    }

    /// Home cluster of a block: round-robin interleaving across clusters,
    /// as in the paper's simulator ("main memory is evenly distributed
    /// across all clusters and allocated to the clusters using a
    /// round-robin scheme").
    pub fn home_of(&self, block: u64) -> usize {
        (block % self.clusters as u64) as usize
    }

    /// Home cluster of lock `l`.
    pub fn lock_home(&self, l: u32) -> usize {
        l as usize % self.clusters
    }

    /// Home cluster of barrier `b`.
    pub fn barrier_home(&self, b: u32) -> usize {
        b as usize % self.clusters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_32_matches_evaluation_setup() {
        let c = MachineConfig::paper_32();
        assert_eq!(c.processors(), 32);
        assert_eq!(c.block_bytes, 16);
        assert_eq!(c.l1_blocks * 16, 64 << 10);
        assert_eq!(c.l2_blocks * 16, 256 << 10);
        assert_eq!(c.total_cache_blocks(), 32 * (256 << 10) / 16);
    }

    #[test]
    fn canonical_latencies_are_near_paper_values() {
        let c = MachineConfig::paper_32();
        let t = c.timing;
        // Local miss: detect + bus/memory.
        let local = t.l2_hit + t.bus_memory;
        assert_eq!(local, 23);
        // Remote clean miss: detect + net + memory + net (mean net latency
        // on the 8x4 mesh is fixed + per_hop * mean_distance ~= 17).
        let mesh = scd_noc::Mesh::near_square(32);
        let (fixed, per_hop) = match c.latency {
            LatencyModel::Mesh { fixed, per_hop } => (fixed, per_hop),
            _ => unreachable!(),
        };
        let net = fixed as f64 + per_hop as f64 * mesh.mean_distance();
        let remote2 = t.l2_hit as f64 + net + t.bus_memory as f64 + net;
        assert!(
            (55.0..65.0).contains(&remote2),
            "2-cluster latency ~60 expected, got {remote2}"
        );
        let remote3 =
            t.l2_hit as f64 + net + t.dir_lookup as f64 + net + t.l2_hit as f64 + net;
        assert!(
            (70.0..90.0).contains(&remote3),
            "3-cluster latency ~80 expected, got {remote3}"
        );
    }

    #[test]
    fn block_and_home_mapping() {
        let c = MachineConfig::paper_32();
        assert_eq!(c.block_of(0), 0);
        assert_eq!(c.block_of(15), 0);
        assert_eq!(c.block_of(16), 1);
        assert_eq!(c.home_of(0), 0);
        assert_eq!(c.home_of(33), 1);
    }

    #[test]
    fn scaled_caches_hit_target() {
        let c = MachineConfig::paper_32().with_scaled_caches(4096);
        assert_eq!(c.total_cache_blocks(), 4096);
        assert!(c.l1_blocks <= c.l2_blocks);
    }
}
