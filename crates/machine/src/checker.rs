//! Coherence invariant verification.
//!
//! Two entry points:
//!
//! * [`verify_quiescent`] — after a run drains (no processors running, no
//!   messages in flight), the following must hold for every block cached
//!   anywhere:
//!
//!   1. **Single writer**: at most one cluster holds the block dirty.
//!   2. **Owner tracking**: if a *non-home* cluster holds the block dirty,
//!      the home directory entry is dirty and names that cluster as owner.
//!   3. **Superset tracking**: every non-home cluster holding any copy is
//!      covered by the home entry's sharer superset (stale coverage of
//!      silently-evicted copies is allowed; *missing* coverage never is).
//!   4. No home block is left busy, and the home cluster itself is never
//!      recorded in its own directory.
//!
//! * [`verify_step`] — the subset that holds at *every* reachable state,
//!   transient ones included, which the exploration API checks after each
//!   transition: at most one dirty holder, and a dirty copy is exclusive
//!   machine-wide. (Directory agreement is deliberately *not* checked
//!   mid-flight: entries legitimately lead or trail the caches while
//!   requests, invalidations, and writebacks are in the air.)
//!
//! Violations are reported as a structured [`Violation`] carrying the
//! offending cluster and block so tooling — `scd-check` counterexamples,
//! post-mortems — can locate the fault without parsing prose.

use scd_mem::LineState;

use crate::machine::Machine;

/// One invariant violation, locating the fault when known.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The offending cluster, when the invariant is about one cluster.
    pub cluster: Option<usize>,
    /// The offending block address, when the invariant is about one block.
    pub block: Option<u64>,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl Violation {
    fn for_cluster(cluster: usize, detail: String) -> Self {
        Violation {
            cluster: Some(cluster),
            block: None,
            detail,
        }
    }

    fn for_block(block: u64, detail: String) -> Self {
        Violation {
            cluster: None,
            block: Some(block),
            detail,
        }
    }

    fn locate(cluster: usize, block: u64, detail: String) -> Self {
        Violation {
            cluster: Some(cluster),
            block: Some(block),
            detail,
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.cluster, self.block) {
            (Some(c), Some(b)) => write!(f, "cluster {c}, block {b}: {}", self.detail),
            (Some(c), None) => write!(f, "cluster {c}: {}", self.detail),
            (None, Some(b)) => write!(f, "block {b}: {}", self.detail),
            (None, None) => f.write_str(&self.detail),
        }
    }
}

impl std::error::Error for Violation {}

/// Verifies the quiescent invariants; returns the first violation found.
pub fn verify_quiescent(machine: &Machine) -> Result<(), Violation> {
    let (cfg, views) = machine.checker_view();
    verify_views(cfg, &views)
}

/// The quiescent check over an explicit set of cluster views — the shard
/// coordinator composes one view per cluster from that cluster's owning
/// worker, so the machine-wide invariants are checked across shards.
pub(crate) fn verify_views(
    cfg: &crate::config::MachineConfig,
    views: &[crate::machine::ClusterView<'_>],
) -> Result<(), Violation> {
    // Gather machine-wide residency: block -> (dirty holders, all holders).
    let mut residency: std::collections::HashMap<u64, (Vec<usize>, Vec<usize>)> =
        std::collections::HashMap::new();
    for (cl, (resident, _, _)) in views.iter().enumerate() {
        for (&block, &state) in resident {
            let e = residency.entry(block).or_default();
            if state == LineState::Dirty {
                e.0.push(cl);
            }
            e.1.push(cl);
        }
    }

    for (cl, (_, _, ser)) in views.iter().enumerate() {
        if ser.busy_blocks() != 0 {
            return Err(Violation::for_cluster(
                cl,
                format!(
                    "still has {} busy blocks after quiesce",
                    ser.busy_blocks()
                ),
            ));
        }
    }

    // Deterministic reporting order, independent of hash-map iteration.
    let mut blocks: Vec<u64> = residency.keys().copied().collect();
    blocks.sort_unstable();
    for block in blocks {
        let (dirty, holders) = &residency[&block];
        if dirty.len() > 1 {
            return Err(Violation::for_block(
                block,
                format!("multiple dirty holders {dirty:?}"),
            ));
        }
        let home = cfg.home_of(block);
        // The directory is keyed by the home-local block index.
        let entry = views[home].1.probe(block / cfg.clusters as u64);

        if let Some(e) = entry {
            // Precise representations never record the home cluster; a
            // coarse region / composite / broadcast superset may *cover* it
            // incidentally, which is fine (the home strips itself from
            // invalidation targets).
            if e.is_precise() && e.covers(home as u16) {
                return Err(Violation::locate(
                    home,
                    block,
                    format!("home cluster {home} recorded in its own directory"),
                ));
            }
        }

        if let Some(&owner) = dirty.first() {
            if owner != home {
                match entry {
                    None => {
                        return Err(Violation::locate(
                            owner,
                            block,
                            format!("cluster {owner} dirty but home {home} has no entry"),
                        ));
                    }
                    Some(e) => {
                        if !e.is_dirty() || e.owner() != Some(owner as u16) {
                            return Err(Violation::locate(
                                owner,
                                block,
                                format!(
                                    "cluster {owner} dirty but entry says {:?}/{:?}",
                                    e.state(),
                                    e.owner()
                                ),
                            ));
                        }
                    }
                }
            }
        }

        for &h in holders.iter() {
            if h == home {
                continue; // home copies are bus-tracked, not directory-tracked
            }
            match entry {
                None => {
                    return Err(Violation::locate(
                        h,
                        block,
                        format!("cluster {h} holds a copy but home {home} has no entry"),
                    ));
                }
                Some(e) => {
                    if !e.covers(h as u16) {
                        return Err(Violation::locate(
                            h,
                            block,
                            format!(
                                "cluster {h} holds a copy not covered by the entry \
                                 (superset {:?})",
                                e.sharer_superset()
                            ),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Verifies the every-state invariants: at most one dirty holder per block,
/// and a dirty copy is exclusive (no other cluster caches the block at
/// all). Safe to call at any point during a run or exploration.
pub fn verify_step(machine: &Machine) -> Result<(), Violation> {
    let (_, views) = machine.checker_view();

    let mut residency: std::collections::HashMap<u64, (Vec<usize>, Vec<usize>)> =
        std::collections::HashMap::new();
    for (cl, (resident, _, _)) in views.iter().enumerate() {
        for (&block, &state) in resident {
            let e = residency.entry(block).or_default();
            if state == LineState::Dirty {
                e.0.push(cl);
            }
            e.1.push(cl);
        }
    }

    let mut blocks: Vec<u64> = residency.keys().copied().collect();
    blocks.sort_unstable();
    for block in blocks {
        let (dirty, holders) = &residency[&block];
        if dirty.len() > 1 {
            return Err(Violation::for_block(
                block,
                format!("multiple dirty holders {dirty:?}"),
            ));
        }
        if let Some(&owner) = dirty.first() {
            if holders.len() > 1 {
                let others: Vec<usize> =
                    holders.iter().copied().filter(|&h| h != owner).collect();
                return Err(Violation::locate(
                    owner,
                    block,
                    format!(
                        "cluster {owner} holds the block dirty while clusters {others:?} \
                         still hold copies (dirty implies exclusive)"
                    ),
                ));
            }
        }
    }
    Ok(())
}
