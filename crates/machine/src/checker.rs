//! Coherence invariant verification on a quiescent machine.
//!
//! After a run drains (no processors running, no messages in flight), the
//! following must hold for every block cached anywhere:
//!
//! 1. **Single writer**: at most one cluster holds the block dirty.
//! 2. **Owner tracking**: if a *non-home* cluster holds the block dirty,
//!    the home directory entry is dirty and names that cluster as owner.
//! 3. **Superset tracking**: every non-home cluster holding any copy is
//!    covered by the home entry's sharer superset (stale coverage of
//!    silently-evicted copies is allowed; *missing* coverage never is).
//! 4. No home block is left busy, and the home cluster itself is never
//!    recorded in its own directory.

use scd_mem::LineState;

use crate::machine::Machine;

/// Verifies the invariants; returns a description of the first violation.
pub fn verify_quiescent(machine: &Machine) -> Result<(), String> {
    let (cfg, views) = machine.checker_view();

    // Gather machine-wide residency: block -> (dirty holders, all holders).
    let mut residency: std::collections::HashMap<u64, (Vec<usize>, Vec<usize>)> =
        std::collections::HashMap::new();
    for (cl, (resident, _, _)) in views.iter().enumerate() {
        for (&block, &state) in resident {
            let e = residency.entry(block).or_default();
            if state == LineState::Dirty {
                e.0.push(cl);
            }
            e.1.push(cl);
        }
    }

    for (cl, (_, _, ser)) in views.iter().enumerate() {
        if ser.busy_blocks() != 0 {
            return Err(format!(
                "cluster {cl} still has {} busy blocks after quiesce",
                ser.busy_blocks()
            ));
        }
    }

    for (&block, (dirty, holders)) in &residency {
        if dirty.len() > 1 {
            return Err(format!(
                "block {block}: multiple dirty holders {dirty:?}"
            ));
        }
        let home = cfg.home_of(block);
        // The directory is keyed by the home-local block index.
        let entry = views[home].1.probe(block / cfg.clusters as u64);

        if let Some(e) = entry {
            // Precise representations never record the home cluster; a
            // coarse region / composite / broadcast superset may *cover* it
            // incidentally, which is fine (the home strips itself from
            // invalidation targets).
            if e.is_precise() && e.covers(home as u16) {
                return Err(format!(
                    "block {block}: home cluster {home} recorded in its own directory"
                ));
            }
        }

        if let Some(&owner) = dirty.first() {
            if owner != home {
                match entry {
                    None => {
                        return Err(format!(
                            "block {block}: cluster {owner} dirty but home {home} has no entry"
                        ));
                    }
                    Some(e) => {
                        if !e.is_dirty() || e.owner() != Some(owner as u16) {
                            return Err(format!(
                                "block {block}: cluster {owner} dirty but entry says {:?}/{:?}",
                                e.state(),
                                e.owner()
                            ));
                        }
                    }
                }
            }
        }

        for &h in holders.iter() {
            if h == home {
                continue; // home copies are bus-tracked, not directory-tracked
            }
            match entry {
                None => {
                    return Err(format!(
                        "block {block}: cluster {h} holds a copy but home {home} has no entry"
                    ));
                }
                Some(e) => {
                    if !e.covers(h as u16) {
                        return Err(format!(
                            "block {block}: cluster {h} holds a copy not covered by the entry \
                             (superset {:?})",
                            e.sharer_superset()
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}
