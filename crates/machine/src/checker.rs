//! Coherence invariant verification, per protocol backend.
//!
//! Two entry points, both dispatching on `MachineConfig::protocol` so
//! every backend is held to its own formulation of "one writer at a
//! time":
//!
//! * [`verify_quiescent`] — after a run drains (no processors running, no
//!   messages in flight). Under **DASH** the following must hold for
//!   every block cached anywhere:
//!
//!   1. **Single writer**: at most one cluster holds the block dirty.
//!   2. **Owner tracking**: if a *non-home* cluster holds the block dirty,
//!      the home directory entry is dirty and names that cluster as owner.
//!   3. **Superset tracking**: every non-home cluster holding any copy is
//!      covered by the home entry's sharer superset (stale coverage of
//!      silently-evicted copies is allowed; *missing* coverage never is).
//!   4. No home block is left busy, and the home cluster itself is never
//!      recorded in its own directory.
//!
//!   Under **Tardis** the single-writer guarantee is temporal, not
//!   spatial: no line is ever dirty (writes are written through), every
//!   resident copy carries a lease, and a lease over a superseded
//!   version must already be expired relative to the home's write
//!   timestamp — `lease.wts < home.wts` implies `home.wts > lease.rts`,
//!   the "single writer per timestamp range" invariant. The directory
//!   must stay empty (timestamps replace it).
//!
//!   Under **DLS** there is nothing to keep coherent: no non-home
//!   cluster may hold any copy, the directory must stay empty, and at
//!   quiescence a home-resident copy must carry the block's current
//!   version (a remote write that failed to invalidate the home's
//!   cached copy leaves a stale version behind — the seeded
//!   `DlsSkipWriteback` bug).
//!
//! * [`verify_step`] — the subset that holds at *every* reachable state,
//!   transient ones included, which the exploration API checks after each
//!   transition. (DASH directory agreement is deliberately *not* checked
//!   mid-flight: entries legitimately lead or trail the caches while
//!   requests, invalidations, and writebacks are in the air; likewise the
//!   DLS version check waits for quiescence because a granted write's
//!   fill may still be in the air.)
//!
//! Violations are reported as a structured [`Violation`] carrying the
//! offending cluster and block so tooling — `scd-check` counterexamples,
//! post-mortems — can locate the fault without parsing prose.

use scd_mem::LineState;

use crate::config::{MachineConfig, ProtocolKind};
use crate::machine::{ClusterView, Machine};

/// One invariant violation, locating the fault when known.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The offending cluster, when the invariant is about one cluster.
    pub cluster: Option<usize>,
    /// The offending block address, when the invariant is about one block.
    pub block: Option<u64>,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl Violation {
    fn for_cluster(cluster: usize, detail: String) -> Self {
        Violation {
            cluster: Some(cluster),
            block: None,
            detail,
        }
    }

    fn for_block(block: u64, detail: String) -> Self {
        Violation {
            cluster: None,
            block: Some(block),
            detail,
        }
    }

    fn locate(cluster: usize, block: u64, detail: String) -> Self {
        Violation {
            cluster: Some(cluster),
            block: Some(block),
            detail,
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.cluster, self.block) {
            (Some(c), Some(b)) => write!(f, "cluster {c}, block {b}: {}", self.detail),
            (Some(c), None) => write!(f, "cluster {c}: {}", self.detail),
            (None, Some(b)) => write!(f, "block {b}: {}", self.detail),
            (None, None) => f.write_str(&self.detail),
        }
    }
}

impl std::error::Error for Violation {}

/// Machine-wide residency: block -> (dirty holders, all holders).
fn residency(
    views: &[ClusterView<'_>],
) -> std::collections::HashMap<u64, (Vec<usize>, Vec<usize>)> {
    let mut map: std::collections::HashMap<u64, (Vec<usize>, Vec<usize>)> =
        std::collections::HashMap::new();
    for (cl, view) in views.iter().enumerate() {
        for (&block, &state) in &view.resident {
            let e = map.entry(block).or_default();
            if state == LineState::Dirty {
                e.0.push(cl);
            }
            e.1.push(cl);
        }
    }
    map
}

/// Blocks in deterministic reporting order, independent of hash-map
/// iteration.
fn sorted_blocks(
    residency: &std::collections::HashMap<u64, (Vec<usize>, Vec<usize>)>,
) -> Vec<u64> {
    let mut blocks: Vec<u64> = residency.keys().copied().collect();
    blocks.sort_unstable();
    blocks
}

/// Verifies the quiescent invariants; returns the first violation found.
pub fn verify_quiescent(machine: &Machine) -> Result<(), Violation> {
    let (cfg, views) = machine.checker_view();
    verify_views(cfg, &views)
}

/// The quiescent check over an explicit set of cluster views — the shard
/// coordinator composes one view per cluster from that cluster's owning
/// worker, so the machine-wide invariants are checked across shards.
pub(crate) fn verify_views(
    cfg: &MachineConfig,
    views: &[ClusterView<'_>],
) -> Result<(), Violation> {
    for (cl, view) in views.iter().enumerate() {
        if view.node.ser.busy_blocks() != 0 {
            return Err(Violation::for_cluster(
                cl,
                format!(
                    "still has {} busy blocks after quiesce",
                    view.node.ser.busy_blocks()
                ),
            ));
        }
    }
    match cfg.protocol {
        ProtocolKind::Dash => verify_dash_views(cfg, views),
        ProtocolKind::Tardis => {
            verify_empty_directory(views)?;
            verify_tardis_views(cfg, views)
        }
        ProtocolKind::Dls => {
            verify_empty_directory(views)?;
            verify_dls_views(cfg, views, true)
        }
    }
}

/// Verifies the every-state invariants — the subset of each protocol's
/// contract that holds at *every* reachable state, transients included.
/// Safe to call at any point during a run or exploration.
pub fn verify_step(machine: &Machine) -> Result<(), Violation> {
    let (cfg, views) = machine.checker_view();
    match cfg.protocol {
        ProtocolKind::Dash => verify_dash_step(&views),
        ProtocolKind::Tardis => verify_tardis_views(cfg, &views),
        ProtocolKind::Dls => verify_dls_views(cfg, &views, false),
    }
}

/// Directoryless protocols must keep the directory that way: Tardis
/// replaces it with timestamps, DLS with the absence of remote copies.
fn verify_empty_directory(views: &[ClusterView<'_>]) -> Result<(), Violation> {
    for (cl, view) in views.iter().enumerate() {
        let live = view.node.dir.live_entries();
        if live != 0 {
            return Err(Violation::for_cluster(
                cl,
                format!("directory holds {live} entries under a directoryless protocol"),
            ));
        }
    }
    Ok(())
}

/// DASH quiescent invariants (see the module docs).
fn verify_dash_views(
    cfg: &MachineConfig,
    views: &[ClusterView<'_>],
) -> Result<(), Violation> {
    let residency = residency(views);
    for block in sorted_blocks(&residency) {
        let (dirty, holders) = &residency[&block];
        if dirty.len() > 1 {
            return Err(Violation::for_block(
                block,
                format!("multiple dirty holders {dirty:?}"),
            ));
        }
        let home = cfg.home_of(block);
        // The directory is keyed by the home-local block index.
        let entry = views[home].node.dir.probe(block / cfg.clusters as u64);

        if let Some(e) = entry {
            // Precise representations never record the home cluster; a
            // coarse region / composite / broadcast superset may *cover* it
            // incidentally, which is fine (the home strips itself from
            // invalidation targets).
            if e.is_precise() && e.covers(home as u16) {
                return Err(Violation::locate(
                    home,
                    block,
                    format!("home cluster {home} recorded in its own directory"),
                ));
            }
        }

        if let Some(&owner) = dirty.first() {
            if owner != home {
                match entry {
                    None => {
                        return Err(Violation::locate(
                            owner,
                            block,
                            format!("cluster {owner} dirty but home {home} has no entry"),
                        ));
                    }
                    Some(e) => {
                        if !e.is_dirty() || e.owner() != Some(owner as u16) {
                            return Err(Violation::locate(
                                owner,
                                block,
                                format!(
                                    "cluster {owner} dirty but entry says {:?}/{:?}",
                                    e.state(),
                                    e.owner()
                                ),
                            ));
                        }
                    }
                }
            }
        }

        for &h in holders.iter() {
            if h == home {
                continue; // home copies are bus-tracked, not directory-tracked
            }
            match entry {
                None => {
                    return Err(Violation::locate(
                        h,
                        block,
                        format!("cluster {h} holds a copy but home {home} has no entry"),
                    ));
                }
                Some(e) => {
                    if !e.covers(h as u16) {
                        return Err(Violation::locate(
                            h,
                            block,
                            format!(
                                "cluster {h} holds a copy not covered by the entry \
                                 (superset {:?})",
                                e.sharer_superset()
                            ),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// DASH every-state invariants: at most one dirty holder per block, and
/// a dirty copy is exclusive (no other cluster caches the block at all).
fn verify_dash_step(views: &[ClusterView<'_>]) -> Result<(), Violation> {
    let residency = residency(views);
    for block in sorted_blocks(&residency) {
        let (dirty, holders) = &residency[&block];
        if dirty.len() > 1 {
            return Err(Violation::for_block(
                block,
                format!("multiple dirty holders {dirty:?}"),
            ));
        }
        if let Some(&owner) = dirty.first() {
            if holders.len() > 1 {
                let others: Vec<usize> =
                    holders.iter().copied().filter(|&h| h != owner).collect();
                return Err(Violation::locate(
                    owner,
                    block,
                    format!(
                        "cluster {owner} holds the block dirty while clusters {others:?} \
                         still hold copies (dirty implies exclusive)"
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Tardis invariants — temporal single-writer, valid at every reachable
/// state (writes only ever *raise* the home's `wts` past every granted
/// lease horizon, so there is no transient window to excuse):
///
/// 1. No line is ever dirty: Tardis writes through to the home.
/// 2. Every resident copy carries a lease, and its home timestamp line
///    satisfies `rts >= wts`.
/// 3. A lease's version never leads the home (`lease.wts <= home.wts`),
///    and a lease over a *superseded* version is already expired:
///    `lease.wts < home.wts` implies `home.wts > lease.rts`. A write
///    that bumps `wts` without jumping past the granted read horizon
///    (the seeded `TardisSkipWtsBump` bug) leaves a live lease on the
///    stale version and trips this check.
fn verify_tardis_views(
    cfg: &MachineConfig,
    views: &[ClusterView<'_>],
) -> Result<(), Violation> {
    for (cl, view) in views.iter().enumerate() {
        let mut blocks: Vec<u64> = view.resident.keys().copied().collect();
        blocks.sort_unstable();
        for block in blocks {
            if view.resident[&block] == LineState::Dirty {
                return Err(Violation::locate(
                    cl,
                    block,
                    "dirty line under Tardis (writes must write through)".to_string(),
                ));
            }
            let Some(&(lwts, lrts)) = view.node.tardis.lease.get(&block) else {
                return Err(Violation::locate(
                    cl,
                    block,
                    "resident copy without a lease".to_string(),
                ));
            };
            let home = cfg.home_of(block);
            let Some(line) = views[home].node.tardis.lines.get(&block) else {
                return Err(Violation::locate(
                    cl,
                    block,
                    format!("lease ({lwts},{lrts}) but home {home} has no timestamp line"),
                ));
            };
            if line.rts < line.wts {
                return Err(Violation::locate(
                    home,
                    block,
                    format!("home timestamps inverted (wts {} > rts {})", line.wts, line.rts),
                ));
            }
            if lwts > line.wts {
                return Err(Violation::locate(
                    cl,
                    block,
                    format!("lease version {lwts} leads the home's wts {}", line.wts),
                ));
            }
            if lwts < line.wts && line.wts <= lrts {
                return Err(Violation::locate(
                    cl,
                    block,
                    format!(
                        "live lease ({lwts},{lrts}) over a superseded version \
                         (home wts {}): two writers share a timestamp range",
                        line.wts
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// DLS invariants: no non-home cluster ever holds a copy, and (at
/// quiescence only — a granted write's fill may still be in flight
/// mid-run) a home-resident copy carries the block's current version.
fn verify_dls_views(
    cfg: &MachineConfig,
    views: &[ClusterView<'_>],
    quiescent: bool,
) -> Result<(), Violation> {
    for (cl, view) in views.iter().enumerate() {
        let mut blocks: Vec<u64> = view.resident.keys().copied().collect();
        blocks.sort_unstable();
        for block in blocks {
            let home = cfg.home_of(block);
            if home != cl {
                return Err(Violation::locate(
                    cl,
                    block,
                    format!("non-home copy under DLS (home is cluster {home})"),
                ));
            }
            if quiescent {
                let cur = view.node.cur_version.get(&block).copied().unwrap_or(0);
                let line = view.node.line_version.get(&block).copied().unwrap_or(0);
                if line != cur {
                    return Err(Violation::locate(
                        cl,
                        block,
                        format!(
                            "home copy at version {line} but the slice is at {cur} \
                             (a remote write missed the home invalidation)"
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}
