//! The DASH machine: clusters, directories, interconnect, and the
//! event-driven protocol engine.
//!
//! ## Protocol summary (paper §2)
//!
//! *Read*: local cluster → home. Clean/shared at home: home replies. Dirty:
//! home forwards to the owner, which replies to the requester and sends a
//! sharing writeback to the home.
//!
//! *Write*: local cluster → home. Home sends invalidations to (a superset
//! of) the sharers and an ownership reply carrying the invalidation count;
//! each invalidated cluster acknowledges directly to the requester; the
//! write completes when all acknowledgements are in. Dirty at a third
//! cluster: home forwards; the owner transfers ownership directly.
//!
//! ## Modeling conventions
//!
//! * Directory state is per *cluster*; the home cluster's own copies are
//!   never recorded — they are kept coherent by the home bus snoop during
//!   home processing, exactly as in DASH (this is also why sparse
//!   directories hold no entries for cluster-local data, §4.2).
//! * Message channels between a fixed (src, dst) pair are FIFO (latencies
//!   are deterministic per pair and ties break in scheduling order) and the
//!   mesh latency model satisfies the triangle inequality strictly, so
//!   replies can never be overtaken by later invalidations. To keep that
//!   property across *successively processed* home transactions, every
//!   home emission (reply, forward, invalidation, flush) leaves at the
//!   same `bus_memory` offset from its transaction's processing time.
//! * Conflicting home transactions queue per block instead of NAK/retry
//!   (see `scd-protocol::serializer`).

use std::collections::HashMap;

use scd_core::{DirState, EntryAccess, NodeId, NodeSet};
use scd_mem::{CacheHierarchy, ClusterCaches, HitLevel, LineState};
use scd_noc::{FaultPlan, Network};
use scd_protocol::{
    BarrierManager, BusyReason, EarlyKind, HomeSerializer, LockManager, LockOutcome, Msg,
    MsgArena, MsgKind, MsgRef, Rac, UnlockOutcome,
};
use scd_protocol::rac::{MshrKind, StartOutcome};
use scd_sim::{Cycle, EventQueue, RingLog, SimRng, Stamp};
use scd_stats::{Histogram, MessageClass, Traffic};
use scd_tango::{Op, ThreadProgram};
use scd_trace::{
    AttribClass, AttribParams, Attribution, EventKind, IntervalSnapshot, Json, MetricsRegistry,
    Phase, TraceConfig, TraceEvent, Tracer, TxnTimeline,
};

use crate::config::{MachineConfig, ProtocolKind};
use crate::error::{BlockedProc, ClusterDiag, PostMortem, SimError};
use crate::stats::{
    DlsCounters, FaultCounters, ProtocolCounters, RunStats, StallBreakdown, TardisCounters,
};

mod dash;
mod dls;
pub mod explore;
mod oracle;
pub(crate) mod protocol;
pub mod shard;
mod tardis;

pub use oracle::ValueOracleReport;

/// Simulator events. The hot variant, `Deliver`, carries an 8-byte
/// [`MsgRef`] into the message arena rather than the ~40-byte [`Msg`]
/// itself, so the event queue's ring buckets shuffle two words per event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ev {
    /// Processor fetches and executes its next operation.
    ProcNext(usize),
    /// Processor re-executes its pending operation (e.g. after a merged
    /// transaction completed with insufficient rights).
    ProcRetry(usize),
    /// A protocol message reaches its destination cluster (payload parked
    /// in the machine's [`MsgArena`]).
    Deliver(MsgRef),
    /// The home directory replays one parked request for `block` (requests
    /// that queued behind an in-flight transaction re-occupy the directory
    /// one at a time, `dir_lookup` apart).
    Replay {
        /// The home cluster.
        home: usize,
        /// The block whose queue is draining.
        block: u64,
    },
}

/// The event-log mirror of [`Ev`]: identical variants, but `Deliver`
/// carries the resolved [`Msg`] so post-mortem rendering never chases a
/// handle into an arena slot that was freed (and possibly reused) long
/// after the event was logged.
#[derive(Clone, Copy, Debug)]
enum EvLog {
    /// See [`Ev::ProcNext`].
    ProcNext(usize),
    /// See [`Ev::ProcRetry`].
    ProcRetry(usize),
    /// See [`Ev::Deliver`] — payload resolved at pop time.
    Deliver(Msg),
    /// See [`Ev::Replay`].
    Replay {
        /// The home cluster.
        home: usize,
        /// The block whose queue is draining.
        block: u64,
    },
}

/// Per-cluster lock bookkeeping: which local processor holds the lock,
/// which are queued behind it, and whether the cluster has a request
/// outstanding at the lock's home.
#[derive(Clone, Debug, Default)]
pub(crate) struct ClusterLock {
    holder: Option<usize>,
    waiters: std::collections::VecDeque<usize>,
    requested: bool,
}

/// One processing node.
#[derive(Clone)]
pub(crate) struct ClusterNode {
    pub(crate) caches: ClusterCaches,
    pub(crate) dir: scd_core::DirectoryStore,
    pub(crate) rac: Rac,
    pub(crate) ser: HomeSerializer,
    pub(crate) locks: LockManager,
    pub(crate) barriers: BarrierManager,
    pub(crate) lock_state: HashMap<u32, ClusterLock>,
    pub(crate) barrier_local: HashMap<u32, Vec<usize>>,
    /// In-progress serial invalidation chains (SCI-style mode): remaining
    /// targets, the write requester awaiting the final reply, and the
    /// version the write creates.
    pub(crate) serial_chains: HashMap<u64, (std::collections::VecDeque<usize>, usize, u64)>,
    /// Version oracle: latest version the home has assigned per block.
    pub(crate) cur_version: HashMap<u64, u64>,
    /// Version oracle: version of this cluster's resident copy per block
    /// (meaningful only while a copy is held; refreshed on every fill).
    pub(crate) line_version: HashMap<u64, u64>,
    /// The last ownership-epoch version this cluster *completed* (filled
    /// dirty) per block. A forward stamped with this epoch refers to data
    /// we have (possibly downgraded since); a forward stamped newer refers
    /// to our still-pending grant and must wait for it.
    pub(crate) last_owner_epoch: HashMap<u64, u64>,
    /// Home-side: blocks with an in-flight `FwdWrite`, whose version bump
    /// makes `cur_version` one ahead of the *recorded* owner's epoch.
    pub(crate) pending_write_bump: std::collections::HashSet<u64>,
    /// Tardis timestamp state (default-empty under the other protocols).
    pub(crate) tardis: tardis::TardisNode,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ProcStatus {
    Running,
    Blocked,
    Done,
}

struct ProcState {
    program: Box<dyn ThreadProgram>,
    pending: Option<Op>,
    status: ProcStatus,
    /// When the current block began, and whether it is a sync stall.
    blocked_since: Cycle,
    blocked_on_sync: bool,
    mem_stall: u64,
    sync_stall: u64,
    finish: Cycle,
}

impl Clone for ProcState {
    /// Clones via [`ThreadProgram::fork`] — the one field a derive cannot
    /// copy. This is what lets a whole [`Machine`] be cloned for
    /// exploration branching.
    fn clone(&self) -> Self {
        ProcState {
            program: self.program.fork(),
            pending: self.pending,
            status: self.status,
            blocked_since: self.blocked_since,
            blocked_on_sync: self.blocked_on_sync,
            mem_stall: self.mem_stall,
            sync_stall: self.sync_stall,
            finish: self.finish,
        }
    }
}

/// Result of the home directory's decision for one request (plain data, so
/// the caller can send messages without fighting the borrow checker).
enum DirAction {
    Stalled { blocker: u64 },
    SelfOwned,
    Forward { owner: usize },
    Supply { nb_evict: Option<usize> },
    Grant { inval_targets: NodeSet },
}

struct ReplacementWork {
    victim_key: u64,
    targets: NodeSet,
    /// The victim entry's recorded dirty owner, if any.
    dirty_owner: Option<usize>,
}

/// One in-flight traced coherence transaction. Keyed by (requester
/// cluster, block), which is unique because the RAC holds one MSHR per
/// cluster/block pair; merged waiters join the existing transaction.
#[derive(Clone)]
struct TxnLive {
    id: u64,
    issue: Cycle,
    write: bool,
    home_lookup: Option<Cycle>,
    fanout: Option<Cycle>,
    retries: u32,
}

/// Home-side view of a live traced transaction, keyed like [`TxnLive`]
/// by (requester cluster, block). The home consults this — never the
/// requester's `txn_live` map, which may live on another shard — when it
/// records `HomeLookup`/`Fanout` phases; the flags make each phase
/// set-once per transaction id.
#[derive(Clone, Copy)]
struct PhaseSlot {
    id: u64,
    issue: Cycle,
    hl_done: bool,
    fo_done: bool,
}

/// Cross-shard telemetry notes exchanged at window barriers. Notes ride
/// the barrier, not the simulated network: they carry trace metadata whose
/// happens-before edges (a home services a request at least one network
/// leg after it was issued; a requester completes at least one leg after
/// the home's phase) guarantee the note is applied before any event that
/// reads it. Within one shard, notes are applied immediately.
#[derive(Clone, Copy, Debug)]
pub(crate) enum TxnNote {
    /// Requester → home: a traced transaction began.
    Begin {
        /// Requester cluster (keys the home's phase slot).
        requester: usize,
        /// The block.
        block: u64,
        /// The transaction id (cluster-encoded, see `trace_txn_begin`).
        id: u64,
        /// The issue cycle.
        issue: Cycle,
    },
    /// Home → requester: a lifecycle phase was recorded at the home.
    Phase {
        /// Requester cluster.
        requester: usize,
        /// The block.
        block: u64,
        /// The transaction id the home recorded the phase under.
        id: u64,
        /// Which phase.
        phase: Phase,
        /// When the home recorded it.
        at: Cycle,
    },
}

/// A delivery bound for a cluster another shard owns: exported at the end
/// of the window and merged into the destination shard's wheel at the
/// barrier, carrying the canonical stamp drawn at the (source-side) send.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Outbound {
    pub(crate) deliver_at: Cycle,
    pub(crate) stamp: Stamp,
    pub(crate) msg: Msg,
}

/// One shard's contribution to one interval boundary `end`: the per-window
/// counter deltas its clusters produced plus its share of the occupancy
/// sample. The coordinator sums pieces across shards into the exact
/// [`IntervalSnapshot`] a solo run would have produced, and the
/// attribution deltas into the streamed `attrib_delta` record.
#[derive(Clone, Debug)]
pub(crate) struct IntervalPiece {
    pub(crate) snap: IntervalSnapshot,
    /// Per-class attribution counter deltas over the window (all zero when
    /// attribution is off).
    pub(crate) attrib_delta: [scd_trace::ClassCounters; AttribClass::ALL.len()],
    /// Per-link flit deltas over the window (empty when attribution is
    /// off).
    pub(crate) link_delta: Vec<((usize, usize), u64)>,
}

/// Counter baselines at the last interval boundary, so each
/// [`IntervalSnapshot`] reports per-window deltas.
#[derive(Clone, Default)]
struct IntervalBase {
    messages: u64,
    retries: u64,
    nacks: u64,
    ops: u64,
}

/// A recorded event waiting for the stream watermark to pass it.
/// Ordered by the canonical `(cycle, cluster, per-cluster seq)` trace
/// order — *reversed*, so [`std::collections::BinaryHeap`] (a max-heap)
/// pops the earliest event first.
struct PendingEvent(TraceEvent);

impl PendingEvent {
    fn key(&self) -> (u64, u32, u64) {
        (self.0.cycle, self.0.cluster, self.0.seq)
    }
}

impl PartialEq for PendingEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for PendingEvent {}
impl PartialOrd for PendingEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key().cmp(&self.key())
    }
}

/// Live-streaming state: the attached sink plus the watermark reorder
/// buffer that reproduces the post-hoc `(cycle, seq)` merge order online.
///
/// Events may be recorded with *future* cycle stamps (never past ones),
/// so an event is only safe to emit once the simulation clock has moved
/// strictly past its cycle — everything still unrecorded will sort after
/// it. The pending heap holds recorded-but-not-yet-safe events.
struct StreamState {
    /// The attached sink (`None` = streaming off; the inert default).
    sink: Option<Box<dyn scd_trace::TraceSink>>,
    /// Pre-computed `sink.is_some()`, checked once per event like
    /// `trace_active`/`fault_active`.
    on: bool,
    /// Recorded events the watermark has not passed yet.
    pending: std::collections::BinaryHeap<PendingEvent>,
    /// Events emitted so far: each emitted line's `seq` is renumbered to
    /// its 1-based position in the canonical emission order, matching what
    /// `Tracer::merged` assigns post-hoc.
    emitted: u64,
    /// Per-class attribution counters at the last emitted delta.
    attrib_base: [scd_trace::ClassCounters; scd_trace::AttribClass::ALL.len()],
    /// Per-link flit counters at the last emitted delta.
    link_base: HashMap<(usize, usize), u64>,
}

impl StreamState {
    fn inert() -> Self {
        StreamState {
            sink: None,
            on: false,
            pending: std::collections::BinaryHeap::new(),
            emitted: 0,
            attrib_base: Default::default(),
            link_base: HashMap::new(),
        }
    }
}

/// Cloning a machine detaches the stream: exploration branches share one
/// history up to the fork, and two writers interleaving into one sink
/// would corrupt both orderings. The clone is inert (like a machine that
/// never attached a sink); re-attach explicitly to stream from it.
impl Clone for StreamState {
    fn clone(&self) -> Self {
        StreamState::inert()
    }
}

/// Directory-observatory occupancy telemetry, only fed when
/// `TraceConfig::patterns` is on (`patterns_active`). Everything here is
/// read-only against the protocol: counters and sampled histograms.
#[derive(Clone, Debug, Default)]
struct Observatory {
    /// Interval boundaries at which the live-entry scan ran.
    samples: u64,
    /// Aggregated sharer-count histogram over live entries at sample
    /// points: `sharers[k]` = entry observations with a k-cluster
    /// superset (index capped at the machine size).
    sharers: Vec<u64>,
    /// Write fan-outs observed (Grant-path invalidation decisions).
    fanout_events: u64,
    /// Fan-outs whose entry representation was still precise.
    fanout_precise: u64,
    /// Fan-outs sent from a broadcast-mode entry.
    fanout_broadcast: u64,
    /// Invalidation targets across all fan-outs.
    fanout_targets: u64,
    /// Targets that actually held the block (superset overshoot is
    /// `targets - present`).
    fanout_present: u64,
    /// Fan-outs from a coarse-vector entry.
    coarse_events: u64,
    /// Region bits set across coarse fan-outs.
    coarse_regions: u64,
    /// Clusters covered by those region bits (targets).
    coarse_covered: u64,
    /// Covered clusters that actually held the block.
    coarse_present: u64,
}

/// Per-cluster snapshot handed to the invariant checker: resident blocks
/// with their highest state, plus the full cluster node so each
/// protocol's checker can read its own state (directory and serializer
/// for DASH, timestamp lines and leases for Tardis, version counters
/// for the directoryless LLC).
pub(crate) struct ClusterView<'a> {
    pub(crate) resident: std::collections::HashMap<u64, LineState>,
    pub(crate) node: &'a ClusterNode,
}

/// A configured DASH machine ready to run a workload.
///
/// `Clone` produces an independent machine mid-run (thread programs are
/// forked at their current position) — the substrate of the model
/// checker's state branching; see [`explore`](crate::machine::explore).
#[derive(Clone)]
pub struct Machine {
    cfg: MachineConfig,
    queue: EventQueue<Ev>,
    /// Slab of in-flight message payloads; `Ev::Deliver` holds handles.
    arena: MsgArena,
    clusters: Vec<ClusterNode>,
    network: Network,
    traffic: Traffic,
    inval_hist: Histogram,
    procs: Vec<ProcState>,
    running: usize,
    finish_time: Cycle,
    shared_reads: u64,
    shared_writes: u64,
    sync_ops: u64,
    counters: ProtocolCounters,
    /// Tardis-specific counters (zero under the other protocols).
    tardis_counters: TardisCounters,
    /// DLS-specific counters (zero under the other protocols).
    dls_counters: DlsCounters,
    /// Value oracle for cross-protocol differential comparison (inert
    /// unless `cfg.value_oracle`).
    oracle: oracle::ValueOracle,
    /// Version oracle: highest version each cluster has observed per block.
    observed: HashMap<(usize, u64), u64>,
    versions_assigned: u64,
    /// Resolved fault plan (inert when `cfg.fault_plan` is `None`).
    fault_plan: FaultPlan,
    /// Pre-computed `fault_plan.is_active()`: an inert plan must cost
    /// nothing and never consume randomness, so every hook gates on this.
    fault_active: bool,
    /// Per-directed-channel fault streams, keyed `(src, dst)` and derived
    /// lazily as a pure function of the master seed. Send-side draws
    /// (reorder/delay/dup) and deliver-side draws (nack injection) use
    /// separate streams so each is consumed in its own channel-local order
    /// — which makes fault placement a function of per-channel traffic
    /// history alone, identical for any shard count.
    fault_send_rng: HashMap<(usize, usize), SimRng>,
    fault_nack_rng: HashMap<(usize, usize), SimRng>,
    faults: FaultCounters,
    /// Latest scheduled request-class delivery per (src, dst), so injected
    /// latency spikes keep each channel FIFO.
    chan_clamp: HashMap<(usize, usize), Cycle>,
    /// Cycle of the last retired operation (forward-progress watchdog).
    last_progress: Cycle,
    /// Recently processed events, kept for failure post-mortems.
    event_log: RingLog<(Cycle, EvLog)>,
    /// Resolved trace configuration (inert when `cfg.trace` is `None`).
    trace_cfg: TraceConfig,
    /// Pre-computed `trace_cfg.is_active()`: like `fault_active`, an inert
    /// trace must cost nothing, so every hook gates on this bool.
    trace_active: bool,
    /// Per-cluster bounded event rings (inert when tracing is off).
    tracer: Tracer,
    /// Phase-latency histograms and interval snapshots (only fed when
    /// `trace_cfg.metrics`).
    metrics: MetricsRegistry,
    /// Pre-computed `trace_cfg.attribution`: gates the byte/flit and
    /// per-link accounting in `send` (inert and free when off).
    attrib_active: bool,
    /// Per-class traffic attribution (only fed when `attrib_active`).
    attrib: Attribution,
    /// Pre-computed `trace_cfg.patterns`: gates `inval` event recording
    /// and the directory-occupancy sampling (inert and free when off).
    patterns_active: bool,
    /// Directory-occupancy telemetry (only fed when `patterns_active`).
    obs: Observatory,
    /// Live traced transactions, keyed by (requester cluster, block).
    /// Requester-side state, touched only while processing events of the
    /// requester's own cluster.
    txn_live: HashMap<(usize, u64), TxnLive>,
    /// Home-side phase slots, keyed by (requester cluster, block) and fed
    /// by `TxnNote::Begin`. Touched only while processing home events.
    txn_phase: HashMap<(usize, u64), PhaseSlot>,
    /// Per-requester-cluster transaction id counters. Ids encode the
    /// cluster in the high bits so each cluster hands them out locally —
    /// no global counter to race on across shards.
    txn_seq: Vec<u64>,
    /// Next interval-snapshot boundary (0 when sampling is off).
    interval_next: Cycle,
    /// Start cycle of the current interval window.
    interval_start: Cycle,
    /// Counter baselines at the last interval boundary.
    interval_base: IntervalBase,
    /// Armed test-only protocol mutation (see [`explore::Mutation`]); used
    /// to validate that the model checker actually catches protocol bugs.
    mutation: Option<explore::Mutation>,
    /// Live telemetry stream (inert until [`Machine::attach_stream`];
    /// detached again by `Clone`).
    stream: StreamState,
    /// First cluster this machine owns. A solo machine owns `[0, clusters)`;
    /// a shard owns a contiguous sub-range and exports everything else.
    shard_base: usize,
    /// Number of clusters this machine owns.
    shard_count: usize,
    /// Pre-computed `shard_count == cfg.clusters`: gates the per-event
    /// watchdog/limit checks and stream pumping that the shard coordinator
    /// takes over in a sharded run.
    solo: bool,
    /// Per-cluster canonical-stamp counters: every scheduled event is
    /// stamped `(cluster, emit_seq[cluster]++)` from the cluster context
    /// that emitted it, making same-cycle delivery order a pure function
    /// of per-cluster local history (identical for any shard count).
    emit_seq: Vec<u64>,
    /// Deliveries bound for clusters other shards own, drained at window
    /// barriers.
    outbox: Vec<Outbound>,
    /// Cross-shard telemetry notes, drained at window barriers.
    note_outbox: Vec<TxnNote>,
    /// End of the current conservative window (exclusive); used to check
    /// the lookahead invariant on exported deliveries. `u64::MAX` in solo
    /// mode.
    window_end: Cycle,
    /// Interval-boundary pieces for the coordinator (non-solo runs only).
    interval_pieces: Vec<IntervalPiece>,
    /// Attribution baselines for piece deltas (non-solo runs only).
    piece_attrib_base: [scd_trace::ClassCounters; AttribClass::ALL.len()],
    piece_link_base: HashMap<(usize, usize), u64>,
}

impl Machine {
    /// Builds a machine and attaches one [`ThreadProgram`] per processor.
    ///
    /// # Panics
    /// If the number of programs does not match `cfg.processors()`.
    pub fn new(cfg: MachineConfig, programs: Vec<Box<dyn ThreadProgram>>) -> Self {
        let clusters = cfg.clusters;
        Self::new_shard(cfg, programs, 0, clusters)
    }

    /// Builds one shard of a machine: it owns clusters
    /// `[shard_base, shard_base + shard_count)` and their processors. The
    /// full-size cluster/processor tables are still allocated (so every
    /// index site works unchanged), but non-owned processors are inert
    /// stubs marked `Done`, `start` seeds only owned processors, and
    /// deliveries addressed to non-owned clusters are exported through the
    /// outbox instead of being scheduled locally. A solo machine is simply
    /// the shard that owns everything.
    pub(crate) fn new_shard(
        cfg: MachineConfig,
        programs: Vec<Box<dyn ThreadProgram>>,
        shard_base: usize,
        shard_count: usize,
    ) -> Self {
        assert_eq!(
            programs.len(),
            cfg.processors(),
            "need one program per processor"
        );
        assert!(
            shard_base + shard_count <= cfg.clusters && shard_count > 0,
            "shard range out of bounds"
        );
        let clusters: Vec<ClusterNode> = (0..cfg.clusters)
            .map(|c| ClusterNode {
                caches: ClusterCaches::new(cfg.procs_per_cluster, || {
                    CacheHierarchy::new(cfg.l1_blocks, cfg.l1_ways, cfg.l2_blocks, cfg.l2_ways)
                }),
                dir: scd_core::DirectoryStore::new(
                    cfg.scheme,
                    cfg.clusters,
                    cfg.organization.clone(),
                    cfg.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                rac: Rac::new(),
                ser: HomeSerializer::new(),
                locks: LockManager::new(cfg.scheme, cfg.clusters),
                barriers: BarrierManager::new(),
                lock_state: HashMap::new(),
                barrier_local: HashMap::new(),
                serial_chains: HashMap::new(),
                cur_version: HashMap::new(),
                line_version: HashMap::new(),
                last_owner_epoch: HashMap::new(),
                pending_write_bump: std::collections::HashSet::new(),
                tardis: tardis::TardisNode::default(),
            })
            .collect();
        let mut network = Network::new(cfg.clusters, cfg.latency);
        if let Some(occ) = cfg.link_occupancy {
            network = network.with_contention(occ);
        }
        let owned = shard_base..shard_base + shard_count;
        let procs = programs
            .into_iter()
            .enumerate()
            .map(|(p, program)| {
                let mine = owned.contains(&(p / cfg.procs_per_cluster));
                ProcState {
                    program,
                    pending: None,
                    // Non-owned processors live on another shard; marking
                    // them Done keeps every index site valid while this
                    // shard never runs them.
                    status: if mine {
                        ProcStatus::Running
                    } else {
                        ProcStatus::Done
                    },
                    blocked_since: 0,
                    blocked_on_sync: false,
                    mem_stall: 0,
                    sync_stall: 0,
                    finish: 0,
                }
            })
            .collect::<Vec<_>>();
        let running = shard_count * cfg.procs_per_cluster;
        let fault_plan = cfg.fault_plan.unwrap_or_default();
        let event_log = RingLog::new(cfg.event_log);
        let trace_cfg = cfg.trace.unwrap_or_else(TraceConfig::none);
        let trace_active = trace_cfg.is_active();
        let tracer = if trace_active {
            Tracer::new(cfg.clusters, &trace_cfg)
        } else {
            Tracer::inert()
        };
        if trace_cfg.attribution {
            network.enable_link_counters();
        }
        let mut clusters = clusters;
        if trace_cfg.patterns {
            // Churn tracking rides the patterns flag: the sparse
            // organizations start counting victim re-references from
            // cycle 0 (no-op for complete/overflow backings).
            for c in &mut clusters {
                c.dir.enable_churn_tracking();
            }
        }
        Machine {
            queue: EventQueue::new(),
            arena: MsgArena::new(),
            clusters,
            network,
            traffic: Traffic::new(),
            inval_hist: Histogram::new(),
            procs,
            running,
            finish_time: 0,
            shared_reads: 0,
            shared_writes: 0,
            sync_ops: 0,
            counters: ProtocolCounters::default(),
            tardis_counters: TardisCounters::default(),
            dls_counters: DlsCounters::default(),
            oracle: oracle::ValueOracle::new(cfg.value_oracle, cfg.processors()),
            observed: HashMap::new(),
            versions_assigned: 0,
            fault_active: fault_plan.is_active(),
            fault_plan,
            fault_send_rng: HashMap::new(),
            fault_nack_rng: HashMap::new(),
            faults: FaultCounters::default(),
            chan_clamp: HashMap::new(),
            last_progress: 0,
            event_log,
            interval_next: trace_cfg.interval,
            interval_start: 0,
            interval_base: IntervalBase::default(),
            attrib_active: trace_cfg.attribution,
            attrib: Attribution::new(AttribParams::with_block_bytes(cfg.block_bytes)),
            patterns_active: trace_cfg.patterns,
            obs: Observatory {
                sharers: vec![0; cfg.clusters + 1],
                ..Observatory::default()
            },
            trace_cfg,
            trace_active,
            tracer,
            metrics: MetricsRegistry::new(),
            txn_live: HashMap::new(),
            txn_phase: HashMap::new(),
            txn_seq: vec![0; cfg.clusters],
            mutation: None,
            stream: StreamState::inert(),
            shard_base,
            shard_count,
            solo: shard_count == cfg.clusters,
            emit_seq: vec![0; cfg.clusters],
            outbox: Vec::new(),
            note_outbox: Vec::new(),
            window_end: Cycle::MAX,
            interval_pieces: Vec::new(),
            piece_attrib_base: Default::default(),
            piece_link_base: HashMap::new(),
            cfg,
        }
    }

    /// Whether this machine owns `cluster` (always true for a solo
    /// machine).
    #[inline]
    fn owns(&self, cluster: usize) -> bool {
        cluster.wrapping_sub(self.shard_base) < self.shard_count
    }

    /// Draws the next canonical stamp from `cluster`'s emission counter.
    /// Every schedule site stamps from the cluster context doing the
    /// emitting, which is always the cluster whose event is currently
    /// being processed — so counters are only ever bumped by the owning
    /// shard, in an order that is pure local history.
    #[inline]
    fn stamp(&mut self, cluster: usize) -> Stamp {
        let k = self.emit_seq[cluster];
        self.emit_seq[cluster] = k + 1;
        Stamp {
            lane: cluster as u32,
            seq: k,
        }
    }

    /// Schedules a local event at `time`, stamped from `cluster`'s context.
    #[inline]
    fn sched(&mut self, cluster: usize, time: Cycle, ev: Ev) {
        let stamp = self.stamp(cluster);
        self.queue.schedule_at_stamped(time, stamp, ev);
    }

    /// Routes one finalized delivery: scheduled locally when this shard
    /// owns the destination, exported through the outbox otherwise. The
    /// stamp is drawn from the *source* cluster either way, so the
    /// destination shard inserts it exactly where a solo run would have.
    fn deliver_or_export(&mut self, deliver_at: Cycle, msg: Msg) {
        let stamp = self.stamp(msg.src);
        if self.owns(msg.dst) {
            let r = self.arena.alloc(msg);
            self.queue.schedule_at_stamped(deliver_at, stamp, Ev::Deliver(r));
        } else {
            // The conservative-window invariant: a cross-shard delivery
            // can never land inside the window that produced it.
            assert!(
                deliver_at >= self.window_end,
                "cross-shard delivery at {deliver_at} inside window ending {}",
                self.window_end
            );
            self.outbox.push(Outbound {
                deliver_at,
                stamp,
                msg,
            });
        }
    }

    /// Merges one delivery exported by another shard into the local wheel.
    pub(crate) fn import_delivery(&mut self, ob: Outbound) {
        debug_assert!(self.owns(ob.msg.dst));
        let r = self.arena.alloc(ob.msg);
        self.queue
            .schedule_at_stamped(ob.deliver_at, ob.stamp, Ev::Deliver(r));
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    fn cluster_of(&self, p: usize) -> usize {
        p / self.cfg.procs_per_cluster
    }

    fn local_of(&self, p: usize) -> usize {
        p % self.cfg.procs_per_cluster
    }

    fn global_proc(&self, cluster: usize, local: usize) -> usize {
        cluster * self.cfg.procs_per_cluster + local
    }

    /// Directory-store key for `block`: the *home-local* block index.
    ///
    /// Memory is block-interleaved round-robin across clusters, so a home's
    /// blocks are all congruent mod `clusters`; indexing the (sparse)
    /// directory with raw block numbers would alias a home's entire memory
    /// into a single set.
    fn dir_key(&self, block: u64) -> u64 {
        block / self.cfg.clusters as u64
    }

    /// Version oracle: the home hands out a fresh version for a new
    /// ownership epoch of `block`.
    fn bump_version(&mut self, home: usize, block: u64) -> u64 {
        self.versions_assigned += 1;
        let v = self.clusters[home].cur_version.entry(block).or_insert(0);
        *v += 1;
        *v
    }

    /// Version oracle: the version memory would supply for `block`.
    fn memory_version(&self, home: usize, block: u64) -> u64 {
        self.clusters[home]
            .cur_version
            .get(&block)
            .copied()
            .unwrap_or(0)
    }

    /// Version oracle: cluster `cl` installed a copy of `block` at `version`.
    fn set_line_version(&mut self, cl: usize, block: u64, version: u64) {
        self.clusters[cl].line_version.insert(block, version);
    }

    /// Version oracle: cluster `cl` observed `block` (a read or write hit /
    /// completion). Panics if the observation runs backwards — i.e. the
    /// cluster sees data older than it has already seen, the signature of a
    /// stale copy surviving an invalidation it should not have.
    fn observe(&mut self, cl: usize, block: u64) {
        if !self.cfg.track_versions {
            return;
        }
        let v = self.clusters[cl]
            .line_version
            .get(&block)
            .copied()
            .unwrap_or(0);
        let last = self.observed.entry((cl, block)).or_insert(0);
        assert!(
            v >= *last,
            "version oracle: cluster {cl} observed block {block} at version {v}              after already seeing version {last}"
        );
        *last = v;
    }

    /// Sends `msg`, accounting traffic and network latency. Intra-cluster
    /// deliveries are free and uncounted (they ride the cluster bus), and
    /// are also exempt from fault injection.
    fn send(&mut self, ready_at: Cycle, msg: Msg) {
        let lat = self.network.send(ready_at, msg.src, msg.dst);
        if msg.src != msg.dst {
            self.traffic.record(msg.kind.class());
            if self.attrib_active {
                // Read-only accounting: classifies the label under the
                // byte/flit wire model and charges the flits to every
                // link of the route. Never touches latency or ordering.
                let hops = self.network.hops(msg.src, msg.dst);
                let flits = self.attrib.record(msg.kind.label(), hops as u32);
                self.network.note_link_traffic(msg.src, msg.dst, flits);
            }
            if self.trace_active && self.tracer.messages_enabled() {
                self.tracer.record(
                    msg.src,
                    ready_at,
                    EventKind::MsgSend {
                        src: msg.src as u32,
                        dst: msg.dst as u32,
                        msg: msg.kind.label(),
                        class: msg.kind.class().label(),
                        block: msg.kind.block(),
                        hops: self.network.hops(msg.src, msg.dst) as u32,
                    },
                );
            }
            if self.fault_active {
                return self.faulty_schedule(ready_at + lat, msg);
            }
        }
        self.deliver_or_export(ready_at + lat, msg);
    }

    /// The per-channel fault stream for `(src, dst)`: a pure function of
    /// the master seed and the channel, so any shard (or a solo run)
    /// derives the identical stream. `side` separates send-side draws from
    /// deliver-side (nack) draws.
    fn channel_rng(seed: u64, src: usize, dst: usize, side: u64) -> SimRng {
        let mut x = seed ^ 0xFA17_5EED_0000_0000;
        for v in [src as u64, dst as u64, side] {
            x = (x ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 29;
        }
        SimRng::new(x)
    }

    fn send_rng(&mut self, src: usize, dst: usize) -> &mut SimRng {
        let seed = self.cfg.seed;
        self.fault_send_rng
            .entry((src, dst))
            .or_insert_with(|| Self::channel_rng(seed, src, dst, 1))
    }

    fn nack_rng(&mut self, src: usize, dst: usize) -> &mut SimRng {
        let seed = self.cfg.seed;
        self.fault_nack_rng
            .entry((src, dst))
            .or_insert_with(|| Self::channel_rng(seed, src, dst, 2))
    }

    /// Applies the fault plan to one inter-cluster delivery: latency spikes
    /// and out-of-order jitter move the delivery time, duplication
    /// schedules the message twice. Which kinds each mode may touch is
    /// dictated by the protocol's ordering assumptions (DESIGN.md, failure
    /// model): replies, invalidations and acknowledgements are never
    /// perturbed — delaying one past a newer ownership epoch would corrupt
    /// state the protocol has no recovery path for, whereas requests are
    /// absorbed by the home's serializer, SelfOwned handling, and NAKs.
    fn faulty_schedule(&mut self, nominal: Cycle, msg: Msg) {
        let plan = self.fault_plan;
        let request_class = msg.kind.class() == MessageClass::Request;
        let coherence_req = matches!(
            msg.kind,
            MsgKind::ReadReq { .. }
                | MsgKind::WriteReq { .. }
                | MsgKind::TardisReadReq { .. }
                | MsgKind::TardisWriteReq { .. }
        );
        let mut deliver_at = nominal;
        let mut clamp_exempt = false;
        if coherence_req
            && plan.reorder_window > 0
            && plan.reorder_prob > 0.0
            && self.send_rng(msg.src, msg.dst).chance(plan.reorder_prob)
        {
            // Jitter *outside* the channel clamp: the request may land
            // behind traffic sent after it, or — when a spike holds the
            // clamp high — ahead of traffic sent before it, such as its own
            // cluster's writeback.
            deliver_at += self
                .send_rng(msg.src, msg.dst)
                .range(1, plan.reorder_window + 1);
            self.faults.reorders += 1;
            clamp_exempt = true;
        } else if request_class
            && plan.delay_cycles > 0
            && plan.delay_prob > 0.0
            && self.send_rng(msg.src, msg.dst).chance(plan.delay_prob)
        {
            deliver_at += self
                .send_rng(msg.src, msg.dst)
                .range(1, plan.delay_cycles + 1);
            self.faults.delay_spikes += 1;
        }
        if request_class && !clamp_exempt {
            // A spiked request must not be overtaken by later traffic on
            // its own (FIFO) channel.
            let clamp = self.chan_clamp.entry((msg.src, msg.dst)).or_insert(0);
            deliver_at = deliver_at.max(*clamp);
            *clamp = deliver_at;
        }
        let dup_gap = if matches!(
            msg.kind,
            MsgKind::ReadReq { .. } | MsgKind::TardisReadReq { .. }
        ) && plan.dup_prob > 0.0
            && self.send_rng(msg.src, msg.dst).chance(plan.dup_prob)
        {
            // At-least-once delivery, reads only: re-servicing a read is
            // idempotent (sharer registration is superset-safe and the
            // stray reply is dropped at the RAC), while re-servicing a
            // write would record a second ownership grant. The duplicate
            // gets its own arena slot: each handle is taken exactly once.
            let hi = self.cfg.timing.bus_memory.max(1) + 1;
            let gap = self.send_rng(msg.src, msg.dst).range(1, hi);
            self.faults.duplicates += 1;
            Some(gap)
        } else {
            None
        };
        self.deliver_or_export(deliver_at, msg);
        if let Some(gap) = dup_gap {
            self.deliver_or_export(deliver_at + gap, msg);
        }
    }

    fn unblock(&mut self, at: Cycle, p: usize) {
        let st = &mut self.procs[p];
        if st.status == ProcStatus::Blocked {
            let stalled = at.saturating_sub(st.blocked_since);
            if st.blocked_on_sync {
                st.sync_stall += stalled;
            } else {
                st.mem_stall += stalled;
            }
        }
        st.status = ProcStatus::Running;
    }

    fn resume(&mut self, at: Cycle, p: usize) {
        self.unblock(at, p);
        let cl = self.cluster_of(p);
        self.sched(cl, at, Ev::ProcNext(p));
    }

    fn retry(&mut self, at: Cycle, p: usize) {
        self.unblock(at, p);
        let cl = self.cluster_of(p);
        self.sched(cl, at, Ev::ProcRetry(p));
    }

    fn block(&mut self, at: Cycle, p: usize, on_sync: bool) {
        let st = &mut self.procs[p];
        st.status = ProcStatus::Blocked;
        st.blocked_since = at;
        st.blocked_on_sync = on_sync;
    }

    // ------------------------------------------------------------------
    // Telemetry (scd-trace)
    //
    // Every hook gates on `trace_active` and only *reads* machine state:
    // tracing must never touch the event queue, any RNG stream, or any
    // timing decision, so a traced run retires the identical schedule (the
    // bit-identity contract, tested in tests/telemetry.rs).
    // ------------------------------------------------------------------

    /// A new coherence transaction issued its first request.
    fn trace_txn_begin(&mut self, t: Cycle, cl: usize, block: u64, write: bool) {
        if !self.trace_active || self.txn_live.contains_key(&(cl, block)) {
            return;
        }
        // Transaction ids are minted per requester cluster (cluster in the
        // high bits, a cluster-local sequence below) so a sharded run and
        // the serial engine assign the same id to the same transaction — a
        // single global counter would encode the interleaving of unrelated
        // clusters into every exported trace.
        self.txn_seq[cl] += 1;
        let id = ((cl as u64) << 40) | self.txn_seq[cl];
        self.txn_live.insert(
            (cl, block),
            TxnLive {
                id,
                issue: t,
                write,
                home_lookup: None,
                fanout: None,
                retries: 0,
            },
        );
        self.tracer
            .record(cl, t, EventKind::TxnBegin { txn: id, block, write });
        self.route_note(TxnNote::Begin {
            requester: cl,
            block,
            id,
            issue: t,
        });
    }

    /// The home directory first serviced the transaction (set-once:
    /// queued replays and re-entrant processing don't re-record).
    ///
    /// Phase attribution is *home-side* state ([`PhaseSlot`], fed by
    /// [`TxnNote::Begin`]): the home must decide whether a delivery belongs
    /// to the live transaction without reading the requester's `txn_live`
    /// table, which under sharding may live on another worker. The
    /// recorded timestamp travels back to the requester as a
    /// [`TxnNote::Phase`] for the end-of-transaction timeline.
    fn trace_txn_phase(
        &mut self,
        t: Cycle,
        home: usize,
        requester: usize,
        block: u64,
        phase: Phase,
    ) {
        if !self.trace_active {
            return;
        }
        let Some(slot) = self.txn_phase.get_mut(&(requester, block)) else {
            return;
        };
        // A delivery timestamped before the live transaction began is
        // predecessor traffic (a fault-duplicated or delayed request from
        // an earlier, completed transaction on the same (requester, block)
        // — observable because begins are stamped a cache-lookup ahead of
        // the pop that created them). It must not be attributed here, or
        // the exported lifecycle runs backwards.
        if t < slot.issue {
            return;
        }
        let done = match phase {
            Phase::HomeLookup => &mut slot.hl_done,
            Phase::Fanout => &mut slot.fo_done,
            _ => return,
        };
        if *done {
            return;
        }
        *done = true;
        let id = slot.id;
        self.tracer
            .record(home, t, EventKind::TxnPhase { txn: id, block, phase });
        self.route_note(TxnNote::Phase {
            requester,
            block,
            id,
            phase,
            at: t,
        });
    }

    /// Applies a telemetry note locally when its target cluster lives on
    /// this shard, otherwise queues it for the coordinator to ferry across
    /// the next window barrier. In a solo machine every note applies
    /// immediately, reproducing the old direct-update behavior exactly.
    fn route_note(&mut self, note: TxnNote) {
        let target = match &note {
            TxnNote::Begin { block, .. } => (*block as usize) % self.cfg.clusters,
            TxnNote::Phase { requester, .. } => *requester,
        };
        if self.owns(target) {
            self.apply_note(note);
        } else {
            self.note_outbox.push(note);
        }
    }

    /// Applies one telemetry note to this machine's tables. Called
    /// directly by [`Machine::route_note`] for local targets and by the
    /// shard coordinator when ferrying notes across a window barrier.
    pub(crate) fn apply_note(&mut self, note: TxnNote) {
        match note {
            TxnNote::Begin {
                requester,
                block,
                id,
                issue,
            } => {
                self.txn_phase.insert(
                    (requester, block),
                    PhaseSlot {
                        id,
                        issue,
                        hl_done: false,
                        fo_done: false,
                    },
                );
            }
            TxnNote::Phase {
                requester,
                block,
                id,
                phase,
                at,
            } => {
                let Some(live) = self.txn_live.get_mut(&(requester, block)) else {
                    return;
                };
                if live.id != id {
                    return; // note for an already-completed predecessor
                }
                let slot = match phase {
                    Phase::HomeLookup => &mut live.home_lookup,
                    Phase::Fanout => &mut live.fanout,
                    _ => return,
                };
                if slot.is_none() {
                    *slot = Some(at);
                }
            }
        }
    }

    /// The requester received a NACK for its outstanding transaction.
    fn trace_nack(&mut self, t: Cycle, cl: usize, block: u64) {
        if !self.trace_active {
            return;
        }
        let Some(live) = self.txn_live.get(&(cl, block)) else {
            return;
        };
        if t < live.issue {
            return; // stale NACK for a predecessor transaction
        }
        let txn = live.id;
        self.tracer.record(cl, t, EventKind::Nack { txn, block });
    }

    /// The requester reissued a NACKed request after backing off.
    fn trace_retry(&mut self, t: Cycle, cl: usize, block: u64, attempt: u32, backoff: u64) {
        if !self.trace_active {
            return;
        }
        let Some(live) = self.txn_live.get_mut(&(cl, block)) else {
            return;
        };
        if t < live.issue {
            return; // stale retry echo for a predecessor transaction
        }
        live.retries = attempt;
        let txn = live.id;
        self.tracer.record(
            cl,
            t,
            EventKind::Retry {
                txn,
                block,
                attempt,
                backoff,
            },
        );
    }

    /// Directory-side invalidation event. Gated on the `patterns` flag —
    /// not `trace_active` — so traces recorded without patterns stay
    /// byte-identical to pre-observatory runs.
    fn trace_inval(&mut self, t: Cycle, home: usize, block: u64, targets: u32, cause: &'static str) {
        if !self.patterns_active {
            return;
        }
        self.tracer.record(
            home,
            t,
            EventKind::Inval {
                block,
                targets,
                cause,
            },
        );
    }

    /// The transaction completed at its requester: close it out and feed
    /// the phase-latency histograms.
    fn trace_txn_end(&mut self, t: Cycle, cl: usize, block: u64) {
        if !self.trace_active {
            return;
        }
        let Some(live) = self.txn_live.remove(&(cl, block)) else {
            return;
        };
        let latency = t.saturating_sub(live.issue);
        self.tracer.record(
            cl,
            t,
            EventKind::TxnEnd {
                txn: live.id,
                block,
                latency,
                retries: live.retries,
            },
        );
        if self.trace_cfg.metrics {
            self.metrics.record_txn(&TxnTimeline {
                issue: live.issue,
                home_lookup: live.home_lookup,
                fanout: live.fanout,
                end: t,
                write: live.write,
                retries: live.retries,
            });
        }
    }

    /// Advances interval sampling across every boundary up to `t`.
    fn trace_intervals(&mut self, t: Cycle) {
        while t >= self.interval_next {
            let net = self.network.stats().messages;
            let ops = self.shared_reads + self.shared_writes + self.sync_ops;
            let occupancy: u64 = self
                .clusters
                .iter()
                .map(|c| c.rac.outstanding() as u64)
                .sum();
            let snap = IntervalSnapshot {
                start: self.interval_start,
                end: self.interval_next,
                messages: net - self.interval_base.messages,
                retries: self.faults.retries - self.interval_base.retries,
                nacks: self.faults.nacks - self.interval_base.nacks,
                occupancy,
                ops_retired: ops - self.interval_base.ops,
            };
            if self.solo {
                self.metrics.push_interval(snap);
                if self.stream.on {
                    self.stream_interval(&snap);
                }
                if self.patterns_active {
                    self.sample_patterns(snap.start, snap.end);
                }
            } else {
                // A shard only sees its own slice of the machine: park the
                // window's deltas as a piece and let the coordinator sum
                // pieces across shards into the exact serial record.
                self.push_interval_piece(snap);
            }
            self.interval_base = IntervalBase {
                messages: net,
                retries: self.faults.retries,
                nacks: self.faults.nacks,
                ops,
            };
            self.interval_start = self.interval_next;
            self.interval_next += self.trace_cfg.interval;
        }
    }

    /// Captures this shard's contribution to one closed interval window.
    /// Occupancy and message/op deltas come out exact because each
    /// cluster (and each message's source accounting) belongs to exactly
    /// one shard; the coordinator sums pieces per boundary.
    fn push_interval_piece(&mut self, snap: IntervalSnapshot) {
        let mut attrib_delta =
            [scd_trace::ClassCounters::default(); AttribClass::ALL.len()];
        let mut link_delta = Vec::new();
        if self.attrib_active {
            let cur = self.attrib.counters();
            for (d, (c, b)) in attrib_delta
                .iter_mut()
                .zip(cur.iter().zip(self.piece_attrib_base.iter()))
            {
                *d = c.minus(*b);
            }
            self.piece_attrib_base = cur;
            let base = &mut self.piece_link_base;
            link_delta = self
                .network
                .link_traffic()
                .into_iter()
                .filter_map(|((src, dst), c)| {
                    let prev = base.insert((src, dst), c.flits).unwrap_or(0);
                    let d = c.flits.saturating_sub(prev);
                    (d > 0).then_some(((src, dst), d))
                })
                .collect();
        }
        self.interval_pieces.push(IntervalPiece {
            snap,
            attrib_delta,
            link_delta,
        });
    }

    /// Forces every interval boundary at or below `h` to close even when
    /// no local event lands past it: an idle shard still owes the
    /// coordinator a (zero-delta) piece for each window the fleet
    /// finished. Safe because any boundary `b <= h` with no local events
    /// in `[b, h)` closes with exactly the deltas it would have closed
    /// with lazily.
    pub(crate) fn force_intervals_to(&mut self, h: Cycle) {
        if self.trace_active && self.trace_cfg.interval > 0 {
            self.trace_intervals(h);
        }
    }

    /// Scans every home's live directory entries at an interval boundary
    /// and folds the sharer-count distribution into the observatory;
    /// when a stream is attached, also emits the window's `patterns`
    /// record. O(live entries) per boundary, gated on `patterns_active`.
    fn sample_patterns(&mut self, start: Cycle, end: Cycle) {
        let cap = self.cfg.clusters;
        let mut win = vec![0u64; cap + 1];
        let mut live = 0u64;
        for c in &self.clusters {
            c.dir.for_each_live(|_, e| {
                win[e.sharer_superset().len().min(cap)] += 1;
                live += 1;
            });
        }
        self.obs.samples += 1;
        for (a, b) in self.obs.sharers.iter_mut().zip(&win) {
            *a += b;
        }
        if let Some(sink) = self.stream.sink.as_mut() {
            sink.emit(&scd_trace::patterns_record(start, end, live, &win).to_string());
            sink.flush();
        }
    }

    // ------------------------------------------------------------------
    // Live streaming (scd-trace sinks)
    //
    // Same contract as the other telemetry hooks — read-only against the
    // simulation: the stream pump never touches the event queue, any RNG
    // stream, or any timing decision, and a machine with no sink attached
    // costs one pre-computed branch per event. Ordering: events are
    // emitted in the exact post-hoc `(cycle, seq)` merge order. An event
    // may be recorded with a *future* cycle stamp but never a past one,
    // so once the simulation clock strictly passes a pending event's
    // cycle, nothing that sorts before it can still arrive — the pending
    // heap holds events until that watermark clears them.
    // ------------------------------------------------------------------

    /// Attaches `sink` and starts streaming: an optional `run_meta`
    /// record first, then trace events, interval windows, and
    /// attribution deltas as the run produces them, closed by a
    /// `run_end` record when the run finalizes (success or failure) or
    /// [`Machine::stream_close`] is called.
    ///
    /// Trace events only flow when the machine was built with
    /// `TraceConfig::ring_capacity > 0`; interval and attribution
    /// records follow their own `TraceConfig` switches. Cloning the
    /// machine detaches the stream on the clone (see [`StreamState`]).
    pub fn attach_stream(&mut self, mut sink: Box<dyn scd_trace::TraceSink>, run: Option<Json>) {
        if let Some(run) = run {
            sink.emit(&scd_trace::run_meta_record(&run).to_string());
            sink.flush();
        }
        self.tracer.set_mirror(true);
        self.stream.attrib_base = self.attrib.counters();
        self.stream.link_base = self
            .network
            .link_traffic()
            .into_iter()
            .map(|((src, dst), c)| ((src, dst), c.flits))
            .collect();
        self.stream.pending.clear();
        self.stream.sink = Some(sink);
        self.stream.on = true;
    }

    /// Whether a sink is currently attached.
    pub fn stream_active(&self) -> bool {
        self.stream.on
    }

    /// Moves freshly recorded events from the tracer's mirror into the
    /// pending heap.
    fn stream_drain(&mut self) {
        for ev in self.tracer.take_mirror() {
            self.stream.pending.push(PendingEvent(ev));
        }
    }

    /// Emits every pending event with `cycle < watermark`, in
    /// `(cycle, seq)` order.
    fn stream_flush_below(&mut self, watermark: Cycle) {
        let stream = &mut self.stream;
        let Some(sink) = stream.sink.as_mut() else {
            return;
        };
        while let Some(top) = stream.pending.peek() {
            if top.0.cycle >= watermark {
                break;
            }
            let mut ev = stream.pending.pop().expect("peeked above").0;
            // Recorded seqs are per-cluster lane counters; the emitted
            // stream renumbers them into the global `(cycle, cluster,
            // lane-seq)` merge rank, the same numbering the post-hoc
            // `Tracer::merged` view assigns.
            stream.emitted += 1;
            ev.seq = stream.emitted;
            sink.emit(&ev.to_json().to_string());
        }
    }

    /// Emits one closed interval window: every event belonging to the
    /// window first, then the `interval` record, then (when attribution
    /// is on) the window's per-class and per-link traffic delta.
    fn stream_interval(&mut self, snap: &IntervalSnapshot) {
        self.stream_flush_below(snap.end);
        let mut records = vec![scd_trace::interval_record(snap).to_string()];
        if self.attrib_active {
            let cur = self.attrib.counters();
            let classes: Vec<(&'static str, Json)> = AttribClass::ALL
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    let d = cur[i].minus(self.stream.attrib_base[i]);
                    // Protocol-specific classes are omitted when idle this
                    // window, keeping DASH streams byte-identical to v1.
                    if c.optional() && d.messages == 0 {
                        return None;
                    }
                    Some((c.label(), d.to_json()))
                })
                .collect();
            self.stream.attrib_base = cur;
            // Per-link flit deltas: the window's busiest movers, capped
            // and endpoint-sorted so the record is deterministic.
            const TOP_LINKS: usize = 32;
            let link_base = &mut self.stream.link_base;
            let mut deltas: Vec<(usize, usize, u64)> = self
                .network
                .link_traffic()
                .into_iter()
                .filter_map(|((src, dst), c)| {
                    let base = link_base.insert((src, dst), c.flits).unwrap_or(0);
                    let d = c.flits.saturating_sub(base);
                    (d > 0).then_some((src, dst, d))
                })
                .collect();
            deltas.sort_by(|a, b| b.2.cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
            deltas.truncate(TOP_LINKS);
            deltas.sort_by_key(|&(src, dst, _)| (src, dst));
            records.push(
                scd_trace::attrib_delta_record(snap.start, snap.end, &classes, &deltas)
                    .to_string(),
            );
        }
        if let Some(sink) = self.stream.sink.as_mut() {
            for r in &records {
                sink.emit(r);
            }
            // Boundary flush so a live consumer tailing a file sink sees
            // whole windows, not BufWriter-sized chunks.
            sink.flush();
        }
    }

    /// Flushes everything still pending, emits the closing `run_end`
    /// record (final cycle, recorded/evicted counters), and detaches the
    /// sink. Idempotent; runs automatically when the run finalizes —
    /// call it directly only to stop streaming early or after an
    /// aborted run.
    pub fn stream_close(&mut self) {
        if !self.stream.on {
            return;
        }
        self.stream_drain();
        self.stream_flush_below(Cycle::MAX);
        let (recorded, dropped) = self.trace_counts();
        let cycles = if self.finish_time > 0 {
            self.finish_time
        } else {
            self.queue.now()
        };
        if let Some(mut sink) = self.stream.sink.take() {
            sink.emit(&scd_trace::run_end_record(cycles, recorded, dropped).to_string());
            sink.flush();
        }
        self.stream.on = false;
        self.tracer.set_mirror(false);
    }

    /// All retained trace events, merged into one cycle-ordered history.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.tracer.merged()
    }

    /// The last `k` retained trace events of one cluster, oldest first.
    pub fn trace_tail(&self, cluster: usize, k: usize) -> Vec<TraceEvent> {
        self.tracer.tail(cluster, k)
    }

    /// Events recorded / evicted-from-ring counts for the run so far.
    pub fn trace_counts(&self) -> (u64, u64) {
        (self.tracer.recorded(), self.tracer.dropped())
    }

    /// The `trace` section of the `scd-run-stats/v1` document: events
    /// recorded vs evicted from the rings, so truncated history is never
    /// silent. None when tracing is off. Lives outside [`RunStats`] so
    /// the `stats` section stays bit-identical across trace
    /// configurations.
    pub fn trace_json(&self) -> Option<Json> {
        self.trace_active.then(|| {
            let (recorded, dropped) = self.trace_counts();
            Json::obj()
                .with("recorded", Json::U64(recorded))
                .with("dropped_events", Json::U64(dropped))
        })
    }

    /// The `occupancy` section of the `scd-patterns/v1` document:
    /// sampled sharer-count distribution over live directory entries,
    /// write fan-out precision/waste (plus coarse-vector region-bit
    /// utilization when the scheme is `Dir_i CV_r`), and sparse
    /// replacement churn. None unless `TraceConfig::patterns` was on.
    pub fn occupancy_json(&self) -> Option<Json> {
        if !self.patterns_active {
            return None;
        }
        let o = &self.obs;
        let mut churn_total = scd_core::ChurnStats::default();
        let mut churn_on = false;
        for c in &self.clusters {
            if let Some(s) = c.dir.churn_stats() {
                churn_total.merge(&s);
                churn_on = true;
            }
        }
        let mut j = Json::obj()
            .with("samples", Json::U64(o.samples))
            .with(
                "sharers",
                Json::Arr(o.sharers.iter().map(|&c| Json::U64(c)).collect()),
            )
            .with(
                "fanout",
                Json::obj()
                    .with("events", Json::U64(o.fanout_events))
                    .with("precise", Json::U64(o.fanout_precise))
                    .with("broadcast", Json::U64(o.fanout_broadcast))
                    .with("targets", Json::U64(o.fanout_targets))
                    .with("present", Json::U64(o.fanout_present)),
            );
        j.set(
            "coarse",
            if o.coarse_events > 0 {
                Json::obj()
                    .with("events", Json::U64(o.coarse_events))
                    .with("regions_set", Json::U64(o.coarse_regions))
                    .with("covered", Json::U64(o.coarse_covered))
                    .with("present", Json::U64(o.coarse_present))
            } else {
                Json::Null
            },
        );
        j.set(
            "churn",
            if churn_on {
                Json::obj()
                    .with("replacements", Json::U64(churn_total.replacements))
                    .with("rerefs", Json::U64(churn_total.rerefs))
                    .with(
                        "reref_distance",
                        Json::Arr(
                            churn_total
                                .reref_distance
                                .iter()
                                .map(|&c| Json::U64(c))
                                .collect(),
                        ),
                    )
            } else {
                Json::Null
            },
        );
        Some(j)
    }

    /// The metrics registry (empty unless `TraceConfig::metrics` was on).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The traffic attribution (None unless `TraceConfig::attribution`
    /// was on).
    pub fn attribution(&self) -> Option<&Attribution> {
        self.attrib_active.then_some(&self.attrib)
    }

    /// The full `scd-attrib/v1` document section: per-class byte/flit
    /// counters plus the machine-side gauges only this side can see —
    /// the busiest links with their channel occupancy, and (for sparse
    /// organizations) directory set pressure. None when attribution is
    /// off. `elapsed` is the cycle horizon occupancies are normalized
    /// over (pass the run's final cycle).
    pub fn attribution_json(&self, elapsed: Cycle) -> Option<Json> {
        if !self.attrib_active {
            return None;
        }
        let mut j = self.attrib.to_json();
        let horizon = elapsed.max(1) as f64;
        const TOP_LINKS: usize = 16;
        let all = self.network.link_traffic();
        let links: Vec<Json> = all
            .iter()
            .take(TOP_LINKS)
            .map(|((from, to), c)| {
                Json::obj()
                    .with("from", Json::U64(*from as u64))
                    .with("to", Json::U64(*to as u64))
                    .with("messages", Json::U64(c.messages))
                    .with("flits", Json::U64(c.flits))
                    // Fraction of the horizon the channel was moving
                    // flits (one flit-time per flit).
                    .with("occupancy", Json::F64(c.flits as f64 / horizon))
            })
            .collect();
        j.set(
            "links",
            Json::obj()
                .with("tracked", Json::U64(all.len() as u64))
                .with("busiest", Json::Arr(links)),
        );
        // Sparse-directory set pressure: occupancy + replacement rate.
        let mut live = 0usize;
        let mut sparse_sum: Option<scd_core::SparseStats> = None;
        for c in &self.clusters {
            live += c.dir.live_entries();
            if let Some(s) = c.dir.sparse_stats() {
                let sum = sparse_sum.get_or_insert_with(Default::default);
                sum.hits += s.hits;
                sum.misses += s.misses;
                sum.fills += s.fills;
                sum.replacements += s.replacements;
            }
        }
        if let Some(s) = sparse_sum {
            let capacity = match &self.cfg.organization {
                scd_core::Organization::Sparse { entries, .. } => {
                    *entries * self.cfg.clusters
                }
                _ => 0,
            };
            let mut sp = Json::obj()
                .with("capacity", Json::U64(capacity as u64))
                .with("live", Json::U64(live as u64));
            if capacity > 0 {
                sp.set(
                    "occupancy",
                    Json::F64(live as f64 / capacity as f64),
                );
            }
            sp.set("replacements", Json::U64(s.replacements));
            sp.set(
                "replacements_per_kcycle",
                Json::F64(s.replacements as f64 * 1000.0 / horizon),
            );
            j.set("sparse", sp);
        }
        Some(j)
    }

    /// Runs the workload to completion and returns the collected metrics.
    ///
    /// # Panics
    /// On any [`SimError`] — deadlock, `max_cycles` exceeded, an invariant
    /// violation, or the livelock watchdog — with the formatted post-mortem
    /// as the panic message. Use [`Machine::try_run`] to handle failures
    /// gracefully instead.
    pub fn run(&mut self) -> RunStats {
        match self.try_run() {
            Ok(stats) => stats,
            Err(e) => {
                // The panic payload carries the full post-mortem rendering
                // (blocked processors, cluster state, event log, trace
                // tails), so even harnesses that only capture the panic
                // message get the causal history, not a bare headline.
                panic!("simulation failed ({})\n{e}", e.kind());
            }
        }
    }

    /// Runs the workload to completion, returning a structured
    /// [`SimError`] — carrying a [`PostMortem`] of the stuck machine —
    /// instead of panicking when the run cannot complete.
    pub fn try_run(&mut self) -> Result<RunStats, SimError> {
        self.start();
        while let Some((t, ev)) = self.queue.pop() {
            if let Err(e) = self.process_event(t, ev) {
                // Push what the stream already holds before surfacing
                // the failure: a live consumer should see the history up
                // to the death, closed by an honest run_end.
                self.stream_close();
                return Err(e);
            }
        }
        self.finalize()
    }

    /// Processes every pending event strictly below `horizon` — one
    /// conservative window of a sharded run. Returns the time of the last
    /// event processed, if any. Anything popped inside the window can only
    /// schedule locally (at or after the pop time) or export through the
    /// outbox (`deliver_or_export` asserts exports never fall before
    /// `horizon`). After the pops, any interval boundary at or below
    /// `horizon` that no local event crossed is force-closed: its window
    /// content is final because every local event below `horizon` has been
    /// processed and none of them reached the boundary.
    fn run_window(&mut self, horizon: Cycle) -> Result<Option<Cycle>, SimError> {
        self.window_end = horizon;
        let mut last = None;
        while let Some(t) = self.queue.peek_time() {
            if t >= horizon {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked a pending event");
            self.process_event(t, ev)?;
            last = Some(t);
        }
        self.force_intervals_to(horizon);
        Ok(last)
    }

    /// Seeds the event queue with every processor's first fetch. Separated
    /// from [`Machine::try_run`] so the exploration API can drive the same
    /// machine one chosen event at a time.
    fn start(&mut self) {
        for p in 0..self.procs.len() {
            let cl = self.cluster_of(p);
            if !self.owns(cl) {
                continue; // another shard seeds this processor
            }
            self.sched(cl, 0, Ev::ProcNext(p));
        }
    }

    /// Processes one popped event: runaway/watchdog guards, event-log
    /// recording, and dispatch to the processor/protocol handlers. This is
    /// the entire body of the run loop; [`Machine::try_run`] and the
    /// exploration stepper share it so a checked interleaving exercises
    /// exactly the code a production run does.
    fn process_event(&mut self, t: Cycle, ev: Ev) -> Result<(), SimError> {
        {
            if self.cfg.max_cycles > 0 && t > self.cfg.max_cycles {
                let detail = format!(
                    "exceeded max_cycles={} ({} procs still running)",
                    self.cfg.max_cycles, self.running
                );
                return Err(SimError::MaxCycles(self.post_mortem(t, detail)));
            }
            // The livelock watchdog compares against *global* progress, so
            // under sharding it moves to the coordinator's barrier (a shard
            // legitimately idles while a remote transaction it depends on
            // makes progress on another worker).
            if self.solo
                && self.cfg.watchdog_cycles > 0
                && self.running > 0
                && t.saturating_sub(self.last_progress) > self.cfg.watchdog_cycles
            {
                let detail = format!(
                    "no operation retired since cycle {} (watchdog window {})",
                    self.last_progress, self.cfg.watchdog_cycles
                );
                return Err(SimError::LivelockWatchdog(self.post_mortem(t, detail)));
            }
            if self.stream.on {
                // Pull freshly recorded events into the pending heap
                // *before* interval processing, so a closing window can
                // flush its own events ahead of its record.
                self.stream_drain();
            }
            if self.trace_active && self.trace_cfg.interval > 0 {
                self.trace_intervals(t);
            }
            if self.stream.on {
                self.stream_flush_below(t);
            }
            // Resolve the hot handle into its payload *before* logging, so
            // the post-mortem ring holds the message itself, not a handle
            // into a slot that the arena's free list will recycle.
            let ev = match ev {
                Ev::ProcNext(p) => EvLog::ProcNext(p),
                Ev::ProcRetry(p) => EvLog::ProcRetry(p),
                Ev::Replay { home, block } => EvLog::Replay { home, block },
                Ev::Deliver(r) => match self.arena.take(r) {
                    Some(msg) => EvLog::Deliver(msg),
                    None => {
                        // Every alloc is taken exactly once (duplicated
                        // deliveries get their own slot), so a stale handle
                        // here means the arena bookkeeping is broken.
                        let detail = format!(
                            "delivery of stale message handle (slot {}, generation {})",
                            r.index(),
                            r.generation()
                        );
                        return Err(SimError::InvariantViolation(
                            self.post_mortem(t, detail),
                        ));
                    }
                },
            };
            self.event_log.push((t, ev));
            match ev {
                EvLog::ProcNext(p) => {
                    if self.procs[p].status == ProcStatus::Done {
                        return Ok(());
                    }
                    // Fetching the next operation means the previous one
                    // retired: forward progress for the watchdog.
                    self.last_progress = t;
                    let op = self.procs[p].program.next_op();
                    self.procs[p].pending = Some(op);
                    match op {
                        Op::Read(_) => self.shared_reads += 1,
                        Op::Write(_) => self.shared_writes += 1,
                        Op::Lock(_) | Op::Unlock(_) | Op::Barrier(_) => self.sync_ops += 1,
                        _ => {}
                    }
                    self.execute(t, p, op);
                }
                EvLog::ProcRetry(p) => {
                    let Some(op) = self.procs[p].pending else {
                        let detail = format!("retry of processor {p} with no pending op");
                        return Err(SimError::InvariantViolation(
                            self.post_mortem(t, detail),
                        ));
                    };
                    self.execute(t, p, op);
                }
                EvLog::Deliver(msg) => {
                    if let Some(tb) = self.cfg.trace_block {
                        if msg.kind.block() == Some(tb) {
                            eprintln!("[{t:>8}] {:?}", msg);
                        }
                    }
                    self.deliver(t, msg);
                }
                EvLog::Replay { home, block } => {
                    if let Some(req) = self.clusters[home].ser.pop_ready(block) {
                        protocol::backend(self.cfg.protocol).replay(self, t, home, req);
                    }
                    self.drain(t, home, block);
                }
            }
            if self.running == 0 && self.finish_time == 0 {
                self.finish_time = t;
                // Keep draining in-flight messages so the machine quiesces
                // and invariants can be checked.
            }
        }
        Ok(())
    }

    /// Post-drain validation: every processor retired, no leaked arena
    /// payloads, and (when configured) the quiescent coherence invariants.
    /// Shared by [`Machine::try_run`] and the exploration API's leaf check.
    fn finalize(&mut self) -> Result<RunStats, SimError> {
        // Close the stream first (no-op when off): the queue is drained,
        // so every recorded event can flush, and run_end belongs in the
        // stream whether the checks below pass or not.
        self.stream_close();
        if self.running != 0 {
            let detail = format!(
                "{} processors blocked with an empty event queue",
                self.running
            );
            return Err(SimError::Deadlock(
                self.post_mortem(self.queue.now(), detail),
            ));
        }
        if !self.arena.is_empty() {
            // Every scheduled delivery takes its payload out of the arena;
            // a drained queue with parked messages means a Deliver event
            // was lost (or a payload leaked).
            let detail = format!(
                "{} message(s) still parked in the arena after the event queue drained",
                self.arena.live()
            );
            return Err(SimError::InvariantViolation(
                self.post_mortem(self.queue.now(), detail),
            ));
        }
        if self.cfg.check_invariants {
            if let Err(e) = crate::checker::verify_quiescent(self) {
                return Err(SimError::InvariantViolation(
                    self.post_mortem(self.queue.now(), e.to_string()),
                ));
            }
        }
        Ok(self.collect())
    }

    /// Snapshot of the machine for a [`SimError`]. Boxed because the
    /// snapshot is large and `try_run`'s `Ok` path should stay lean.
    fn post_mortem(&self, cycle: Cycle, detail: String) -> Box<PostMortem> {
        let blocked_procs = self
            .procs
            .iter()
            .enumerate()
            .filter(|(_, st)| st.status != ProcStatus::Done)
            .map(|(p, st)| BlockedProc {
                proc: p,
                status: format!("{:?}", st.status),
                pending: st.pending.map(|op| format!("{op:?}")),
                blocked_since: st.blocked_since,
            })
            .collect();
        let clusters: Vec<ClusterDiag> = self
            .clusters
            .iter()
            .enumerate()
            .filter(|(_, n)| n.rac.outstanding() > 0 || n.ser.busy_blocks() > 0)
            .map(|(c, n)| ClusterDiag {
                cluster: c,
                mshrs: n.rac.outstanding(),
                busy: n
                    .ser
                    .debug_state()
                    .into_iter()
                    .map(|(b, reason, queued)| (b, format!("{reason:?}"), queued))
                    .collect(),
            })
            .collect();
        // Attach each stuck cluster's recent trace history (empty when
        // tracing is off): the transaction-level view of what the cluster
        // was doing when the run died.
        const TAIL_EVENTS: usize = 16;
        let trace_tails = if self.trace_active {
            clusters
                .iter()
                .map(|d: &ClusterDiag| d.cluster)
                .filter_map(|c| {
                    let tail = self.tracer.tail(c, TAIL_EVENTS);
                    (!tail.is_empty())
                        .then(|| (c, tail.iter().map(TraceEvent::render).collect()))
                })
                .collect()
        } else {
            Vec::new()
        };
        Box::new(PostMortem {
            cycle,
            running: self.running,
            blocked_procs,
            clusters,
            recent_events: self
                .event_log
                .iter()
                .map(|(at, ev)| format!("[{at:>8}] {ev:?}"))
                .collect(),
            trace_tails,
            dropped_events: self.tracer.dropped(),
            counters: self.counters,
            faults: self.faults,
            detail,
        })
    }

    fn collect(&self) -> RunStats {
        let mut sparse: Option<scd_core::SparseStats> = None;
        let mut overflow: Option<scd_core::OverflowStats> = None;
        let mut live = 0;
        let mut lock_metrics = (0u64, 0u64);
        let mut queue_metrics = (0usize, 0u64);
        let backend = protocol::backend(self.cfg.protocol);
        for c in &self.clusters {
            live += backend.live_entries(c);
            if let Some(s) = c.dir.sparse_stats() {
                let agg = sparse.get_or_insert_with(Default::default);
                agg.hits += s.hits;
                agg.misses += s.misses;
                agg.fills += s.fills;
                agg.replacements += s.replacements;
            }
            if let Some(o) = c.dir.overflow_stats() {
                let agg = overflow.get_or_insert_with(Default::default);
                agg.promotions += o.promotions;
                agg.demotions += o.demotions;
                agg.displacements += o.displacements;
                agg.fallback_evictions += o.fallback_evictions;
            }
            let (g, r) = c.locks.metrics();
            lock_metrics.0 += g;
            lock_metrics.1 += r;
            let (d, q) = c.ser.queue_metrics();
            queue_metrics.0 = queue_metrics.0.max(d);
            queue_metrics.1 += q;
        }
        RunStats {
            cycles: self.finish_time,
            traffic: self.traffic,
            invalidations: self.inval_hist.clone(),
            shared_reads: self.shared_reads,
            shared_writes: self.shared_writes,
            sync_ops: self.sync_ops,
            network: self.network.stats().clone(),
            sparse,
            overflow,
            l2_misses: self.clusters.iter().map(|c| c.caches.total_l2_misses()).sum(),
            lock_metrics,
            queue_metrics,
            live_dir_entries: live,
            protocol: self.counters,
            tardis: (self.cfg.protocol == ProtocolKind::Tardis).then_some(self.tardis_counters),
            dls: (self.cfg.protocol == ProtocolKind::Dls).then_some(self.dls_counters),
            faults: self.faults,
            versions_assigned: self.versions_assigned,
            events_delivered: self.queue.delivered(),
            stalls: StallBreakdown {
                mem_stall: self.procs.iter().map(|p| p.mem_stall).collect(),
                sync_stall: self.procs.iter().map(|p| p.sync_stall).collect(),
                finish: self.procs.iter().map(|p| p.finish).collect(),
            },
        }
    }

    // ------------------------------------------------------------------
    // Processor-side execution
    // ------------------------------------------------------------------

    fn execute(&mut self, t: Cycle, p: usize, op: Op) {
        match op {
            Op::Done => {
                self.procs[p].status = ProcStatus::Done;
                self.procs[p].finish = t;
                self.running -= 1;
            }
            Op::Compute(c) => {
                let cl = self.cluster_of(p);
                self.sched(cl, t + c, Ev::ProcNext(p));
            }
            Op::Read(addr) => self.mem_access(t, p, addr, MshrKind::Read),
            Op::Write(addr) => self.mem_access(t, p, addr, MshrKind::Write),
            Op::Lock(l) => self.do_lock(t, p, l),
            Op::Unlock(l) => self.do_unlock(t, p, l),
            Op::Barrier(b) => self.do_barrier(t, p, b),
        }
    }

    fn mem_access(&mut self, t: Cycle, p: usize, addr: u64, kind: MshrKind) {
        let block = self.cfg.block_of(addr);
        protocol::backend(self.cfg.protocol).mem_access(self, t, p, block, kind);
    }

    fn fill(&mut self, t: Cycle, cl: usize, lp: usize, block: u64, state: LineState) {
        if let Some(ev) = self.clusters[cl].caches.fill(lp, block, state, t) {
            if ev.state == LineState::Dirty {
                let home = self.cfg.home_of(ev.block);
                self.clusters[cl].rac.note_writeback(ev.block);
                self.send(
                    t,
                    Msg {
                        src: cl,
                        dst: home,
                        kind: MsgKind::Writeback { block: ev.block },
                    },
                );
            } else if self.cfg.replacement_hints
                && self.cfg.protocol != ProtocolKind::Tardis
                && !self.clusters[cl].caches.holds(ev.block)
            {
                // The cluster's last clean copy left silently; tell the
                // home so a precise entry can forget us.
                let home = self.cfg.home_of(ev.block);
                self.send(
                    t,
                    Msg {
                        src: cl,
                        dst: home,
                        kind: MsgKind::ReplacementHint { block: ev.block },
                    },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Synchronization
    // ------------------------------------------------------------------

    fn do_lock(&mut self, t: Cycle, p: usize, l: u32) {
        let (cl, lp) = (self.cluster_of(p), self.local_of(p));
        let tm = self.cfg.timing;
        let home = self.cfg.lock_home(l);
        let st = self.clusters[cl].lock_state.entry(l).or_default();
        st.waiters.push_back(lp);
        let need_request = st.holder.is_none() && !st.requested;
        if need_request {
            st.requested = true;
            self.send(
                t + tm.sync_op,
                Msg {
                    src: cl,
                    dst: home,
                    kind: MsgKind::LockReq { lock: l },
                },
            );
        }
        self.block(t, p, true);
    }

    fn do_unlock(&mut self, t: Cycle, p: usize, l: u32) {
        let (cl, lp) = (self.cluster_of(p), self.local_of(p));
        let tm = self.cfg.timing;
        let home = self.cfg.lock_home(l);
        let st = self
            .clusters[cl]
            .lock_state
            .get_mut(&l)
            .expect("unlock of never-acquired lock");
        assert_eq!(
            st.holder,
            Some(lp),
            "processor {p} released lock {l} it does not hold"
        );
        st.holder = None;
        if let Some(next) = st.waiters.pop_front() {
            // Intra-cluster handoff over the bus; the home still sees this
            // cluster as the holder.
            st.holder = Some(next);
            let g = self.global_proc(cl, next);
            self.resume(t + tm.sync_op, g);
        } else {
            let pts = self.sync_pts(cl);
            self.send(
                t + tm.sync_op,
                Msg {
                    src: cl,
                    dst: home,
                    kind: MsgKind::UnlockReq { lock: l, pts },
                },
            );
        }
        self.resume(t + tm.sync_op, p);
    }

    fn do_barrier(&mut self, t: Cycle, p: usize, b: u32) {
        let (cl, lp) = (self.cluster_of(p), self.local_of(p));
        let tm = self.cfg.timing;
        let home = self.cfg.barrier_home(b);
        let local = self.clusters[cl].barrier_local.entry(b).or_default();
        local.push(lp);
        let all_local = local.len() == self.cfg.procs_per_cluster;
        if all_local {
            let pts = self.sync_pts(cl);
            self.send(
                t + tm.sync_op,
                Msg {
                    src: cl,
                    dst: home,
                    kind: MsgKind::BarrierArrive { barrier: b, pts },
                },
            );
        }
        self.block(t, p, true);
    }

    // ------------------------------------------------------------------
    // Message delivery
    // ------------------------------------------------------------------

    fn deliver(&mut self, t: Cycle, msg: Msg) {
        let Msg { src, dst, kind } = msg;
        if self.trace_active && src != dst && self.tracer.messages_enabled() {
            self.tracer.record(
                dst,
                t,
                EventKind::MsgDeliver {
                    src: src as u32,
                    dst: dst as u32,
                    msg: kind.label(),
                    block: kind.block(),
                },
            );
        }
        if self.fault_active && src != dst && self.fault_plan.nack_prob > 0.0 {
            if let MsgKind::ReadReq { block }
            | MsgKind::WriteReq { block }
            | MsgKind::TardisReadReq { block, .. }
            | MsgKind::TardisWriteReq { block } = kind
            {
                let nack_prob = self.fault_plan.nack_prob;
                if self.nack_rng(src, dst).chance(nack_prob) {
                    // The home refuses the request without touching any
                    // state; the requester backs off and retries. Decided
                    // at delivery rather than in `home_request` so replayed
                    // parked requests are never refused — they already hold
                    // a queue slot.
                    self.faults.nacks += 1;
                    let was_write = matches!(
                        kind,
                        MsgKind::WriteReq { .. } | MsgKind::TardisWriteReq { .. }
                    );
                    self.send(
                        t + self.cfg.timing.dir_lookup,
                        Msg {
                            src: dst,
                            dst: src,
                            kind: MsgKind::Nack { block, was_write },
                        },
                    );
                    return;
                }
            }
        }
        match kind {
            MsgKind::Nack { block, was_write } => {
                self.trace_nack(t, dst, block);
                match self.clusters[dst].rac.on_nack(block, was_write) {
                    Some(attempt) => {
                        // Reissue with exponential backoff so a refusing
                        // home is not hammered at network rate.
                        self.faults.retries += 1;
                        let base = self.cfg.timing.bus_memory.max(1);
                        let backoff = base << (attempt - 1).min(10);
                        self.trace_retry(t, dst, block, attempt, backoff);
                        let home = self.cfg.home_of(block);
                        // Reissue whatever the active protocol's miss
                        // path originally sent.
                        let kind = protocol::backend(self.cfg.protocol)
                            .request_msg(self, dst, block, was_write);
                        self.send(t + backoff, Msg { src: dst, dst: home, kind });
                    }
                    // Stale: the transaction was already serviced (a
                    // duplicate's NACK crossed the real reply). Drop it.
                    None => self.faults.strays_dropped += 1,
                }
            }
            MsgKind::LockReq { lock } => {
                match self.clusters[dst].locks.acquire(lock, src) {
                    LockOutcome::Granted => {
                        let pts = self.lock_grant_pts(dst, lock);
                        self.send(
                            t + self.cfg.timing.sync_op,
                            Msg {
                                src: dst,
                                dst: src,
                                kind: MsgKind::LockGrant { lock, pts },
                            },
                        );
                    }
                    // Queued: the grant comes on a later release.
                    // AlreadyHeld: duplicate of an already-granted request
                    // (a retry crossed the acquire) — drop it.
                    LockOutcome::Queued | LockOutcome::AlreadyHeld => {}
                }
            }
            MsgKind::LockGrant { lock, pts } => {
                self.absorb_pts(dst, pts);
                let decline = {
                    let st = self.clusters[dst].lock_state.entry(lock).or_default();
                    st.requested = false;
                    if st.holder.is_none() {
                        if let Some(lp) = st.waiters.pop_front() {
                            st.holder = Some(lp);
                            Some(lp)
                        } else {
                            None
                        }
                        .map(Ok)
                        .unwrap_or(Err(()))
                    } else {
                        Err(())
                    }
                };
                match decline {
                    Ok(lp) => {
                        let g = self.global_proc(dst, lp);
                        self.resume(t + self.cfg.timing.sync_op, g);
                    }
                    Err(()) => {
                        // Nobody is waiting locally (or we already hold it):
                        // hand the lock straight back.
                        let pts = self.sync_pts(dst);
                        self.send(
                            t + self.cfg.timing.sync_op,
                            Msg {
                                src: dst,
                                dst: src,
                                kind: MsgKind::UnlockReq { lock, pts },
                            },
                        );
                    }
                }
            }
            MsgKind::LockRetry { lock } => {
                // Our queued request (if any) was dropped by the region
                // release: the `requested` flag is stale, so clear it and
                // re-request if processors are still waiting.
                let needs_retry = {
                    let st = self.clusters[dst].lock_state.entry(lock).or_default();
                    st.requested = false;
                    if st.holder.is_none() && !st.waiters.is_empty() {
                        st.requested = true;
                        true
                    } else {
                        false
                    }
                };
                if needs_retry {
                    let home = self.cfg.lock_home(lock);
                    self.send(
                        t + self.cfg.timing.sync_op,
                        Msg {
                            src: dst,
                            dst: home,
                            kind: MsgKind::LockReq { lock },
                        },
                    );
                }
            }
            MsgKind::UnlockReq { lock, pts } => {
                self.note_lock_pts(dst, lock, pts);
                match self.clusters[dst].locks.release(lock, src) {
                UnlockOutcome::Free => {}
                UnlockOutcome::GrantTo(c) => {
                    let pts = self.lock_grant_pts(dst, lock);
                    self.send(
                        t + self.cfg.timing.sync_op,
                        Msg {
                            src: dst,
                            dst: c,
                            kind: MsgKind::LockGrant { lock, pts },
                        },
                    );
                }
                UnlockOutcome::RetryRegion(members) => {
                    for m in members {
                        self.send(
                            t + self.cfg.timing.sync_op,
                            Msg {
                                src: dst,
                                dst: m,
                                kind: MsgKind::LockRetry { lock },
                            },
                        );
                    }
                }
            }
            }
            MsgKind::BarrierArrive { barrier, pts } => {
                self.note_barrier_pts(dst, barrier, pts);
                if let Some(release) =
                    self.clusters[dst]
                        .barriers
                        .arrive(barrier, src, self.cfg.clusters)
                {
                    let pts = self.take_barrier_pts(dst, barrier);
                    for c in release {
                        self.send(
                            t + self.cfg.timing.sync_op,
                            Msg {
                                src: dst,
                                dst: c,
                                kind: MsgKind::BarrierRelease { barrier, pts },
                            },
                        );
                    }
                }
            }
            MsgKind::BarrierRelease { barrier, pts } => {
                self.absorb_pts(dst, pts);
                let local = self.clusters[dst]
                    .barrier_local
                    .remove(&barrier)
                    .expect("release for a barrier nobody reached");
                for lp in local {
                    let g = self.global_proc(dst, lp);
                    self.resume(t + self.cfg.timing.sync_op, g);
                }
            }
            kind => {
                // Everything else is protocol-specific: hand it to the
                // active backend.
                let backend = protocol::backend(self.cfg.protocol);
                let handled = backend.deliver(self, t, Msg { src, dst, kind });
                assert!(
                    handled,
                    "message {:?} not handled by {} backend",
                    kind.label(),
                    self.cfg.protocol.name()
                );
            }
        }
    }


    // ------------------------------------------------------------------
    // Introspection for the invariant checker
    // ------------------------------------------------------------------

    pub(crate) fn checker_view(&self) -> (&MachineConfig, Vec<ClusterView<'_>>) {
        let views = self
            .clusters
            .iter()
            .map(|c| ClusterView {
                resident: c.caches.cluster_resident(),
                node: c,
            })
            .collect();
        (&self.cfg, views)
    }
}

/// Test-only hooks for hand-corrupting machine state, so the invariant
/// checker's error branches can be exercised without finding a protocol bug
/// that produces each corruption naturally. Not part of the public API.
#[doc(hidden)]
pub mod testing {
    use super::*;

    fn entry_of(m: &mut Machine, home: usize, block: u64) -> &mut scd_core::DirEntry {
        let key = m.dir_key(block);
        match m.clusters[home].dir.entry_mut(key, 0, |_| false) {
            EntryAccess::Ready(e) | EntryAccess::Displaced { entry: e, .. } => e,
            EntryAccess::Stalled { .. } => unreachable!("no pinned entries in a fresh machine"),
        }
    }

    /// Installs a copy of `block` (dirty or shared) in processor `lp` of
    /// `cluster`, bypassing the protocol.
    pub fn fill_line(m: &mut Machine, cluster: usize, lp: usize, block: u64, dirty: bool) {
        let state = if dirty { LineState::Dirty } else { LineState::Shared };
        m.clusters[cluster].caches.fill(lp, block, state, 0);
    }

    /// Forces the home directory entry for `block` to Dirty with `owner`.
    pub fn force_dirty_entry(m: &mut Machine, home: usize, block: u64, owner: usize) {
        entry_of(m, home, block).make_dirty(owner as NodeId);
    }

    /// Forces the home directory entry for `block` to Shared over `sharers`.
    pub fn force_shared_entry(m: &mut Machine, home: usize, block: u64, sharers: &[usize]) {
        let nodes: Vec<NodeId> = sharers.iter().map(|&s| s as NodeId).collect();
        entry_of(m, home, block).make_shared(&nodes);
    }

    /// Removes the home directory entry for `block` entirely.
    pub fn clear_entry(m: &mut Machine, home: usize, block: u64) {
        let key = m.dir_key(block);
        if let Some(e) = m.clusters[home].dir.lookup_mut(key, 0) {
            e.clear();
        }
        m.clusters[home].dir.release_if_empty(key);
    }

    /// Marks `block` busy in the home serializer, as if a transaction never
    /// closed.
    pub fn mark_busy(m: &mut Machine, home: usize, block: u64) {
        m.clusters[home].ser.mark_busy(block, BusyReason::AwaitClose);
    }
}
